"""Structural verification of SIL functions.

Checks the SSA invariants the rest of the pipeline relies on:

* every block ends in exactly one terminator and has no terminator mid-block;
* branch argument counts match destination block argument counts;
* every operand is defined before use (dominance, computed over the CFG);
* values are defined exactly once;
* the entry block has no predecessors;
* formal access scopes are well-bracketed: an access token is only consumed
  by ``access_load``/``access_store``/``end_access``, never escapes through a
  branch or return, is not used after its ``end_access`` on any path, is not
  ended twice, is closed before every ``return``, and a ``[read]`` access is
  never stored through.

All checks operate over the *reachable* CFG.  Unreachable blocks are not
silently skipped: each one produces a warning-level
:class:`~repro.errors.Diagnostic` in the returned list (they carry no
semantics, but their presence usually means a pass forgot to prune).
"""

from __future__ import annotations

from repro.errors import Diagnostic, VerificationError
from repro.sil import ir


def verify(func: ir.Function) -> list[Diagnostic]:
    """Raise :class:`VerificationError` on the first violated invariant.

    Returns warning-level diagnostics for suspicious-but-legal structure
    (currently: blocks unreachable from entry).
    """
    if not func.blocks:
        raise VerificationError(f"@{func.name}: function has no blocks")

    # Terminator discipline is checked over *all* blocks first: computing
    # the reachable CFG requires every block's successors to be defined.
    for block in func.blocks:
        if not block.instructions or not block.instructions[-1].is_terminator:
            raise VerificationError(f"@{func.name}/{block.name}: missing terminator")
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise VerificationError(
                    f"@{func.name}/{block.name}: terminator mid-block: {inst}"
                )

    blocks = func.reachable_blocks()
    reachable_ids = {id(b) for b in blocks}
    warnings = [
        Diagnostic(
            "warning",
            f"@{func.name}: block {b.name} is unreachable from entry "
            "and was not verified",
        )
        for b in func.blocks
        if id(b) not in reachable_ids
    ]

    defined: set[int] = set()
    for block in blocks:
        for arg in block.args:
            if arg.id in defined:
                raise VerificationError(f"@{func.name}: value {arg} defined twice")
            defined.add(arg.id)
        for inst in block.instructions:
            for res in inst.results:
                if res.id in defined:
                    raise VerificationError(
                        f"@{func.name}: value {res} defined twice"
                    )
                defined.add(res.id)

    for block in blocks:
        term = block.terminator
        if isinstance(term, ir.BrInst):
            _check_edge(func, block, term.dest, term.operands)
        elif isinstance(term, ir.CondBrInst):
            _check_edge(func, block, term.true_dest, term.true_args)
            _check_edge(func, block, term.false_dest, term.false_args)

    preds = func.predecessors()
    if preds.get(func.entry):
        raise VerificationError(f"@{func.name}: entry block has predecessors")

    _check_dominance(func, blocks)
    _check_access_scopes(func, blocks)
    return warnings


def _check_edge(func, block, dest, args) -> None:
    if dest not in func.blocks:
        raise VerificationError(
            f"@{func.name}/{block.name}: branch to foreign block {dest.name}"
        )
    if len(args) != len(dest.args):
        raise VerificationError(
            f"@{func.name}/{block.name}: branch passes {len(args)} args, "
            f"{dest.name} expects {len(dest.args)}"
        )


def _check_dominance(func: ir.Function, blocks: list[ir.Block]) -> None:
    """Every use must be dominated by its definition.

    Uses the classic iterative dominator dataflow over the reachable CFG
    (the same block set the definition scan covered).
    """
    index = {id(b): i for i, b in enumerate(blocks)}
    preds = func.predecessors()

    # dom[b] = set of blocks dominating b.
    all_ids = set(index)
    dom: dict[int, set[int]] = {id(b): set(all_ids) for b in blocks}
    dom[id(func.entry)] = {id(func.entry)}
    changed = True
    while changed:
        changed = False
        for b in blocks[1:]:
            reachable_preds = [p for p in preds[b] if id(p) in index]
            if not reachable_preds:
                continue
            new = set.intersection(*(dom[id(p)] for p in reachable_preds))
            new.add(id(b))
            if new != dom[id(b)]:
                dom[id(b)] = new
                changed = True

    # Map value id -> defining block id.
    def_block: dict[int, int] = {}
    for b in blocks:
        for arg in b.args:
            def_block[arg.id] = id(b)
        for inst in b.instructions:
            for res in inst.results:
                def_block[res.id] = id(b)

    for b in blocks:
        seen_local: set[int] = {a.id for a in b.args}
        for inst in b.instructions:
            for op in inst.operands:
                db = def_block.get(op.id)
                if db is None:
                    raise VerificationError(
                        f"@{func.name}/{b.name}: use of undefined value {op} in {inst}"
                    )
                if db == id(b):
                    if op.id not in seen_local:
                        raise VerificationError(
                            f"@{func.name}/{b.name}: {op} used before "
                            f"definition in {inst}"
                        )
                elif db not in dom[id(b)]:
                    raise VerificationError(
                        f"@{func.name}/{b.name}: {op} does not dominate use in {inst}"
                    )
            for res in inst.results:
                seen_local.add(res.id)


def _successors(block: ir.Block) -> list[ir.Block]:
    term = block.terminator
    if isinstance(term, ir.BrInst):
        return [term.dest]
    if isinstance(term, ir.CondBrInst):
        return [term.true_dest, term.false_dest]
    return []


def _check_access_scopes(func: ir.Function, blocks: list[ir.Block]) -> None:
    """Verify the bracketing discipline of formal access instructions.

    Token *usage* is purely structural; scope liveness is a forward
    must-be-open dataflow (intersection at joins) — a token usable at a
    program point must be open on every path reaching it.
    """
    begins: dict[int, ir.BeginAccessInst] = {}
    for block in blocks:
        for inst in block.instructions:
            if isinstance(inst, ir.BeginAccessInst):
                begins[inst.results[0].id] = inst
    if not begins:
        return

    for block in blocks:
        for inst in block.instructions:
            for i, op in enumerate(inst.operands):
                if op.id not in begins:
                    continue
                consumes_token = (
                    isinstance(
                        inst,
                        (ir.AccessLoadInst, ir.AccessStoreInst, ir.EndAccessInst),
                    )
                    and i == 0
                )
                if not consumes_token:
                    raise VerificationError(
                        f"@{func.name}/{block.name}: access token {op} may only "
                        f"be consumed by access_load/access_store/end_access, "
                        f"not {inst}"
                    )
            if isinstance(inst, ir.AccessStoreInst):
                begin = begins.get(inst.token.id)
                if begin is not None and begin.kind == "read":
                    raise VerificationError(
                        f"@{func.name}/{block.name}: access_store through a "
                        f"[read] access in {inst}"
                    )
        for op in block.terminator.operands:
            if op.id in begins:
                raise VerificationError(
                    f"@{func.name}/{block.name}: access token {op} escapes "
                    f"through {block.terminator}"
                )

    # Forward must-analysis: state = set of token ids open on *all* paths.
    state: dict[int, set[int] | None] = {id(b): None for b in blocks}
    state[id(func.entry)] = set()
    by_id = {id(b): b for b in blocks}
    worklist = [func.entry]
    while worklist:
        block = worklist.pop()
        open_now = set(state[id(block)] or ())
        for inst in block.instructions:
            if isinstance(inst, ir.BeginAccessInst):
                open_now.add(inst.results[0].id)
            elif isinstance(inst, (ir.AccessLoadInst, ir.AccessStoreInst)):
                if inst.token.id in begins and inst.token.id not in open_now:
                    raise VerificationError(
                        f"@{func.name}/{block.name}: {inst} uses access token "
                        f"after its scope ended on some path"
                    )
            elif isinstance(inst, ir.EndAccessInst):
                if inst.token.id in begins and inst.token.id not in open_now:
                    raise VerificationError(
                        f"@{func.name}/{block.name}: {inst} ends an access "
                        f"that is not open (double end_access?)"
                    )
                open_now.discard(inst.token.id)
        if isinstance(block.terminator, ir.ReturnInst) and open_now:
            names = ", ".join(
                repr(begins[t].results[0]) for t in sorted(open_now)
            )
            raise VerificationError(
                f"@{func.name}/{block.name}: access scope(s) {names} still "
                f"open at return"
            )
        for succ in _successors(block):
            if id(succ) not in by_id:
                continue  # unreachable-successor edge; verified elsewhere
            prev = state[id(succ)]
            new = set(open_now) if prev is None else prev & open_now
            if prev is None or new != prev:
                state[id(succ)] = new
                worklist.append(succ)
