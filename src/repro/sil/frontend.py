"""Ahead-of-time lowering of Python functions to SIL.

This is the compiler frontend of the reproduction: it parses a Python
function's source with :mod:`ast` and lowers a documented subset of the
language to the SSA IR in :mod:`repro.sil.ir`.  Lowering happens **once**,
when a function is first compiled (e.g. when ``@differentiable`` is applied)
— never per call.  This is the property that makes the AD system
ahead-of-time rather than trace-based.

Supported subset
----------------
* positional parameters (with literal defaults at call sites)
* assignments to names and tuple-of-name targets; augmented assignment
* arithmetic, comparison (non-chained), unary, and boolean operators
  (``and``/``or`` lower to short-circuit control flow)
* ``if``/``elif``/``else``, ``while``, ``for x in <iterable>``, ``break``,
  ``continue``, early ``return``
* subscript/attribute stores (``a[i] = v``, ``obj.f = v``) and augmented
  assignment through them, lowered to formal ``begin_access [modify]`` /
  ``access_store`` / ``end_access`` scopes
* ``with inout(obj, key) as ref:`` (and ``borrow_attr``/``borrow_item``)
  lowered to a ``begin_access [modify]`` scope; ``ref.get()``, ``ref.set(v)``
  and ``ref.update(f)`` operate through the access token
* calls to primitives, other lowerable Python functions (recursively
  lowered, recursion allowed), ``math.*`` functions with registered
  primitive equivalents, and arbitrary first-class callables (indirect
  apply)
* tuple/list literals, indexing loads, attribute loads (struct_extract)
* conditional expressions (``a if c else b``)

Everything else raises :class:`~repro.errors.LoweringError` with a source
location, mirroring compiler diagnostics.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import textwrap
import types
from typing import Optional

from repro.errors import LoweringError, SourceLocation
from repro.sil import ir
from repro.sil.primitives import PRIMITIVES, Primitive
from repro.sil.verify import verify
from repro.sil import mathprims  # noqa: F401  (registers math primitives)

#: Python binary-operator AST node -> primitive name.
_BINOPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.Pow: "pow",
    ast.FloorDiv: "floordiv",
    ast.Mod: "mod",
    ast.MatMult: "matmul_op",
}

_CMPOPS = {
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
    ast.Eq: "eq",
    ast.NotEq: "ne",
}

#: Builtin callables lowered to primitives.
_BUILTIN_PRIMS = {
    len: "len",
    float: "float",
    int: "int",
    bool: "bool",
    abs: "abs",
    min: "min",
    max: "max",
    range: "range",
    print: "print",
}

#: Method names lowered to primitives (``x.sum()`` -> ``apply @tensor_sum(x)``).
#: Tensor and other subsystems extend this table at import time.  ``copy`` is
#: routed to the impure ``value_copy`` primitive so explicit value copies
#: survive optimization and are visible to the copy-materialization analysis.
METHOD_TABLE: dict[str, str] = {"copy": "value_copy"}


def register_method(method_name: str, primitive_name: str) -> None:
    """Route ``value.method_name(...)`` call sites to a primitive."""
    METHOD_TABLE[method_name] = primitive_name


#: Functions already lowered (or being lowered, for recursion support).
_LOWERING_CACHE: dict[object, ir.Function] = {}


def lower_function(pyfunc) -> ir.Function:
    """Lower ``pyfunc`` to a verified SIL :class:`~repro.sil.ir.Function`.

    Results are cached per function object; recursive functions resolve
    self-references to the in-progress Function.
    """
    cached = _LOWERING_CACHE.get(pyfunc)
    if cached is not None:
        return cached

    filename = getattr(pyfunc.__code__, "co_filename", "<unknown>")
    try:
        source = textwrap.dedent(inspect.getsource(pyfunc))
    except (OSError, TypeError) as exc:
        raise LoweringError(f"cannot fetch source of {pyfunc!r}: {exc}") from exc
    tree = ast.parse(source)
    fdef = tree.body[0]
    if not isinstance(fdef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise LoweringError(f"{pyfunc!r}: expected a function definition")
    if isinstance(fdef, ast.AsyncFunctionDef):
        raise LoweringError(f"{pyfunc.__name__}: async functions are unsupported")

    params = _parameter_names(fdef, pyfunc)
    func = ir.Function(pyfunc.__qualname__, params)
    func.pyfunc = pyfunc
    _LOWERING_CACHE[pyfunc] = func
    try:
        Lowerer(func, pyfunc, filename).run(fdef)
        verify(func)
    except Exception:
        del _LOWERING_CACHE[pyfunc]
        raise
    return func


def clear_lowering_cache() -> None:
    _LOWERING_CACHE.clear()


def lowering_cache_size() -> int:
    return len(_LOWERING_CACHE)


def _parameter_names(fdef: ast.FunctionDef, pyfunc) -> list[str]:
    a = fdef.args
    if a.vararg or a.kwarg or a.kwonlyargs or a.posonlyargs:
        raise LoweringError(
            f"{pyfunc.__name__}: only simple positional parameters are supported"
        )
    return [arg.arg for arg in a.args]


class _LoopContext:
    """Branch targets for break/continue plus the loop-carried variables."""

    def __init__(self, header: ir.Block, exit: ir.Block, carried: list[str]) -> None:
        self.header = header
        self.exit = exit
        self.carried = carried


class Lowerer:
    """Per-function lowering state: current block and variable bindings."""

    def __init__(self, func: ir.Function, pyfunc, filename: str) -> None:
        self.func = func
        self.pyfunc = pyfunc
        self.filename = filename
        self.block: Optional[ir.Block] = None
        self.vars: dict[str, ir.Value] = {}
        self.loops: list[_LoopContext] = []
        self._globals = pyfunc.__globals__
        self._closure = _closure_bindings(pyfunc)

    # -- plumbing ----------------------------------------------------------

    def loc(self, node: ast.AST) -> SourceLocation:
        return SourceLocation(
            self.filename, getattr(node, "lineno", 0), getattr(node, "col_offset", 0)
        )

    def fail(self, node: ast.AST, message: str) -> LoweringError:
        return LoweringError(f"{self.loc(node)}: {self.func.name}: {message}")

    def emit(self, inst: ir.Instruction) -> ir.Value:
        assert self.block is not None
        self.block.append(inst)
        return inst.result if inst.results else None  # type: ignore[return-value]

    def const(self, literal, node=None) -> ir.Value:
        return self.emit(ir.ConstInst(literal, self.loc(node) if node else None))

    def apply_prim(self, name: str, args, node=None) -> ir.Value:
        prim = PRIMITIVES[name]
        return self.emit(
            ir.ApplyInst(ir.FunctionRef(prim), args, self.loc(node) if node else None)
        )

    def terminate(self, term: ir.Terminator) -> None:
        assert self.block is not None
        self.block.append(term)
        self.block = None  # current path is closed

    # -- entry point -------------------------------------------------------

    def run(self, fdef: ast.FunctionDef) -> None:
        entry = self.func.new_block("entry")
        for name in self.func.param_names:
            entry.add_arg(hint=name)
        self.block = entry
        self.vars = dict(zip(self.func.param_names, entry.args))
        terminated = self.lower_stmts(fdef.body)
        if not terminated:
            # Implicit `return None` at the end of the function body.
            none = self.const(None)
            self.terminate(ir.ReturnInst(none))

    # -- statements ---------------------------------------------------------

    def lower_stmts(self, stmts: list[ast.stmt]) -> bool:
        """Lower a statement list; returns True if the path terminated."""
        for stmt in stmts:
            if self.block is None:
                # Unreachable trailing code after return/break/continue.
                return True
            self.lower_stmt(stmt)
        return self.block is None

    def lower_stmt(self, stmt: ast.stmt) -> None:
        method = getattr(self, f"stmt_{type(stmt).__name__}", None)
        if method is None:
            raise self.fail(stmt, f"unsupported statement {type(stmt).__name__}")
        method(stmt)

    def stmt_Return(self, stmt: ast.Return) -> None:
        value = (
            self.lower_expr(stmt.value) if stmt.value is not None else self.const(None)
        )
        self.terminate(ir.ReturnInst(value, self.loc(stmt)))

    def stmt_Pass(self, stmt: ast.Pass) -> None:
        pass

    def stmt_Assert(self, stmt: ast.Assert) -> None:
        # Assertions are compile-time erased in the lowered subset.
        pass

    def stmt_Expr(self, stmt: ast.Expr) -> None:
        if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, str):
            return  # docstring
        self.lower_expr(stmt.value)

    def stmt_Assign(self, stmt: ast.Assign) -> None:
        value = self.lower_expr(stmt.value)
        for target in stmt.targets:
            self.bind_target(target, value)

    def stmt_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        if stmt.value is None:
            raise self.fail(stmt, "bare annotations are unsupported")
        self.bind_target(stmt.target, self.lower_expr(stmt.value))

    def stmt_AugAssign(self, stmt: ast.AugAssign) -> None:
        prim = _BINOPS.get(type(stmt.op))
        if prim is None:
            raise self.fail(stmt, f"unsupported operator {type(stmt.op).__name__}")
        if isinstance(stmt.target, (ast.Subscript, ast.Attribute)):
            # Read-modify-write under one formal access, mirroring Swift: the
            # exclusive access spans the whole statement, so `a[i] += f(a)`
            # with a mutating `f` is an exclusivity violation.
            loc = self.loc(stmt)
            token = self._begin_target_access(stmt.target)
            current = self.emit(ir.AccessLoadInst(token, loc))
            rhs = self.lower_expr(stmt.value)
            new = self.apply_prim(prim, [current, rhs], stmt)
            self.emit(ir.AccessStoreInst(token, new, loc))
            self.emit(ir.EndAccessInst(token, loc))
            return
        if not isinstance(stmt.target, ast.Name):
            raise self.fail(stmt, "augmented assignment target must be a name")
        current = self.lookup(stmt.target.id, stmt)
        rhs = self.lower_expr(stmt.value)
        self.vars[stmt.target.id] = self.apply_prim(prim, [current, rhs], stmt)

    def _begin_target_access(self, target: ast.expr) -> ir.Value:
        """Lower an lvalue's base and key; open a ``[modify]`` access on it."""
        loc = self.loc(target)
        if isinstance(target, ast.Subscript):
            if isinstance(target.slice, ast.Slice):
                raise self.fail(target, "slice assignment is unsupported")
            base = self.lower_expr(target.value)
            key = self.lower_expr(target.slice)
            key_kind = "item"
        else:
            assert isinstance(target, ast.Attribute)
            base = self.lower_expr(target.value)
            key = self.const(target.attr, target)
            key_kind = "attr"
        return self.emit(ir.BeginAccessInst(base, key, "modify", key_kind, loc))

    def bind_target(self, target: ast.expr, value: ir.Value) -> None:
        if isinstance(target, ast.Name):
            value.hint = value.hint or target.id
            self.vars[target.id] = value
        elif isinstance(target, ast.Tuple):
            for i, elt in enumerate(target.elts):
                if isinstance(elt, ast.Starred):
                    raise self.fail(elt, "starred unpacking is unsupported")
                part = self.emit(ir.TupleExtractInst(value, i, self.loc(target)))
                self.bind_target(elt, part)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            loc = self.loc(target)
            token = self._begin_target_access(target)
            self.emit(ir.AccessStoreInst(token, value, loc))
            self.emit(ir.EndAccessInst(token, loc))
        else:
            raise self.fail(
                target,
                f"unsupported assignment target {type(target).__name__}",
            )

    def stmt_If(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.test)
        then_block = self.func.new_block()
        else_block = self.func.new_block()
        self.terminate(
            ir.CondBrInst(cond, then_block, (), else_block, (), self.loc(stmt))
        )

        base_vars = dict(self.vars)

        self.block, self.vars = then_block, dict(base_vars)
        then_done = self.lower_stmts(stmt.body)
        then_end, then_vars = self.block, self.vars

        self.block, self.vars = else_block, dict(base_vars)
        else_done = self.lower_stmts(stmt.orelse)
        else_end, else_vars = self.block, self.vars

        if then_done and else_done:
            self.block = None
            return

        join = self.func.new_block()
        if then_done:
            self._branch_to_join(else_end, else_vars, join, [else_vars])
        elif else_done:
            self._branch_to_join(then_end, then_vars, join, [then_vars])
        else:
            live = [
                name
                for name in then_vars
                if name in else_vars and then_vars[name] is not else_vars[name]
            ]
            args = {}
            for name in live:
                args[name] = join.add_arg(hint=name)
            then_end.append(
                ir.BrInst(join, [then_vars[n] for n in live], self.loc(stmt))
            )
            else_end.append(
                ir.BrInst(join, [else_vars[n] for n in live], self.loc(stmt))
            )
            merged = {
                n: v for n, v in then_vars.items() if else_vars.get(n) is not None
            }
            merged.update(args)
            self.vars = merged
        self.block = join

    def _branch_to_join(self, end_block, end_vars, join, var_sources) -> None:
        """Single live path into ``join``: pass everything through directly."""
        end_block.append(ir.BrInst(join, []))
        self.vars = dict(end_vars)

    def stmt_While(self, stmt: ast.While) -> None:
        if stmt.orelse:
            raise self.fail(stmt, "while/else is unsupported")
        carried = self._carried_names(stmt.body)
        self._lower_loop(
            carried,
            test=lambda: self.lower_expr(stmt.test),
            body=stmt.body,
            node=stmt,
        )

    def stmt_For(self, stmt: ast.For) -> None:
        if stmt.orelse:
            raise self.fail(stmt, "for/else is unsupported")
        # Desugar `for t in seq: body` into an index-driven while loop.  The
        # synthetic induction variable gets a unique name so nested loops
        # don't clobber each other's counters.
        idx = f"$idx{stmt.lineno}_{stmt.col_offset}"
        seq = self.lower_expr(stmt.iter)
        length = self.apply_prim("len", [seq], stmt)
        zero = self.const(0, stmt)
        self.vars[idx] = zero
        carried = self._carried_names(stmt.body) + [idx]

        def test() -> ir.Value:
            return self.apply_prim("lt", [self.vars[idx], length], stmt)

        def prologue() -> None:
            element = self.apply_prim("index_get", [seq, self.vars[idx]], stmt)
            one = self.const(1, stmt)
            self.vars[idx] = self.apply_prim("add", [self.vars[idx], one], stmt)
            self.bind_target(stmt.target, element)

        self._lower_loop(carried, test, stmt.body, stmt, prologue)
        del self.vars[idx]

    def _carried_names(self, body: list[ast.stmt]) -> list[str]:
        assigned = _assigned_names(body)
        return [name for name in self.vars if name in assigned]

    def _lower_loop(self, carried, test, body, node, prologue=None) -> None:
        header = self.func.new_block()
        body_block = self.func.new_block()
        exit_block = self.func.new_block()

        for name in carried:
            header.add_arg(hint=name)
        for name in carried:
            exit_block.add_arg(hint=name)

        self.terminate(
            ir.BrInst(header, [self.vars[n] for n in carried], self.loc(node))
        )

        # Header: rebind carried vars to header args, evaluate condition.
        self.block = header
        header_vars = dict(self.vars)
        header_vars.update(zip(carried, header.args))
        self.vars = header_vars
        cond = test()
        self.terminate(
            ir.CondBrInst(
                cond,
                body_block,
                (),
                exit_block,
                [self.vars[n] for n in carried],
                self.loc(node),
            )
        )

        # Body.
        self.block = body_block
        self.vars = dict(header_vars)
        self.loops.append(_LoopContext(header, exit_block, carried))
        try:
            if prologue is not None:
                prologue()
            done = self.lower_stmts(body)
        finally:
            self.loops.pop()
        if not done:
            self.terminate(
                ir.BrInst(header, [self.vars[n] for n in carried], self.loc(node))
            )

        # After the loop, carried vars hold the exit block's arguments.
        self.block = exit_block
        after = dict(header_vars)
        after.update(zip(carried, exit_block.args))
        self.vars = after

    def stmt_Break(self, stmt: ast.Break) -> None:
        if not self.loops:
            raise self.fail(stmt, "break outside loop")
        loop = self.loops[-1]
        self.terminate(
            ir.BrInst(loop.exit, [self.vars[n] for n in loop.carried], self.loc(stmt))
        )

    def stmt_Continue(self, stmt: ast.Continue) -> None:
        if not self.loops:
            raise self.fail(stmt, "continue outside loop")
        loop = self.loops[-1]
        self.terminate(
            ir.BrInst(
                loop.header, [self.vars[n] for n in loop.carried], self.loc(stmt)
            )
        )

    def stmt_With(self, stmt: ast.With) -> None:
        """Lower ``with inout(...)/borrow_attr(...)/borrow_item(...) as ref``.

        Only the scoped-borrow context managers from :mod:`repro.valsem.inout`
        are in the lowered subset; they become a formal ``begin_access
        [modify]`` scope whose token is bound to the ``as`` name.  The body
        must fall through (no return/break/continue out of the scope) so the
        matching ``end_access`` is emitted on every path.
        """
        from repro.valsem.inout import borrow_attr, borrow_item, inout

        if len(stmt.items) != 1:
            raise self.fail(stmt, "only a single context manager is supported")
        item = stmt.items[0]
        ctx = item.context_expr
        if not isinstance(ctx, ast.Call):
            raise self.fail(
                stmt,
                "unsupported statement With: the context expression must be "
                "an inout()/borrow_attr()/borrow_item() call",
            )
        found, target = self.try_static_eval(ctx.func)
        if not found or target not in (inout, borrow_attr, borrow_item):
            raise self.fail(
                stmt,
                "unsupported statement With: only inout()/borrow_attr()/"
                "borrow_item() context managers are in the lowered subset",
            )
        if len(ctx.args) != 2 or ctx.keywords:
            raise self.fail(stmt, "borrow context managers take (owner, key)")

        loc = self.loc(stmt)
        base = self.lower_expr(ctx.args[0])
        if target is borrow_attr:
            key_kind = "attr"
            key = self.lower_expr(ctx.args[1])
        elif target is borrow_item:
            key_kind = "item"
            key = self.lower_expr(ctx.args[1])
        else:
            # inout() picks attr-vs-item at runtime from the key; the lowered
            # subset resolves it statically: string literals name attributes.
            key_node = ctx.args[1]
            is_str = isinstance(key_node, ast.Constant) and isinstance(
                key_node.value, str
            )
            key_kind = "attr" if is_str else "item"
            key = self.lower_expr(key_node)
        token = self.emit(ir.BeginAccessInst(base, key, "modify", key_kind, loc))

        if item.optional_vars is not None:
            if not isinstance(item.optional_vars, ast.Name):
                raise self.fail(stmt, "with-target must be a simple name")
            token.hint = item.optional_vars.id
            self.vars[item.optional_vars.id] = token

        terminated = self.lower_stmts(stmt.body)
        if terminated:
            raise self.fail(
                stmt,
                "return/break/continue out of a borrow scope is outside the "
                "lowered subset (the access must end on every path)",
            )
        self.emit(ir.EndAccessInst(token, loc))
        if item.optional_vars is not None:
            del self.vars[item.optional_vars.id]

    # -- expressions ---------------------------------------------------------

    def lower_expr(self, node: ast.expr) -> ir.Value:
        method = getattr(self, f"expr_{type(node).__name__}", None)
        if method is None:
            raise self.fail(node, f"unsupported expression {type(node).__name__}")
        return method(node)

    def expr_Constant(self, node: ast.Constant) -> ir.Value:
        return self.const(node.value, node)

    def expr_Name(self, node: ast.Name) -> ir.Value:
        return self.lookup(node.id, node)

    def lookup(self, name: str, node: ast.AST) -> ir.Value:
        if name in self.vars:
            return self.vars[name]
        found, obj = self.resolve_static_name(name)
        if found:
            return self.const(obj, node)
        raise self.fail(node, f"name {name!r} is not defined on this path")

    def resolve_static_name(self, name: str) -> tuple[bool, object]:
        if name in self._closure:
            return True, self._closure[name]
        if name in self._globals:
            return True, self._globals[name]
        if hasattr(builtins, name):
            return True, getattr(builtins, name)
        return False, None

    def expr_BinOp(self, node: ast.BinOp) -> ir.Value:
        prim = _BINOPS.get(type(node.op))
        if prim is None:
            raise self.fail(node, f"unsupported operator {type(node.op).__name__}")
        left = self.lower_expr(node.left)
        right = self.lower_expr(node.right)
        return self.apply_prim(prim, [left, right], node)

    def expr_UnaryOp(self, node: ast.UnaryOp) -> ir.Value:
        operand = self.lower_expr(node.operand)
        if isinstance(node.op, ast.USub):
            return self.apply_prim("neg", [operand], node)
        if isinstance(node.op, ast.UAdd):
            return operand
        if isinstance(node.op, ast.Not):
            return self.apply_prim("not", [operand], node)
        raise self.fail(node, f"unsupported unary {type(node.op).__name__}")

    def expr_Compare(self, node: ast.Compare) -> ir.Value:
        if len(node.ops) != 1:
            raise self.fail(node, "chained comparisons are unsupported")
        prim = _CMPOPS.get(type(node.ops[0]))
        if prim is None:
            raise self.fail(
                node, f"unsupported comparison {type(node.ops[0]).__name__}"
            )
        left = self.lower_expr(node.left)
        right = self.lower_expr(node.comparators[0])
        return self.apply_prim(prim, [left, right], node)

    def expr_BoolOp(self, node: ast.BoolOp) -> ir.Value:
        # Short-circuit lowering: `a and b` == `b if a else a`.
        result = self.lower_expr(node.values[0])
        for value_node in node.values[1:]:
            if isinstance(node.op, ast.And):
                result = self._select(result, lambda: self.lower_expr(value_node), result, node)
            else:
                result = self._select(result, result, lambda: self.lower_expr(value_node), node)
        return result

    def expr_IfExp(self, node: ast.IfExp) -> ir.Value:
        cond = self.lower_expr(node.test)
        return self._select(
            cond,
            lambda: self.lower_expr(node.body),
            lambda: self.lower_expr(node.orelse),
            node,
        )

    def _select(self, cond, true_val, false_val, node) -> ir.Value:
        """Control-flow select; arms may be values or thunks lowering lazily."""
        then_block = self.func.new_block()
        else_block = self.func.new_block()
        join = self.func.new_block()
        out = join.add_arg()
        base_vars = dict(self.vars)
        self.terminate(
            ir.CondBrInst(cond, then_block, (), else_block, (), self.loc(node))
        )

        self.block, self.vars = then_block, dict(base_vars)
        tv = true_val() if callable(true_val) else true_val
        self.terminate(ir.BrInst(join, [tv], self.loc(node)))

        self.block, self.vars = else_block, dict(base_vars)
        fv = false_val() if callable(false_val) else false_val
        self.terminate(ir.BrInst(join, [fv], self.loc(node)))

        self.block, self.vars = join, base_vars
        return out

    def expr_Tuple(self, node: ast.Tuple) -> ir.Value:
        elements = [self.lower_expr(e) for e in node.elts]
        return self.emit(ir.TupleInst(elements, self.loc(node)))

    def expr_List(self, node: ast.List) -> ir.Value:
        elements = [self.lower_expr(e) for e in node.elts]
        return self.apply_prim("list_make", elements, node)

    def expr_Subscript(self, node: ast.Subscript) -> ir.Value:
        base = self.lower_expr(node.value)
        if isinstance(node.slice, ast.Slice):
            if node.slice.step is not None:
                raise self.fail(node, "strided slices are unsupported")
            lower = (
                self.lower_expr(node.slice.lower)
                if node.slice.lower is not None
                else self.const(None, node)
            )
            upper = (
                self.lower_expr(node.slice.upper)
                if node.slice.upper is not None
                else self.const(None, node)
            )
            return self.apply_prim("slice_get", [base, lower, upper], node)
        index = self.lower_expr(node.slice)
        return self.apply_prim("index_get", [base, index], node)

    def expr_Attribute(self, node: ast.Attribute) -> ir.Value:
        found, obj = self.try_static_eval(node)
        if found:
            return self.const(obj, node)
        base = self.lower_expr(node.value)
        return self.emit(ir.StructExtractInst(base, node.attr, self.loc(node)))

    def try_static_eval(self, node: ast.expr) -> tuple[bool, object]:
        """Evaluate Name/Attribute chains rooted at module-level constants.

        Only module attributes are folded (e.g. ``math.pi``); attributes of
        runtime values must remain ``struct_extract`` so AD sees them.
        """
        if isinstance(node, ast.Name) and node.id not in self.vars:
            return self.resolve_static_name(node.id)
        if isinstance(node, ast.Attribute):
            found, base = self.try_static_eval(node.value)
            if found and isinstance(base, types.ModuleType):
                try:
                    return True, getattr(base, node.attr)
                except AttributeError:
                    return False, None
        return False, None

    def expr_Call(self, node: ast.Call) -> ir.Value:
        found, target = self.try_static_eval(node.func)
        if found:
            return self.lower_static_call(node, target)

        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "get",
            "set",
            "update",
        ):
            access = self._try_lower_access_method(node)
            if access is not None:
                return access

        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in METHOD_TABLE
        ):
            receiver = self.lower_expr(node.func.value)
            args = [receiver] + [self.lower_expr(a) for a in node.args]
            args += [self.lower_expr(kw.value) for kw in node.keywords]
            return self.apply_prim(METHOD_TABLE[node.func.attr], args, node)

        callee = self.lower_expr(node.func)
        args = self._positional_args(node)
        return self.emit(ir.ApplyInst(callee, args, self.loc(node)))

    def _try_lower_access_method(self, node: ast.Call) -> Optional[ir.Value]:
        """Lower ``ref.get()/.set(v)/.update(f)`` when ``ref`` is an access
        token bound by a ``with inout(...)`` scope.  Returns None when the
        receiver is not a known access token (plain method-call lowering
        proceeds)."""
        recv = node.func.value
        if not (isinstance(recv, ast.Name) and recv.id in self.vars):
            return None
        token = self.vars[recv.id]
        if token.type is not ir.ACCESS:
            return None
        loc = self.loc(node)
        method = node.func.attr
        if node.keywords:
            raise self.fail(node, f"{method}() takes no keyword arguments")
        if method == "get":
            if node.args:
                raise self.fail(node, "get() takes no arguments")
            return self.emit(ir.AccessLoadInst(token, loc))
        if method == "set":
            if len(node.args) != 1:
                raise self.fail(node, "set() takes exactly one argument")
            value = self.lower_expr(node.args[0])
            self.emit(ir.AccessStoreInst(token, value, loc))
            return self.const(None, node)
        if len(node.args) != 1:
            raise self.fail(node, "update() takes exactly one argument")
        current = self.emit(ir.AccessLoadInst(token, loc))
        fn = self.lower_expr(node.args[0])
        new = self.emit(ir.ApplyInst(fn, [current], loc))
        self.emit(ir.AccessStoreInst(token, new, loc))
        return self.const(None, node)

    def _positional_args(self, node: ast.Call) -> list[ir.Value]:
        if node.keywords:
            raise self.fail(
                node, "keyword arguments require a statically-known callee"
            )
        args = []
        for a in node.args:
            if isinstance(a, ast.Starred):
                raise self.fail(a, "*args expansion is unsupported")
            args.append(self.lower_expr(a))
        return args

    def lower_static_call(self, node: ast.Call, target) -> ir.Value:
        loc = self.loc(node)

        if isinstance(target, Primitive):
            return self.emit(
                ir.ApplyInst(ir.FunctionRef(target), self._positional_args(node), loc)
            )

        try:
            mapped = _BUILTIN_PRIMS.get(target)
        except TypeError:  # unhashable callee (e.g. a layer instance)
            mapped = None
        if mapped is not None:
            return self.apply_prim(mapped, self._positional_args(node), node)

        # math.* functions map to registered primitives of the same name.
        if getattr(target, "__module__", None) == "math":
            name = target.__name__
            if name in PRIMITIVES:
                return self.apply_prim(name, self._positional_args(node), node)

        sil_func = getattr(target, "__sil_function__", None)
        if sil_func is not None:
            args = self._bind_call(node, sil_func.pyfunc or target)
            return self.emit(ir.ApplyInst(ir.FunctionRef(sil_func), args, loc))

        if isinstance(target, types.FunctionType):
            try:
                lowered = lower_function(target)
            except LoweringError:
                lowered = None
            if lowered is not None:
                args = self._bind_call(node, target)
                return self.emit(ir.ApplyInst(ir.FunctionRef(lowered), args, loc))

        # Opaque callable: keep the object as a constant, apply indirectly.
        callee = self.const(target, node)
        return self.emit(ir.ApplyInst(callee, self._positional_args(node), loc))

    def _bind_call(self, node: ast.Call, pyfunc) -> list[ir.Value]:
        """Bind call-site args (incl. keywords and defaults) to positions."""
        if not node.keywords:
            args = [self.lower_expr(a) for a in node.args]
            sig = inspect.signature(pyfunc)
            n_params = len(sig.parameters)
            if len(args) < n_params:
                for param in list(sig.parameters.values())[len(args) :]:
                    if param.default is inspect.Parameter.empty:
                        raise self.fail(node, f"missing argument {param.name!r}")
                    args.append(self.const(param.default, node))
            return args

        sig = inspect.signature(pyfunc)
        pos_nodes = list(node.args)
        kw_nodes = {kw.arg: kw.value for kw in node.keywords}
        if None in kw_nodes:
            raise self.fail(node, "**kwargs expansion is unsupported")
        args: list[ir.Value] = []
        for i, param in enumerate(sig.parameters.values()):
            if i < len(pos_nodes):
                args.append(self.lower_expr(pos_nodes[i]))
            elif param.name in kw_nodes:
                args.append(self.lower_expr(kw_nodes.pop(param.name)))
            elif param.default is not inspect.Parameter.empty:
                args.append(self.const(param.default, node))
            else:
                raise self.fail(node, f"missing argument {param.name!r}")
        if kw_nodes:
            raise self.fail(node, f"unexpected keyword arguments {sorted(kw_nodes)}")
        return args


def _closure_bindings(pyfunc) -> dict[str, object]:
    names = pyfunc.__code__.co_freevars
    cells = pyfunc.__closure__ or ()
    bindings = {}
    for name, cell in zip(names, cells):
        try:
            bindings[name] = cell.cell_contents
        except ValueError:  # unfilled cell (e.g. recursion)
            continue
    return bindings


def _assigned_names(stmts: list[ast.stmt]) -> set[str]:
    """Names (re)bound anywhere inside ``stmts``, including nested blocks."""
    names: set[str] = set()

    class Visitor(ast.NodeVisitor):
        def visit_Name(self, node: ast.Name) -> None:
            if isinstance(node.ctx, ast.Store):
                names.add(node.id)

        def visit_FunctionDef(self, node):  # don't descend into nested defs
            names.add(node.name)

        visit_AsyncFunctionDef = visit_FunctionDef

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
            self.generic_visit(node)

    for stmt in stmts:
        Visitor().visit(stmt)
    return names
