"""A reference interpreter for SIL functions.

Execution walks basic blocks, maintaining an environment from SSA value to
runtime object.  ``Apply`` of a :class:`~repro.sil.primitives.Primitive`
calls its Python implementation; apply of another lowered
:class:`~repro.sil.ir.Function` recurses; indirect applies call the runtime
callee object directly.

The interpreter is the "gold standard" semantics: optimization passes and
the AD transformation are tested against it.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import InterpreterError
from repro.sil import ir
from repro.sil.primitives import Primitive

#: Safety net against accidental infinite loops in lowered user code.
MAX_STEPS = 10_000_000


class _ReadAccess:
    """Runtime token of a ``begin_access [read]``: observe, never mutate.

    Read accesses may overlap each other, so they do not register in the
    exclusivity table; only ``modify`` accesses materialize as
    :class:`~repro.valsem.inout.InoutRef` unique borrows.
    """

    __slots__ = ("_owner", "_key", "_kind")

    def __init__(self, owner, key, kind: str) -> None:
        self._owner = owner
        self._key = key
        self._kind = kind

    def get(self):
        if self._kind == "attr":
            return getattr(self._owner, self._key)
        return self._owner[self._key]

    def set(self, value) -> None:
        raise InterpreterError("access_store through a [read] access")

    def end(self) -> None:
        pass


def _begin_access(inst: ir.BeginAccessInst, base, key):
    if inst.kind == "modify":
        from repro.valsem.inout import InoutRef

        # The dynamic exclusivity check: overlapping modify accesses raise
        # BorrowError here, verifying the static borrow checker's verdict.
        return InoutRef(base, key, inst.key_kind)
    return _ReadAccess(base, key, inst.key_kind)


def bind_results(inst: ir.Instruction, value, env: dict[int, object]) -> None:
    """Store an evaluated instruction's value (if it produces one)."""
    if inst.results:
        env[inst.results[0].id] = value


def call_function(func: ir.Function, args: Sequence[object]) -> object:
    """Execute ``func`` on ``args`` and return its result."""
    if len(args) != len(func.params):
        raise InterpreterError(
            f"@{func.name} expects {len(func.params)} args, got {len(args)}"
        )
    env: dict[int, object] = {}
    block = func.entry
    block_args: Sequence[object] = list(args)
    steps = 0
    while True:
        for param, value in zip(block.args, block_args):
            env[param.id] = value
        for inst in block.body:
            steps += 1
            if steps > MAX_STEPS:
                raise InterpreterError(f"@{func.name}: exceeded {MAX_STEPS} steps")
            bind_results(inst, eval_instruction(inst, env), env)
        term = block.terminator
        if isinstance(term, ir.ReturnInst):
            return env[term.value.id]
        if isinstance(term, ir.BrInst):
            block_args = [env[v.id] for v in term.operands]
            block = term.dest
        elif isinstance(term, ir.CondBrInst):
            if env[term.cond.id]:
                block_args = [env[v.id] for v in term.true_args]
                block = term.true_dest
            else:
                block_args = [env[v.id] for v in term.false_args]
                block = term.false_dest
        else:  # pragma: no cover - verifier prevents this
            raise InterpreterError(f"unknown terminator {term}")


def eval_instruction(inst: ir.Instruction, env: dict[int, object]) -> object:
    """Evaluate one non-terminator instruction in ``env``."""
    if isinstance(inst, ir.ConstInst):
        return inst.literal
    if isinstance(inst, ir.ApplyInst):
        args = [env[v.id] for v in inst.args]
        return apply_callee(resolve_callee(inst, env), args)
    if isinstance(inst, ir.TupleInst):
        return tuple(env[v.id] for v in inst.operands)
    if isinstance(inst, ir.TupleExtractInst):
        return env[inst.operands[0].id][inst.index]
    if isinstance(inst, ir.StructExtractInst):
        return getattr(env[inst.operands[0].id], inst.field)
    if isinstance(inst, ir.BeginAccessInst):
        return _begin_access(inst, env[inst.base.id], env[inst.key.id])
    if isinstance(inst, ir.AccessLoadInst):
        return env[inst.token.id].get()
    if isinstance(inst, ir.AccessStoreInst):
        env[inst.token.id].set(env[inst.value.id])
        return None
    if isinstance(inst, ir.EndAccessInst):
        env[inst.token.id].end()
        return None
    raise InterpreterError(f"cannot evaluate {inst}")


def resolve_callee(inst: ir.ApplyInst, env: dict[int, object]):
    if inst.is_indirect:
        return env[inst.callee.id]
    return inst.callee.target


def apply_callee(target, args: Sequence[object]) -> object:
    if isinstance(target, Primitive):
        return target.fn(*args)
    if isinstance(target, ir.Function):
        return call_function(target, args)
    if callable(target):
        return target(*args)
    raise InterpreterError(f"cannot apply non-callable {target!r}")


def count_instructions(func: ir.Function, args: Sequence[object]) -> int:
    """Execute ``func`` and count dynamically executed instructions.

    Used by the mobile-deployment cost model to size the operation graph a
    framework runtime would walk per evaluation.
    """
    counter = 0
    env: dict[int, object] = {}
    block = func.entry
    block_args: Sequence[object] = list(args)
    while True:
        for param, value in zip(block.args, block_args):
            env[param.id] = value
        for inst in block.body:
            counter += 1
            bind_results(inst, eval_instruction(inst, env), env)
        term = block.terminator
        counter += 1
        if isinstance(term, ir.ReturnInst):
            return counter
        if isinstance(term, ir.BrInst):
            block_args = [env[v.id] for v in term.operands]
            block = term.dest
        elif isinstance(term, ir.CondBrInst):
            if env[term.cond.id]:
                block_args = [env[v.id] for v in term.true_args]
                block = term.true_dest
            else:
                block_args = [env[v.id] for v in term.false_args]
                block = term.false_dest
