"""Core data structures of the SSA intermediate representation.

This module is the Python analogue of the Swift Intermediate Language (SIL)
that the paper's automatic-differentiation transformation operates on
(Section 2.2).  The IR is in static single assignment form with *block
arguments* instead of phi nodes, exactly as in SIL: a branch passes values to
the destination block's arguments.

The instruction set is deliberately small.  Almost all computation is an
:class:`ApplyInst` of either a registered primitive (the base case of the AD
recursion) or another lowered function.  Structural instructions
(tuple/struct construction and projection) exist as first-class instructions
because the AD synthesis needs to reason about them directly.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence, Union

from repro.errors import SourceLocation


class SILType:
    """A lightweight, mostly-advisory type tag attached to SSA values.

    The frontend annotates values where the type is statically evident;
    everything else is :data:`ANY`.  The verifier checks structure, not
    types — matching the scope of this reproduction.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"${self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SILType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("SILType", self.name))


FLOAT = SILType("Float")
INT = SILType("Int")
BOOL = SILType("Bool")
STRING = SILType("String")
TUPLE = SILType("Tuple")
STRUCT = SILType("Struct")
LIST = SILType("List")
TENSOR = SILType("Tensor")
FUNCTION = SILType("Function")
ACCESS = SILType("Access")
ANY = SILType("Any")


class Value:
    """A single SSA value: a block argument or an instruction result."""

    _ids = itertools.count()

    __slots__ = ("id", "type", "producer", "hint")

    def __init__(self, type: SILType = ANY, producer=None, hint: str = "") -> None:
        self.id = next(Value._ids)
        self.type = type
        # The Instruction or Block that defines this value.
        self.producer = producer
        # Optional source-level variable name, for printing/diagnostics.
        self.hint = hint

    def __repr__(self) -> str:
        suffix = f"#{self.hint}" if self.hint else ""
        return f"%{self.id}{suffix}"


class Instruction:
    """Base class of every SIL instruction."""

    #: True for instructions that end a basic block.
    is_terminator = False

    __slots__ = ("operands", "results", "parent", "loc")

    def __init__(
        self,
        operands: Sequence[Value] = (),
        n_results: int = 1,
        result_type: SILType = ANY,
        loc: Optional[SourceLocation] = None,
    ) -> None:
        self.operands: list[Value] = list(operands)
        self.results: list[Value] = [
            Value(result_type, producer=self) for _ in range(n_results)
        ]
        self.parent: Optional[Block] = None
        self.loc = loc or SourceLocation()

    @property
    def result(self) -> Value:
        if len(self.results) != 1:
            raise ValueError(f"{self} has {len(self.results)} results")
        return self.results[0]

    def opname(self) -> str:
        return type(self).__name__.removesuffix("Inst").lower()

    def __repr__(self) -> str:
        res = ", ".join(map(repr, self.results))
        ops = ", ".join(map(repr, self.operands))
        head = f"{res} = " if self.results else ""
        return f"{head}{self.opname()} {ops}"


class ConstInst(Instruction):
    """Materializes a Python object as an SSA value.

    The literal may be any Python object (numbers, strings, ``None``,
    modules, callables captured from the enclosing scope, ...).  Constants
    are never *varied* for activity analysis.
    """

    __slots__ = ("literal",)

    def __init__(self, literal, loc=None) -> None:
        t = _literal_type(literal)
        super().__init__((), 1, t, loc)
        self.literal = literal

    def __repr__(self) -> str:
        return f"{self.result!r} = const {self.literal!r}"


def _literal_type(literal) -> SILType:
    if isinstance(literal, bool):
        return BOOL
    if isinstance(literal, int):
        return INT
    if isinstance(literal, float):
        return FLOAT
    if isinstance(literal, str):
        return STRING
    return ANY


class FunctionRef:
    """A direct reference to a callable target of :class:`ApplyInst`.

    ``target`` is either a :class:`repro.sil.primitives.Primitive` or a
    lowered :class:`Function` (or any object exposing the same interface).
    Direct references avoid a global name registry and keep modules
    self-contained.
    """

    __slots__ = ("target",)

    def __init__(self, target) -> None:
        self.target = target

    @property
    def name(self) -> str:
        return getattr(self.target, "name", repr(self.target))

    def __repr__(self) -> str:
        return f"@{self.name}"


class ApplyInst(Instruction):
    """Function application.

    ``callee`` is a :class:`FunctionRef` (direct call) or a :class:`Value`
    (indirect call of a first-class function value, e.g. a layer stored in a
    model struct).  For indirect calls the callee value is also the first
    operand so analyses uniformly see it as a data dependency.
    """

    __slots__ = ("callee",)

    def __init__(
        self,
        callee: Union[FunctionRef, Value],
        args: Sequence[Value],
        loc=None,
    ) -> None:
        operands = ([callee] if isinstance(callee, Value) else []) + list(args)
        super().__init__(operands, 1, ANY, loc)
        self.callee = callee

    @property
    def is_indirect(self) -> bool:
        return isinstance(self.callee, Value)

    @property
    def args(self) -> list[Value]:
        return self.operands[1:] if self.is_indirect else self.operands

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.args))
        callee = repr(self.callee)
        return f"{self.result!r} = apply {callee}({args})"


class TupleInst(Instruction):
    """Constructs a tuple from its operands."""

    def __init__(self, elements: Sequence[Value], loc=None) -> None:
        super().__init__(elements, 1, TUPLE, loc)


class TupleExtractInst(Instruction):
    """Projects element ``index`` out of a tuple value."""

    __slots__ = ("index",)

    def __init__(self, operand: Value, index: int, loc=None) -> None:
        super().__init__((operand,), 1, ANY, loc)
        self.index = index

    def __repr__(self) -> str:
        return f"{self.result!r} = tuple_extract {self.operands[0]!r}, {self.index}"


class StructExtractInst(Instruction):
    """Reads field ``field`` of a struct (attribute access)."""

    __slots__ = ("field",)

    def __init__(self, operand: Value, field: str, loc=None) -> None:
        super().__init__((operand,), 1, ANY, loc)
        self.field = field

    def __repr__(self) -> str:
        return f"{self.result!r} = struct_extract {self.operands[0]!r}, #{self.field}"


class BeginAccessInst(Instruction):
    """Opens a formal access to one storage location, ``base[key]`` or
    ``base.key`` — the SIL analogue of Swift's ``begin_access``.

    ``kind`` is ``"read"`` or ``"modify"``; ``key_kind`` is ``"item"``
    (subscript) or ``"attr"`` (stored property).  The single result is an
    *access token* (type :data:`ACCESS`): the only value through which the
    location may be read (:class:`AccessLoadInst`) or written
    (:class:`AccessStoreInst`) until a matching :class:`EndAccessInst`.

    The law of exclusivity is checked twice over these instructions: the
    static borrow checker (``repro.analysis.ownership``) proves scopes
    disjoint ahead of time, and the interpreter materializes each ``modify``
    token as a :class:`repro.valsem.inout.InoutRef`, whose runtime
    :class:`~repro.errors.BorrowError` verifies the static result.
    """

    __slots__ = ("kind", "key_kind")

    def __init__(
        self, base: Value, key: Value, kind: str = "modify",
        key_kind: str = "item", loc=None,
    ) -> None:
        if kind not in ("read", "modify"):
            raise ValueError(f"invalid access kind {kind!r}")
        if key_kind not in ("item", "attr"):
            raise ValueError(f"invalid access key kind {key_kind!r}")
        super().__init__((base, key), 1, ACCESS, loc)
        self.kind = kind
        self.key_kind = key_kind

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def key(self) -> Value:
        return self.operands[1]

    def __repr__(self) -> str:
        return (
            f"{self.result!r} = begin_access [{self.kind}] "
            f"{self.base!r}, {self.key_kind} {self.key!r}"
        )


class AccessLoadInst(Instruction):
    """Reads the current value of the location behind an access token."""

    def __init__(self, token: Value, loc=None) -> None:
        super().__init__((token,), 1, ANY, loc)

    @property
    def token(self) -> Value:
        return self.operands[0]

    def __repr__(self) -> str:
        return f"{self.result!r} = access_load {self.token!r}"


class AccessStoreInst(Instruction):
    """Writes ``value`` through an access token (requires ``modify``)."""

    def __init__(self, token: Value, value: Value, loc=None) -> None:
        super().__init__((token, value), 0, ANY, loc)

    @property
    def token(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    def __repr__(self) -> str:
        return f"access_store {self.token!r}, {self.value!r}"


class EndAccessInst(Instruction):
    """Closes the access scope opened by a :class:`BeginAccessInst`."""

    def __init__(self, token: Value, loc=None) -> None:
        super().__init__((token,), 0, ANY, loc)

    @property
    def token(self) -> Value:
        return self.operands[0]

    def __repr__(self) -> str:
        return f"end_access {self.token!r}"


#: Instruction classes participating in formal access scopes.
ACCESS_INSTS = (BeginAccessInst, AccessLoadInst, AccessStoreInst, EndAccessInst)


class Terminator(Instruction):
    is_terminator = True

    def __init__(self, operands=(), loc=None) -> None:
        super().__init__(operands, 0, ANY, loc)

    def successors(self) -> list["Block"]:
        return []


class BrInst(Terminator):
    """Unconditional branch, passing ``args`` to ``dest``'s block arguments."""

    __slots__ = ("dest",)

    def __init__(self, dest: "Block", args: Sequence[Value] = (), loc=None) -> None:
        super().__init__(args, loc)
        self.dest = dest

    def successors(self) -> list["Block"]:
        return [self.dest]

    def __repr__(self) -> str:
        args = ", ".join(map(repr, self.operands))
        return f"br {self.dest.name}({args})"


class CondBrInst(Terminator):
    """Two-way conditional branch with per-edge argument lists."""

    __slots__ = ("true_dest", "false_dest", "n_true")

    def __init__(
        self,
        cond: Value,
        true_dest: "Block",
        true_args: Sequence[Value],
        false_dest: "Block",
        false_args: Sequence[Value],
        loc=None,
    ) -> None:
        super().__init__([cond, *true_args, *false_args], loc)
        self.true_dest = true_dest
        self.false_dest = false_dest
        self.n_true = len(true_args)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def true_args(self) -> list[Value]:
        return self.operands[1 : 1 + self.n_true]

    @property
    def false_args(self) -> list[Value]:
        return self.operands[1 + self.n_true :]

    def successors(self) -> list["Block"]:
        return [self.true_dest, self.false_dest]

    def __repr__(self) -> str:
        t = ", ".join(map(repr, self.true_args))
        f = ", ".join(map(repr, self.false_args))
        return (
            f"cond_br {self.cond!r}, "
            f"{self.true_dest.name}({t}), {self.false_dest.name}({f})"
        )


class ReturnInst(Terminator):
    """Returns a single value from the function."""

    def __init__(self, value: Value, loc=None) -> None:
        super().__init__((value,), loc)

    @property
    def value(self) -> Value:
        return self.operands[0]

    def __repr__(self) -> str:
        return f"return {self.value!r}"


class Block:
    """A basic block: arguments, a straight-line body, and one terminator."""

    _ids = itertools.count()

    def __init__(self, name: str = "", arg_types: Sequence[SILType] = ()) -> None:
        self.name = name or f"bb{next(Block._ids)}"
        self.args: list[Value] = [Value(t, producer=self) for t in arg_types]
        self.instructions: list[Instruction] = []

    def add_arg(self, type: SILType = ANY, hint: str = "") -> Value:
        v = Value(type, producer=self, hint=hint)
        self.args.append(v)
        return v

    def append(self, inst: Instruction) -> Instruction:
        if self.instructions and self.instructions[-1].is_terminator:
            raise ValueError(f"block {self.name} already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    @property
    def terminator(self) -> Terminator:
        if not self.instructions or not self.instructions[-1].is_terminator:
            raise ValueError(f"block {self.name} is not terminated")
        return self.instructions[-1]  # type: ignore[return-value]

    @property
    def body(self) -> list[Instruction]:
        """Instructions excluding the terminator."""
        insts = self.instructions
        if insts and insts[-1].is_terminator:
            return insts[:-1]
        return list(insts)

    def successors(self) -> list["Block"]:
        return self.terminator.successors()

    def __repr__(self) -> str:
        return f"<Block {self.name}>"


class Function:
    """A SIL function: an ordered list of blocks, entry block first.

    The entry block's arguments are the function parameters.  ``pyfunc``
    optionally retains the original Python callable for fallback execution
    and for resolving default arguments.
    """

    def __init__(self, name: str, param_names: Sequence[str] = ()) -> None:
        self.name = name
        self.blocks: list[Block] = []
        self.param_names = list(param_names)
        self.pyfunc = None

    @property
    def entry(self) -> Block:
        return self.blocks[0]

    @property
    def params(self) -> list[Value]:
        return self.entry.args

    def new_block(self, name: str = "") -> Block:
        b = Block(name)
        self.blocks.append(b)
        return b

    def values(self) -> Iterator[Value]:
        """All SSA values defined in this function, in program order."""
        for block in self.blocks:
            yield from block.args
            for inst in block.instructions:
                yield from inst.results

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def predecessors(self) -> dict[Block, list[Block]]:
        preds: dict[Block, list[Block]] = {b: [] for b in self.blocks}
        for block in self.blocks:
            for succ in block.successors():
                preds[succ].append(block)
        return preds

    def reachable_blocks(self) -> list[Block]:
        """Blocks reachable from entry, in depth-first preorder."""
        seen: list[Block] = []
        seen_set: set[int] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if id(b) in seen_set:
                continue
            seen_set.add(id(b))
            seen.append(b)
            stack.extend(reversed(b.successors()))
        return seen

    def __repr__(self) -> str:
        from repro.sil.printer import print_function

        return print_function(self)


def users(func: Function) -> dict[Value, list[Instruction]]:
    """Map each value to the instructions that consume it."""
    table: dict[Value, list[Instruction]] = {}
    for inst in func.instructions():
        for op in inst.operands:
            table.setdefault(op, []).append(inst)
    return table
