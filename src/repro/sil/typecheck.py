"""Typed verification of SIL functions (the second verifier tier).

:mod:`repro.sil.verify` checks SSA *structure*; this module checks the
instruction-level typing discipline on top of it:

* apply-site arity against the callee's signature — primitive signatures
  come from :attr:`repro.sil.primitives.Primitive.arity`, lowered-function
  callees must receive exactly one argument per parameter (the frontend
  materializes defaults at call sites);
* operand dtype expectations: math primitives take numeric operands,
  ``cond_br`` conditions must be truth-testable scalars, projections
  (``tuple_extract``/``struct_extract``) must project out of aggregates;
* tuple shape: a ``tuple_extract`` whose operand is a ``tuple`` instruction
  of statically-known arity must use an in-range index, and branch argument
  types must be compatible with the destination block-argument types.

Types are propagated forward through the function first (a small local
inference: constants and comparison results refine the advisory ``ANY``
annotations), so e.g. feeding a comparison result into ``exp`` is caught
even though the frontend typed both values ``ANY``.

All problems are *collected* as :class:`~repro.errors.Diagnostic`s rather
than raised one at a time — the batched-diagnostics discipline of the
paper's Section 2.2 pipeline.
"""

from __future__ import annotations

from repro.errors import Diagnostic, VerificationError, render_diagnostics
from repro.sil import ir
from repro.sil.primitives import Primitive

#: Primitives whose result is always a boolean.
_BOOL_RESULT_PRIMS = {"lt", "le", "gt", "ge", "eq", "ne", "not", "bool"}

#: Primitives requiring numeric (scalar or tensor) operands.
_NUMERIC_ONLY_PRIMS = {
    "exp",
    "log",
    "sin",
    "cos",
    "tanh",
    "sqrt",
    "rsqrt",
    "sigmoid",
    "relu",
    "neg",
    "sub",
    "div",
    "pow",
    "abs",
}

#: SILTypes acceptable as operands of numeric primitives.
_NUMERIC_TYPES = {ir.FLOAT, ir.INT, ir.BOOL, ir.TENSOR, ir.ANY}

#: SILTypes that can never be truth-tested meaningfully as a branch
#: condition in lowered code (callables and strings reaching a ``cond_br``
#: always indicate a frontend or pass bug).
_BAD_COND_TYPES = {ir.FUNCTION, ir.STRING}

#: Result types of primitives with a statically-known result dtype.
_RESULT_TYPE_PRIMS: dict[str, ir.SILType] = {
    **{name: ir.BOOL for name in _BOOL_RESULT_PRIMS},
    "float": ir.FLOAT,
    "int": ir.INT,
    "len": ir.INT,
    "tuple_make": ir.TUPLE,
    "list_make": ir.LIST,
}


def _loc(inst: ir.Instruction):
    return inst.loc


def _infer_types(func: ir.Function) -> dict[int, ir.SILType]:
    """Forward type propagation: refine ``ANY`` annotations where the
    defining instruction makes the type statically evident."""
    types: dict[int, ir.SILType] = {}
    for value in func.values():
        types[value.id] = value.type

    for block in func.reachable_blocks():
        for inst in block.instructions:
            if isinstance(inst, ir.ConstInst):
                types[inst.result.id] = ir._literal_type(inst.literal)
            elif isinstance(inst, ir.TupleInst):
                types[inst.result.id] = ir.TUPLE
            elif isinstance(inst, ir.ApplyInst) and not inst.is_indirect:
                target = inst.callee.target
                if isinstance(target, Primitive):
                    refined = _RESULT_TYPE_PRIMS.get(target.name)
                    if refined is not None:
                        types[inst.result.id] = refined
    return types


def typecheck(func: ir.Function) -> list[Diagnostic]:
    """Collect every typing violation in ``func`` (does not raise)."""
    diagnostics: list[Diagnostic] = []
    types = _infer_types(func)

    def type_of(value: ir.Value) -> ir.SILType:
        return types.get(value.id, ir.ANY)

    for block in func.reachable_blocks():
        for inst in block.instructions:
            if isinstance(inst, ir.ApplyInst):
                diagnostics.extend(_check_apply(func, inst, type_of))
            elif isinstance(inst, ir.TupleExtractInst):
                diagnostics.extend(_check_tuple_extract(func, inst, type_of))
            elif isinstance(inst, ir.StructExtractInst):
                operand_t = type_of(inst.operands[0])
                if operand_t not in (ir.STRUCT, ir.ANY):
                    diagnostics.append(
                        Diagnostic(
                            "error",
                            f"@{func.name}: struct_extract #{inst.field} of "
                            f"non-struct value of type {operand_t!r}",
                            _loc(inst),
                        )
                    )
            elif isinstance(inst, ir.BeginAccessInst):
                base_t = type_of(inst.base)
                if base_t is ir.ACCESS:
                    diagnostics.append(
                        Diagnostic(
                            "error",
                            f"@{func.name}: begin_access base {inst.base} is "
                            f"itself an access token",
                            _loc(inst),
                        )
                    )
                if inst.key_kind == "attr":
                    key_t = type_of(inst.key)
                    if key_t not in (ir.STRING, ir.ANY):
                        diagnostics.append(
                            Diagnostic(
                                "error",
                                f"@{func.name}: begin_access attr key "
                                f"{inst.key} has non-string type {key_t!r}",
                                _loc(inst),
                            )
                        )
            elif isinstance(
                inst, (ir.AccessLoadInst, ir.AccessStoreInst, ir.EndAccessInst)
            ):
                token_t = type_of(inst.token)
                if token_t not in (ir.ACCESS, ir.ANY):
                    diagnostics.append(
                        Diagnostic(
                            "error",
                            f"@{func.name}: {inst} token operand {inst.token} "
                            f"has type {token_t!r}, expected Access",
                            _loc(inst),
                        )
                    )
            elif isinstance(inst, ir.CondBrInst):
                cond_t = type_of(inst.cond)
                if cond_t in _BAD_COND_TYPES or cond_t in (ir.TUPLE, ir.STRUCT):
                    diagnostics.append(
                        Diagnostic(
                            "error",
                            f"@{func.name}/{block.name}: cond_br condition "
                            f"{inst.cond} has non-boolean type {cond_t!r}",
                            _loc(inst),
                        )
                    )
            if isinstance(inst, (ir.BrInst, ir.CondBrInst)):
                for dest, args in _branch_edges(inst):
                    diagnostics.extend(
                        _check_edge_types(func, block, dest, args, type_of)
                    )
    return diagnostics


def verify_typed(func: ir.Function) -> list[Diagnostic]:
    """Structural verification followed by type checking.

    Raises :class:`VerificationError` carrying *all* type errors at once;
    returns the warning-level diagnostics otherwise.
    """
    from repro.sil.verify import verify

    warnings = verify(func)
    diagnostics = typecheck(func)
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        raise VerificationError(
            f"@{func.name}: {len(errors)} type error(s):\n"
            + render_diagnostics(errors)
        )
    return warnings + diagnostics


# ---------------------------------------------------------------------------
# Per-instruction checks.
# ---------------------------------------------------------------------------


def _branch_edges(term):
    if isinstance(term, ir.BrInst):
        return [(term.dest, list(term.operands))]
    return [
        (term.true_dest, term.true_args),
        (term.false_dest, term.false_args),
    ]


def _compatible(a: ir.SILType, b: ir.SILType) -> bool:
    if a == ir.ANY or b == ir.ANY:
        return True
    if a == b:
        return True
    # Numeric widening along branch edges (loop-carried counters etc.).
    return a in _NUMERIC_TYPES and b in _NUMERIC_TYPES


def _check_edge_types(func, block, dest, args, type_of) -> list[Diagnostic]:
    out = []
    for arg, param in zip(args, dest.args):
        at, pt = type_of(arg), type_of(param)
        if not _compatible(at, pt):
            out.append(
                Diagnostic(
                    "error",
                    f"@{func.name}/{block.name}: branch passes {arg} of type "
                    f"{at!r} to {dest.name} argument of type {pt!r}",
                    _loc(block.terminator),
                )
            )
    return out


def _check_apply(func, inst: ir.ApplyInst, type_of) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    callee = inst.callee
    target = None
    if not inst.is_indirect:
        target = callee.target
    else:
        producer = callee.producer
        if isinstance(producer, ir.ConstInst):
            target = producer.literal

    n_args = len(inst.args)
    if isinstance(target, Primitive):
        lo, hi = target.arity
        if n_args < lo or (hi is not None and n_args > hi):
            expected = f"{lo}" if hi == lo else f"{lo}..{'*' if hi is None else hi}"
            out.append(
                Diagnostic(
                    "error",
                    f"@{func.name}: apply @{target.name} expects {expected} "
                    f"argument(s), got {n_args}",
                    _loc(inst),
                )
            )
        if target.name in _NUMERIC_ONLY_PRIMS:
            for arg in inst.args:
                at = type_of(arg)
                if at not in _NUMERIC_TYPES:
                    out.append(
                        Diagnostic(
                            "error",
                            f"@{func.name}: apply @{target.name} operand "
                            f"{arg} has non-numeric type {at!r}",
                            _loc(inst),
                        )
                    )
    elif isinstance(target, ir.Function):
        if n_args != len(target.params):
            out.append(
                Diagnostic(
                    "error",
                    f"@{func.name}: apply @{target.name} expects "
                    f"{len(target.params)} argument(s), got {n_args}",
                    _loc(inst),
                )
            )
    elif inst.is_indirect and target is not None and not callable(target):
        out.append(
            Diagnostic(
                "error",
                f"@{func.name}: apply of non-callable constant {target!r}",
                _loc(inst),
            )
        )
    return out


def _check_tuple_extract(func, inst: ir.TupleExtractInst, type_of) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    operand = inst.operands[0]
    operand_t = type_of(operand)
    if operand_t not in (ir.TUPLE, ir.LIST, ir.ANY):
        out.append(
            Diagnostic(
                "error",
                f"@{func.name}: tuple_extract of non-aggregate value "
                f"{operand} of type {operand_t!r}",
                _loc(inst),
            )
        )
    producer = operand.producer
    if isinstance(producer, ir.TupleInst):
        arity = len(producer.operands)
        if not (0 <= inst.index < arity):
            out.append(
                Diagnostic(
                    "error",
                    f"@{func.name}: tuple_extract index {inst.index} out of "
                    f"range for tuple of {arity} element(s)",
                    _loc(inst),
                )
            )
    return out
