"""Primitive functions: the leaves of the AD recursion.

A :class:`Primitive` wraps a plain Python callable together with optional
registered derivative functions (a JVP and a VJP — see Figure 3 of the
paper).  The derivative-synthesis pass terminates its recursion whenever it
reaches a primitive with a registered derivative, exactly as the paper's
``@derivative(of:)`` attribute terminates the SIL transformation.

Primitives are generic over operand type: the same ``add`` primitive adds
Python floats, naive tensors, eager tensors and lazy tensors, because the
implementations dispatch through the operands' own operators.  This is what
keeps the AD system decoupled from any particular Tensor implementation.
"""

from __future__ import annotations

import contextlib
import inspect
from typing import Callable, Optional

#: When set (a list), every ``Primitive.__call__`` appends itself here.
#: Installed by :func:`observe_primitive_calls`; the derivative verifier
#: uses it to catch pullbacks that re-run primal work instead of capturing
#: the forward value.  ``None`` keeps the fast path allocation-free.
_CALL_OBSERVER: Optional[list] = None


@contextlib.contextmanager
def observe_primitive_calls():
    """Record every primitive invocation made inside the ``with`` body."""
    global _CALL_OBSERVER
    previous, calls = _CALL_OBSERVER, []
    _CALL_OBSERVER = calls
    try:
        yield calls
    finally:
        _CALL_OBSERVER = previous


class Primitive:
    """A named callable with optional JVP/VJP derivative functions.

    ``vjp(*args) -> (result, pullback)`` where ``pullback(cotangent)``
    returns a tuple of cotangents, one per argument (``None`` marks a
    structurally non-differentiable argument such as an integer index).

    ``jvp(primals, tangents) -> (result, tangent)``.

    ``nondiff_args`` lists argument positions that are never differentiable
    (indices, shapes, flags); activity analysis uses this to avoid flagging
    e.g. ``index_get(xs, i)`` as non-differentiable w.r.t. ``i``.
    """

    def __init__(
        self,
        name: str,
        fn: Callable,
        vjp: Optional[Callable] = None,
        jvp: Optional[Callable] = None,
        nondiff_args: tuple[int, ...] = (),
        pure: bool = True,
    ) -> None:
        self.name = name
        self.fn = fn
        self.vjp = vjp
        self.jvp = jvp
        self.nondiff_args = nondiff_args
        #: Pure primitives may be constant-folded and CSE'd.
        self.pure = pure
        self._arity: Optional[tuple[int, Optional[int]]] = None

    @property
    def differentiable(self) -> bool:
        return self.vjp is not None or self.jvp is not None

    @property
    def arity(self) -> tuple[int, Optional[int]]:
        """``(min_args, max_args)`` of the implementation; ``max_args`` is
        ``None`` for variadic primitives.  Used by the typed SIL verifier to
        check apply-site operand counts against the primitive signature."""
        if self._arity is None:
            try:
                sig = inspect.signature(self.fn)
            except (TypeError, ValueError):
                self._arity = (0, None)
                return self._arity
            lo = 0
            hi: Optional[int] = 0
            for param in sig.parameters.values():
                if param.kind == inspect.Parameter.VAR_POSITIONAL:
                    hi = None
                elif param.kind in (
                    inspect.Parameter.POSITIONAL_ONLY,
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                ):
                    if param.default is inspect.Parameter.empty:
                        lo += 1
                    if hi is not None:
                        hi += 1
            self._arity = (lo, hi)
        return self._arity

    def __call__(self, *args):
        if _CALL_OBSERVER is not None:
            _CALL_OBSERVER.append(self)
        return self.fn(*args)

    def def_vjp(self, fn: Callable) -> Callable:
        """Register a VJP — the ``@derivative(of:)`` mechanism."""
        self.vjp = fn
        return fn

    def def_jvp(self, fn: Callable) -> Callable:
        self.jvp = fn
        return fn

    def __repr__(self) -> str:
        return f"<Primitive {self.name}>"


#: Global primitive table, keyed by name.  Populated here with the scalar /
#: structural core; tensor subsystems register their own primitives on import.
PRIMITIVES: dict[str, Primitive] = {}


def primitive(
    name: str,
    *,
    vjp: Optional[Callable] = None,
    jvp: Optional[Callable] = None,
    nondiff_args: tuple[int, ...] = (),
    pure: bool = True,
) -> Callable[[Callable], Primitive]:
    """Decorator registering ``fn`` as primitive ``name``."""

    def register(fn: Callable) -> Primitive:
        if name in PRIMITIVES:
            raise ValueError(f"primitive {name!r} already registered")
        p = Primitive(name, fn, vjp=vjp, jvp=jvp, nondiff_args=nondiff_args, pure=pure)
        PRIMITIVES[name] = p
        return p

    return register


def get_primitive(name: str) -> Primitive:
    return PRIMITIVES[name]


def _unbroadcast(ct, like):
    """Reduce a cotangent back to the shape of the operand it belongs to.

    Needed because the arithmetic primitives broadcast (e.g. bias add):
    the adjoint of a broadcast is a sum over the broadcast dimensions.
    No-op for scalars and for matching shapes.
    """
    reducer = getattr(ct, "sum_to_match", None)
    if reducer is None:
        return ct
    if isinstance(like, (int, float)):
        return reducer(())
    like_shape = getattr(like, "shape", None)
    if like_shape is None:
        return ct
    return reducer(tuple(like_shape))


# ---------------------------------------------------------------------------
# Arithmetic core.  Implemented via the operands' own operators so any type
# with operator overloads (floats, tensors) flows through unchanged.
# ---------------------------------------------------------------------------


@primitive("add")
def add(x, y):
    return x + y


@add.def_vjp
def _add_vjp(x, y):
    return x + y, lambda ct: (_unbroadcast(ct, x), _unbroadcast(ct, y))


@add.def_jvp
def _add_jvp(primals, tangents):
    (x, y), (dx, dy) = primals, tangents
    return x + y, dx + dy


@primitive("sub")
def sub(x, y):
    return x - y


@sub.def_vjp
def _sub_vjp(x, y):
    return x - y, lambda ct: (_unbroadcast(ct, x), _unbroadcast(-ct, y))


@sub.def_jvp
def _sub_jvp(primals, tangents):
    (x, y), (dx, dy) = primals, tangents
    return x - y, dx - dy


@primitive("mul")
def mul(x, y):
    return x * y


@mul.def_vjp
def _mul_vjp(x, y):
    return x * y, lambda ct: (_unbroadcast(ct * y, x), _unbroadcast(x * ct, y))


@mul.def_jvp
def _mul_jvp(primals, tangents):
    (x, y), (dx, dy) = primals, tangents
    return x * y, dx * y + x * dy


@primitive("div")
def div(x, y):
    return x / y


@div.def_vjp
def _div_vjp(x, y):
    z = x / y
    return z, lambda ct: (
        _unbroadcast(ct / y, x),
        _unbroadcast(-ct * z / y, y),
    )


@div.def_jvp
def _div_jvp(primals, tangents):
    (x, y), (dx, dy) = primals, tangents
    z = x / y
    return z, (dx - z * dy) / y


@primitive("neg")
def neg(x):
    return -x


@neg.def_vjp
def _neg_vjp(x):
    return -x, lambda ct: (-ct,)


@neg.def_jvp
def _neg_jvp(primals, tangents):
    return -primals[0], -tangents[0]


@primitive("pow")
def pow_(x, y):
    return x**y


def _log_of(x):
    """ln(x), generic over scalars and tensors."""
    log = getattr(x, "log", None)
    if callable(log):
        return log()
    import math

    return math.log(x)


@pow_.def_vjp
def _pow_vjp(x, y):
    z = x**y
    def pullback(ct):
        dx = ct * y * x ** (y - 1)
        # d/dy x**y = x**y * ln(x); only valid for x > 0, which covers the
        # differentiable uses.  Integer exponents are usually non-varied.
        try:
            dy = ct * z * _log_of(x)
            if isinstance(y, (int, float)) and callable(getattr(dy, "sum", None)):
                # Tensor base, scalar exponent: contract to a scalar cotangent.
                dy = dy.sum().item()
        except (ValueError, TypeError):
            dy = None
        return (dx, dy)

    return z, pullback


@pow_.def_jvp
def _pow_jvp(primals, tangents):
    (x, y), (dx, dy) = primals, tangents
    z = x**y
    dz = dx * y * x ** (y - 1)
    if dy is not None and not (isinstance(dy, float) and dy == 0.0):
        try:
            dz = dz + dy * z * _log_of(x)
        except (ValueError, TypeError):
            pass
    return z, dz


# Comparison / logical primitives: results are booleans, never differentiable.

@primitive("lt")
def lt(x, y):
    return x < y


@primitive("le")
def le(x, y):
    return x <= y


@primitive("gt")
def gt(x, y):
    return x > y


@primitive("ge")
def ge(x, y):
    return x >= y


@primitive("eq")
def eq(x, y):
    return x == y


@primitive("ne")
def ne(x, y):
    return x != y


@primitive("not")
def not_(x):
    return not x


@primitive("floordiv")
def floordiv(x, y):
    return x // y


@primitive("mod")
def mod(x, y):
    return x % y


@primitive("matmul_op")
def matmul_op(x, y):
    """The ``@`` operator; forwards to the operands' ``__matmul__``."""
    return x @ y


@matmul_op.def_vjp
def _matmul_op_vjp(x, y):
    if hasattr(x, "__vjp_matmul__"):
        return x.__vjp_matmul__(y)
    raise TypeError(f"no matmul VJP for {type(x).__name__}")


@matmul_op.def_jvp
def _matmul_op_jvp(primals, tangents):
    x, y = primals
    dx, dy = tangents
    result = x @ y
    parts = []
    if not (isinstance(dx, float) or dx is None) or hasattr(dx, "shape"):
        if hasattr(dx, "shape"):
            parts.append(dx @ y)
    if hasattr(dy, "shape"):
        parts.append(x @ dy)
    if not parts:
        from repro.core.differentiable import ZERO

        return result, ZERO
    tangent = parts[0]
    for p in parts[1:]:
        tangent = tangent + p
    return result, tangent


# Structural primitives.

@primitive("index_get", nondiff_args=(1,))
def index_get(xs, i):
    return xs[i]


@primitive("slice_get", nondiff_args=(1, 2))
def slice_get(xs, start, stop):
    return xs[start:stop]


@primitive("len")
def len_(xs):
    return len(xs)


@primitive("list_make")
def list_make(*elts):
    return list(elts)


@primitive("tuple_make")
def tuple_make(*elts):
    return tuple(elts)


@primitive("value_copy", pure=False)
def value_copy(x):
    """Swift's ``var y = x`` on a COW value: an O(1) logical copy.

    Dispatches to the operand's own ``copy()`` (``ValueArray``, ``list``,
    ``dict``, ...).  Impure on purpose: duplicating storage claims is a
    refcount side effect the ownership analysis models, so the optimizer
    must not fold, CSE, or drop it.
    """
    return x.copy()


@primitive("abs")
def abs_(x):
    return abs(x)


def _abs_sign(x):
    """d|x|/dx, generic over scalars and tensors (0 at x == 0)."""
    sign = getattr(x, "sign", None)
    if sign is not None and callable(sign):
        return sign()
    return 1.0 if x > 0 else -1.0 if x < 0 else 0.0


@abs_.def_vjp
def _abs_vjp(x):
    s = _abs_sign(x)
    return abs(x), lambda ct: (ct * s,)


@abs_.def_jvp
def _abs_jvp(primals, tangents):
    (x,), (dx,) = primals, tangents
    return abs(x), dx * _abs_sign(x)


@primitive("min")
def min_(*xs):
    return min(*xs)


@min_.def_vjp
def _min_vjp(*xs):
    y = min(*xs)
    idx = next(i for i, x in enumerate(xs) if x == y)

    def pullback(ct):
        return tuple(ct if i == idx else None for i in range(len(xs)))

    return y, pullback


@min_.def_jvp
def _min_jvp(primals, tangents):
    y = min(*primals)
    idx = next(i for i, x in enumerate(primals) if x == y)
    return y, tangents[idx]


@primitive("max")
def max_(*xs):
    return max(*xs)


@max_.def_vjp
def _max_vjp(*xs):
    y = max(*xs)
    idx = next(i for i, x in enumerate(xs) if x == y)

    def pullback(ct):
        return tuple(ct if i == idx else None for i in range(len(xs)))

    return y, pullback


@max_.def_jvp
def _max_jvp(primals, tangents):
    y = max(*primals)
    idx = next(i for i, x in enumerate(primals) if x == y)
    return y, tangents[idx]


@primitive("float")
def float_(x):
    return float(x)


@float_.def_vjp
def _float_vjp(x):
    return float(x), lambda ct: (ct,)


@float_.def_jvp
def _float_jvp(primals, tangents):
    t = tangents[0]
    return float(primals[0]), t if not isinstance(t, (int, float)) else float(t)


@primitive("int")
def int_(x):
    return int(x)


@primitive("bool")
def bool_(x):
    return bool(x)


@primitive("range")
def range_(*args):
    return range(*args)


@primitive("print", pure=False)
def print_(*args):
    print(*args)
    return None


# Discrete-valued primitives have zero derivative almost everywhere: the
# pullback stops gradient flow (None cotangent), the JVP emits a zero
# tangent.  This lets code like `segment = int(x * n)` appear inside
# differentiable functions (the spline model's knot lookup).


def _discrete_vjp(prim):
    def vjp(*args):
        result = prim.fn(*args)
        n = len(args)
        return result, lambda ct: (None,) * n

    prim.vjp = vjp

    def jvp(primals, tangents):
        return prim.fn(*primals), 0.0

    prim.jvp = jvp


for _p in (len_, int_, bool_, floordiv, mod, lt, le, gt, ge, eq, ne, not_, range_):
    _discrete_vjp(_p)
