"""Differentiable math primitives generic over scalars and tensors.

Each primitive dispatches to the operand's own method when available (so
``exp(t)`` works for any Tensor backend exposing ``t.exp()``) and falls back
to :mod:`math` for Python scalars.  Registered VJPs are written against the
same generic operations, which is what keeps the AD system decoupled from
any particular Tensor implementation.
"""

from __future__ import annotations

import math

from repro.sil.primitives import primitive


def _dispatch(name: str, x):
    method = getattr(x, name, None)
    if method is not None and callable(method):
        return method()
    return getattr(math, name)(x)


@primitive("exp")
def exp(x):
    return _dispatch("exp", x)


@exp.def_vjp
def _exp_vjp(x):
    y = exp(x)
    return y, lambda ct: (ct * y,)


@exp.def_jvp
def _exp_jvp(primals, tangents):
    y = exp(primals[0])
    return y, tangents[0] * y


@primitive("log")
def log(x):
    return _dispatch("log", x)


@log.def_vjp
def _log_vjp(x):
    return log(x), lambda ct: (ct / x,)


@log.def_jvp
def _log_jvp(primals, tangents):
    return log(primals[0]), tangents[0] / primals[0]


@primitive("sin")
def sin(x):
    return _dispatch("sin", x)


@sin.def_vjp
def _sin_vjp(x):
    return sin(x), lambda ct: (ct * cos(x),)


@sin.def_jvp
def _sin_jvp(primals, tangents):
    return sin(primals[0]), tangents[0] * cos(primals[0])


@primitive("cos")
def cos(x):
    return _dispatch("cos", x)


@cos.def_vjp
def _cos_vjp(x):
    return cos(x), lambda ct: (-ct * sin(x),)


@cos.def_jvp
def _cos_jvp(primals, tangents):
    return cos(primals[0]), -tangents[0] * sin(primals[0])


@primitive("tanh")
def tanh(x):
    return _dispatch("tanh", x)


@tanh.def_vjp
def _tanh_vjp(x):
    y = tanh(x)
    return y, lambda ct: (ct * (1.0 - y * y),)


@tanh.def_jvp
def _tanh_jvp(primals, tangents):
    y = tanh(primals[0])
    return y, tangents[0] * (1.0 - y * y)


@primitive("sqrt")
def sqrt(x):
    return _dispatch("sqrt", x)


@sqrt.def_vjp
def _sqrt_vjp(x):
    y = sqrt(x)
    return y, lambda ct: (ct / (y + y),)


@sqrt.def_jvp
def _sqrt_jvp(primals, tangents):
    y = sqrt(primals[0])
    return y, tangents[0] / (y + y)


@primitive("sigmoid")
def sigmoid(x):
    method = getattr(x, "sigmoid", None)
    if method is not None and callable(method):
        return method()
    return 1.0 / (1.0 + math.exp(-x))


@sigmoid.def_vjp
def _sigmoid_vjp(x):
    y = sigmoid(x)
    return y, lambda ct: (ct * y * (1.0 - y),)


@sigmoid.def_jvp
def _sigmoid_jvp(primals, tangents):
    y = sigmoid(primals[0])
    return y, tangents[0] * y * (1.0 - y)


@primitive("relu")
def relu(x):
    method = getattr(x, "relu", None)
    if method is not None and callable(method):
        return method()
    return x if x > 0.0 else 0.0 * x


@relu.def_vjp
def _relu_vjp(x):
    method = getattr(x, "relu_vjp", None)
    if method is not None and callable(method):
        return method()
    y = relu(x)
    return y, lambda ct: (ct if x > 0.0 else 0.0 * ct,)


@relu.def_jvp
def _relu_jvp(primals, tangents):
    (x,), (dx,) = primals, tangents
    method = getattr(x, "relu_jvp", None)
    if method is not None and callable(method):
        return method(dx)
    y = relu(x)
    return y, dx if x > 0.0 else 0.0 * dx


@tanh.def_jvp
def _tanh_jvp2(primals, tangents):  # noqa: F811 - supersedes earlier stub
    y = tanh(primals[0])
    return y, tangents[0] * (1.0 - y * y)


@primitive("rsqrt")
def rsqrt(x):
    method = getattr(x, "rsqrt", None)
    if method is not None and callable(method):
        return method()
    return 1.0 / math.sqrt(x)


@rsqrt.def_vjp
def _rsqrt_vjp(x):
    y = rsqrt(x)
    return y, lambda ct: (ct * -0.5 * y / x,)


@rsqrt.def_jvp
def _rsqrt_jvp(primals, tangents):
    y = rsqrt(primals[0])
    return y, tangents[0] * -0.5 * y / primals[0]
