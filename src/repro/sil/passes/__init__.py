"""Optimization passes over SIL functions.

Because the AD transformation runs on the IR, its output is subject to the
same passes as regular code (a point Section 2.2 of the paper makes about
SIL).  Each pass is semantics-preserving; property tests check every pass
against the reference interpreter on randomized programs.
"""

from repro.sil.passes.dce import dead_code_elimination
from repro.sil.passes.constfold import constant_fold
from repro.sil.passes.cse import common_subexpression_elimination
from repro.sil.passes.inline import inline_calls
from repro.sil.passes.pipeline import run_default_pipeline

__all__ = [
    "dead_code_elimination",
    "constant_fold",
    "common_subexpression_elimination",
    "inline_calls",
    "run_default_pipeline",
]
