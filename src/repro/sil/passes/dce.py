"""Dead code elimination.

Removes pure instructions whose results are never used, and blocks that are
unreachable from entry.  Impure applies (``pure=False`` primitives, opaque
indirect calls) are conservatively kept.
"""

from __future__ import annotations

from repro.sil import ir
from repro.sil.primitives import Primitive


def _is_removable(inst: ir.Instruction) -> bool:
    if inst.is_terminator:
        return False
    if isinstance(inst, ir.ACCESS_INSTS):
        return False  # formal access scopes are effectful (exclusivity, COW)
    if isinstance(inst, ir.ApplyInst):
        if inst.is_indirect:
            return False  # unknown callee may have effects
        target = inst.callee.target
        if isinstance(target, Primitive):
            return target.pure
        return isinstance(target, ir.Function)  # lowered subset is pure
    return True  # const / tuple / extracts are pure


def dead_code_elimination(func: ir.Function) -> bool:
    """Run DCE to a fixed point; returns True if anything changed."""
    changed = False

    # Drop unreachable blocks first so their uses don't pin values.
    reachable = set(map(id, func.reachable_blocks()))
    new_blocks = [b for b in func.blocks if id(b) in reachable]
    if len(new_blocks) != len(func.blocks):
        func.blocks = new_blocks
        changed = True

    while True:
        used: set[int] = set()
        for inst in func.instructions():
            for op in inst.operands:
                used.add(op.id)
        removed_any = False
        for block in func.blocks:
            kept = []
            for inst in block.instructions:
                if _is_removable(inst) and not any(
                    r.id in used for r in inst.results
                ):
                    removed_any = True
                    continue
                kept.append(inst)
            block.instructions = kept
        if not removed_any:
            break
        changed = True
    return changed
