"""Constant folding and branch simplification.

Folds pure primitive applies whose operands are all constants, folds
tuple/struct projections of constants, and rewrites ``cond_br`` on a
constant condition into an unconditional ``br``.
"""

from __future__ import annotations

from repro.sil import ir
from repro.sil.primitives import Primitive

#: Literal types we are willing to fold.  Folding arbitrary objects (tensors,
#: closures) could duplicate work or capture mutable state.
_FOLDABLE = (bool, int, float, str, tuple, type(None))


def constant_fold(func: ir.Function) -> bool:
    """One folding sweep; returns True if anything changed."""
    consts: dict[int, object] = {}
    for inst in func.instructions():
        if isinstance(inst, ir.ConstInst):
            consts[inst.result.id] = inst.literal

    changed = False
    replacements: dict[int, ir.Value] = {}

    for block in func.blocks:
        new_insts: list[ir.Instruction] = []
        for inst in block.instructions:
            # Rewrite operands through earlier replacements.
            inst.operands = [replacements.get(op.id, op) for op in inst.operands]

            folded = _try_fold(inst, consts)
            if folded is not _NO_FOLD:
                const = ir.ConstInst(folded, inst.loc)
                const.parent = block
                consts[const.result.id] = folded
                replacements[inst.result.id] = const.result
                new_insts.append(const)
                changed = True
                continue

            if isinstance(inst, ir.CondBrInst) and inst.cond.id in consts:
                taken = bool(consts[inst.cond.id])
                dest = inst.true_dest if taken else inst.false_dest
                args = inst.true_args if taken else inst.false_args
                br = ir.BrInst(dest, args, inst.loc)
                br.parent = block
                new_insts.append(br)
                changed = True
                continue

            new_insts.append(inst)
        block.instructions = new_insts

    if replacements:
        for inst in func.instructions():
            inst.operands = [replacements.get(op.id, op) for op in inst.operands]
    return changed


_NO_FOLD = object()


def _try_fold(inst: ir.Instruction, consts: dict[int, object]):
    if isinstance(inst, ir.ApplyInst) and not inst.is_indirect:
        target = inst.callee.target
        if (
            isinstance(target, Primitive)
            and target.pure
            and all(op.id in consts for op in inst.args)
        ):
            args = [consts[op.id] for op in inst.args]
            if all(isinstance(a, _FOLDABLE) for a in args):
                try:
                    result = target.fn(*args)
                except Exception:
                    return _NO_FOLD
                if isinstance(result, _FOLDABLE):
                    return result
        return _NO_FOLD
    if isinstance(inst, ir.TupleExtractInst):
        op = inst.operands[0]
        if op.id in consts and isinstance(consts[op.id], tuple):
            try:
                value = consts[op.id][inst.index]
            except IndexError:
                return _NO_FOLD
            if isinstance(value, _FOLDABLE):
                return value
    return _NO_FOLD
