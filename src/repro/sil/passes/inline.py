"""Function inlining.

Replaces ``apply`` of small lowered functions with a copy of the callee's
body spliced into the caller's CFG.  The call site's block is split; the
callee's return instructions become branches to the continuation block.
"""

from __future__ import annotations

from repro.sil import ir


def _clone_into(caller: ir.Function, callee: ir.Function, args, continuation):
    """Clone callee blocks into caller; return the cloned entry block."""
    value_map: dict[int, ir.Value] = {}
    block_map: dict[int, ir.Block] = {}

    for block in callee.blocks:
        clone = caller.new_block(f"{callee.name}.{block.name}")
        block_map[id(block)] = clone
        for arg in block.args:
            value_map[arg.id] = clone.add_arg(arg.type, arg.hint)

    # Map entry parameters straight to call-site argument values.
    for param, arg in zip(callee.entry.args, args):
        value_map[param.id] = arg
    block_map[id(callee.entry)].args = []

    def mapped(v: ir.Value) -> ir.Value:
        return value_map.get(v.id, v)

    for block in callee.blocks:
        clone = block_map[id(block)]
        for inst in block.instructions:
            new = _clone_instruction(inst, mapped, block_map, continuation)
            clone.append(new)
            for old_res, new_res in zip(inst.results, new.results):
                value_map[old_res.id] = new_res
    return block_map[id(callee.entry)]


def _clone_instruction(inst, mapped, block_map, continuation):
    if isinstance(inst, ir.ConstInst):
        return ir.ConstInst(inst.literal, inst.loc)
    if isinstance(inst, ir.ApplyInst):
        callee = mapped(inst.callee) if inst.is_indirect else inst.callee
        return ir.ApplyInst(callee, [mapped(a) for a in inst.args], inst.loc)
    if isinstance(inst, ir.TupleInst):
        return ir.TupleInst([mapped(o) for o in inst.operands], inst.loc)
    if isinstance(inst, ir.TupleExtractInst):
        return ir.TupleExtractInst(mapped(inst.operands[0]), inst.index, inst.loc)
    if isinstance(inst, ir.StructExtractInst):
        return ir.StructExtractInst(mapped(inst.operands[0]), inst.field, inst.loc)
    if isinstance(inst, ir.BeginAccessInst):
        return ir.BeginAccessInst(
            mapped(inst.base), mapped(inst.key), inst.kind, inst.key_kind, inst.loc
        )
    if isinstance(inst, ir.AccessLoadInst):
        return ir.AccessLoadInst(mapped(inst.token), inst.loc)
    if isinstance(inst, ir.AccessStoreInst):
        return ir.AccessStoreInst(mapped(inst.token), mapped(inst.value), inst.loc)
    if isinstance(inst, ir.EndAccessInst):
        return ir.EndAccessInst(mapped(inst.token), inst.loc)
    if isinstance(inst, ir.BrInst):
        return ir.BrInst(
            block_map[id(inst.dest)], [mapped(o) for o in inst.operands], inst.loc
        )
    if isinstance(inst, ir.CondBrInst):
        return ir.CondBrInst(
            mapped(inst.cond),
            block_map[id(inst.true_dest)],
            [mapped(a) for a in inst.true_args],
            block_map[id(inst.false_dest)],
            [mapped(a) for a in inst.false_args],
            inst.loc,
        )
    if isinstance(inst, ir.ReturnInst):
        # Returns feed the continuation block's single argument.
        return ir.BrInst(continuation, [mapped(inst.value)], inst.loc)
    raise TypeError(f"cannot clone {inst}")


def _instruction_count(func: ir.Function) -> int:
    return sum(len(b.instructions) for b in func.blocks)


def inline_calls(func: ir.Function, max_callee_size: int = 40) -> bool:
    """Inline direct calls to lowered functions up to ``max_callee_size``.

    Self-recursive calls are never inlined.  Returns True if any call was
    inlined (one sweep; callers may iterate to a fixed point).
    """
    changed = False
    for block in list(func.blocks):
        for i, inst in enumerate(block.instructions):
            if not isinstance(inst, ir.ApplyInst) or inst.is_indirect:
                continue
            target = inst.callee.target
            if not isinstance(target, ir.Function) or target is func:
                continue
            if _instruction_count(target) > max_callee_size:
                continue
            if any(t is func for t in _direct_callees(target)):
                continue  # mutual recursion guard

            continuation = func.new_block(f"{block.name}.cont")
            result_arg = continuation.add_arg(inst.result.type, inst.result.hint)
            # Move trailing instructions (incl. terminator) to continuation.
            for rest in block.instructions[i + 1 :]:
                rest.parent = continuation
                continuation.instructions.append(rest)
            block.instructions = block.instructions[:i]

            entry_clone = _clone_into(func, target, inst.args, continuation)
            block.append(ir.BrInst(entry_clone, [], inst.loc))

            # Rewire uses of the call result to the continuation argument.
            for other in func.instructions():
                other.operands = [
                    result_arg if op.id == inst.result.id else op
                    for op in other.operands
                ]
            changed = True
            break  # restart scanning: block list and bodies changed
    return changed


def _direct_callees(func: ir.Function):
    for inst in func.instructions():
        if isinstance(inst, ir.ApplyInst) and not inst.is_indirect:
            target = inst.callee.target
            if isinstance(target, ir.Function):
                yield target
