"""The default optimization pipeline.

Mirrors a classic scalar pipeline: inline, then iterate
fold/CSE/DCE to a fixed point (bounded, to guarantee termination).
"""

from __future__ import annotations

from repro.sil import ir
from repro.sil.passes.constfold import constant_fold
from repro.sil.passes.cse import common_subexpression_elimination
from repro.sil.passes.dce import dead_code_elimination
from repro.sil.passes.inline import inline_calls
from repro.sil.verify import verify

MAX_ITERATIONS = 16


def run_default_pipeline(func: ir.Function, inline: bool = True) -> ir.Function:
    """Optimize ``func`` in place and return it (verified)."""
    if inline:
        for _ in range(MAX_ITERATIONS):
            if not inline_calls(func):
                break
    for _ in range(MAX_ITERATIONS):
        changed = constant_fold(func)
        changed |= common_subexpression_elimination(func)
        changed |= dead_code_elimination(func)
        if not changed:
            break
    verify(func)
    return func
