"""The default optimization pipeline.

Mirrors a classic scalar pipeline: inline, then iterate
fold/CSE/DCE to a fixed point (bounded, to guarantee termination).

The input function is verified *before* any pass runs, so a malformed
function coming out of the frontend is attributed to lowering rather than
to whichever pass trips over it.  With ``verify_each`` (per call, or
globally via :func:`repro.analysis.attribution.set_verify_each`), the
function is structurally *and* type verified after every pass iteration;
a failure names the offending pass and dumps the IR before/after it.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import attribution
from repro.errors import VerificationError
from repro.sil import ir
from repro.sil.passes.constfold import constant_fold
from repro.sil.passes.cse import common_subexpression_elimination
from repro.sil.passes.dce import dead_code_elimination
from repro.sil.passes.inline import inline_calls
from repro.sil.printer import print_function
from repro.sil.typecheck import verify_typed
from repro.sil.verify import verify

MAX_ITERATIONS = 16

_PASSES = (
    ("constant_fold", constant_fold),
    ("cse", common_subexpression_elimination),
    ("dce", dead_code_elimination),
)


def _checked(pass_name: str, func: ir.Function, before: str) -> None:
    try:
        verify_typed(func)
    except VerificationError as exc:
        raise VerificationError(
            attribution.attribute_failure(
                pass_name, f"@{func.name}", exc, before, print_function(func)
            ),
            offending_pass=pass_name,
        ) from exc


def run_default_pipeline(
    func: ir.Function,
    inline: bool = True,
    verify_each: Optional[bool] = None,
) -> ir.Function:
    """Optimize ``func`` in place and return it (verified)."""
    verify_each = attribution.verify_each_enabled(verify_each)

    # Verify the *input* first: a failure here is a frontend bug, not a
    # pass bug, and must be reported as such.
    try:
        verify(func)
    except VerificationError as exc:
        raise VerificationError(
            f"@{func.name}: input to the pass pipeline is already "
            f"malformed (frontend/lowering bug, not a pass bug): {exc}"
        ) from exc

    if inline:
        for _ in range(MAX_ITERATIONS):
            before = print_function(func) if verify_each else ""
            changed = inline_calls(func)
            if verify_each:
                _checked("inline", func, before)
            if not changed:
                break
    for _ in range(MAX_ITERATIONS):
        changed = False
        for name, pass_fn in _PASSES:
            before = print_function(func) if verify_each else ""
            changed |= pass_fn(func)
            if verify_each:
                _checked(name, func, before)
        if not changed:
            break
    verify(func)
    return func
