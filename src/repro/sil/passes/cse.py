"""Common subexpression elimination.

Deduplicates pure instructions with identical opcodes and operands within a
dominating scope.  To stay simple and obviously correct, this implementation
processes blocks along the dominator tree computed from the CFG, carrying
available expressions down dominator edges.
"""

from __future__ import annotations

from typing import Optional

from repro.sil import ir
from repro.sil.primitives import Primitive


def _expression_key(inst: ir.Instruction) -> Optional[tuple]:
    """A hashable key identifying the computation, or None if not CSE-able."""
    if isinstance(inst, ir.ApplyInst):
        if inst.is_indirect:
            return None
        target = inst.callee.target
        if isinstance(target, Primitive) and target.pure:
            return ("apply", id(target), tuple(op.id for op in inst.args))
        return None  # calls to lowered functions could be folded, but keep simple
    if isinstance(inst, ir.ConstInst):
        lit = inst.literal
        if isinstance(lit, (bool, int, float, str, type(None))):
            return ("const", type(lit).__name__, lit)
        return None
    if isinstance(inst, ir.TupleInst):
        return ("tuple", tuple(op.id for op in inst.operands))
    if isinstance(inst, ir.TupleExtractInst):
        return ("tuple_extract", inst.operands[0].id, inst.index)
    if isinstance(inst, ir.StructExtractInst):
        return ("struct_extract", inst.operands[0].id, inst.field)
    return None


def _dominator_tree(func: ir.Function) -> dict[int, list[ir.Block]]:
    """Children lists keyed by ``id(block)`` of the immediate dominator."""
    blocks = func.reachable_blocks()
    preds = func.predecessors()
    index = {id(b): i for i, b in enumerate(blocks)}

    dom: dict[int, set[int]] = {id(b): set(index) for b in blocks}
    dom[id(func.entry)] = {id(func.entry)}
    changed = True
    while changed:
        changed = False
        for b in blocks[1:]:
            ps = [p for p in preds[b] if id(p) in index]
            if not ps:
                continue
            new = set.intersection(*(dom[id(p)] for p in ps))
            new.add(id(b))
            if new != dom[id(b)]:
                dom[id(b)] = new
                changed = True

    children: dict[int, list[ir.Block]] = {id(b): [] for b in blocks}
    for b in blocks:
        if b is func.entry:
            continue
        # idom = the dominator with the largest dominator set below b's own.
        strict = dom[id(b)] - {id(b)}
        idom = max(strict, key=lambda d: len(dom[d]))
        children[idom].append(b)
    return children


def common_subexpression_elimination(func: ir.Function) -> bool:
    changed = False
    children = _dominator_tree(func)
    replacements: dict[int, ir.Value] = {}

    def walk(block: ir.Block, available: dict[tuple, ir.Value]) -> None:
        nonlocal changed
        scope = dict(available)
        kept: list[ir.Instruction] = []
        for inst in block.instructions:
            inst.operands = [replacements.get(op.id, op) for op in inst.operands]
            key = _expression_key(inst)
            if key is not None:
                existing = scope.get(key)
                if existing is not None:
                    replacements[inst.result.id] = existing
                    changed = True
                    continue
                scope[key] = inst.result
            kept.append(inst)
        block.instructions = kept
        for child in children.get(id(block), []):
            walk(child, scope)

    walk(func.entry, {})

    if replacements:
        for inst in func.instructions():
            inst.operands = [replacements.get(op.id, op) for op in inst.operands]
    return changed
