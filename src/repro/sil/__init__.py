"""The SIL-analogue SSA intermediate representation.

This package is the substrate the AD transformation (``repro.core``) runs
on: an SSA IR with basic blocks and block arguments, a Python→SIL frontend,
a reference interpreter, a verifier, a printer, and optimization passes.
"""

from repro.sil.ir import (
    ApplyInst,
    Block,
    BrInst,
    CondBrInst,
    ConstInst,
    Function,
    FunctionRef,
    Instruction,
    ReturnInst,
    StructExtractInst,
    TupleExtractInst,
    TupleInst,
    Value,
)
from repro.sil.frontend import (
    METHOD_TABLE,
    clear_lowering_cache,
    lower_function,
    lowering_cache_size,
    register_method,
)
from repro.sil.interp import call_function
from repro.sil.primitives import PRIMITIVES, Primitive, get_primitive, primitive
from repro.sil.printer import print_function
from repro.sil.typecheck import typecheck, verify_typed
from repro.sil.verify import verify

__all__ = [
    "ApplyInst",
    "Block",
    "BrInst",
    "CondBrInst",
    "ConstInst",
    "Function",
    "FunctionRef",
    "Instruction",
    "ReturnInst",
    "StructExtractInst",
    "TupleExtractInst",
    "TupleInst",
    "Value",
    "METHOD_TABLE",
    "register_method",
    "clear_lowering_cache",
    "lower_function",
    "lowering_cache_size",
    "call_function",
    "PRIMITIVES",
    "Primitive",
    "get_primitive",
    "primitive",
    "print_function",
    "typecheck",
    "verify",
    "verify_typed",
]
