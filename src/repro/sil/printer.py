"""Textual printing of SIL functions, in a SIL-inspired syntax.

The printed form is for humans, diagnostics, and golden tests; it is not
parsed back (the HLO IR, by contrast, has a full text round-trip).
"""

from __future__ import annotations

from typing import Optional

from repro.sil import ir

#: Per-instruction comments keyed by ``id(inst)`` — the ownership analyzer
#: (and any other annotating analysis) renders its facts through this.
Annotations = dict[int, str]


def _v(value: ir.Value) -> str:
    return repr(value)


def print_instruction(inst: ir.Instruction) -> str:
    return repr(inst)


def print_block(block: ir.Block, annotations: Optional[Annotations] = None) -> str:
    args = ", ".join(f"{a!r}: {a.type!r}" for a in block.args)
    lines = [f"{block.name}({args}):"]
    for inst in block.instructions:
        text = f"  {print_instruction(inst)}"
        note = annotations.get(id(inst)) if annotations else None
        if note:
            text = f"{text}  // {note}"
        lines.append(text)
    return "\n".join(lines)


def activity_annotations(func: ir.Function, activity) -> Annotations:
    """Per-instruction ``[varied]``/``[useful]``/``[active]`` labels from an
    :class:`~repro.core.activity.ActivityInfo` (duck-typed, so this module
    stays below the AD core in the layering).

    A result that is both varied and useful prints ``[active]``; one that
    is only one of the two prints that single fact; inactive instructions
    get no annotation.
    """
    notes: Annotations = {}
    for inst in func.instructions():
        labels = []
        for res in inst.results:
            varied = activity.is_varied(res)
            useful = activity.is_useful(res)
            if varied and useful:
                labels.append("[active]")
            elif varied:
                labels.append("[varied]")
            elif useful:
                labels.append("[useful]")
        if labels:
            notes[id(inst)] = " ".join(labels)
    return notes


def _merge(base: Optional[Annotations], extra: Annotations) -> Annotations:
    if not base:
        return extra
    merged = dict(extra)
    for key, note in base.items():
        merged[key] = f"{merged[key]}  {note}" if key in merged else note
    return merged


def print_function(
    func: ir.Function,
    annotations: Optional[Annotations] = None,
    activity=None,
) -> str:
    """Print ``func``; with ``activity=`` (an ``ActivityInfo``) every
    instruction additionally carries its activity verdict as a comment."""
    if activity is not None:
        annotations = _merge(annotations, activity_annotations(func, activity))
    lines = [f"sil @{func.name} {{"]
    for block in func.blocks:
        lines.append(print_block(block, annotations))
    lines.append("}")
    return "\n".join(lines)
