"""Textual printing of SIL functions, in a SIL-inspired syntax.

The printed form is for humans, diagnostics, and golden tests; it is not
parsed back (the HLO IR, by contrast, has a full text round-trip).
"""

from __future__ import annotations

from repro.sil import ir


def _v(value: ir.Value) -> str:
    return repr(value)


def print_instruction(inst: ir.Instruction) -> str:
    return repr(inst)


def print_block(block: ir.Block) -> str:
    args = ", ".join(f"{a!r}: {a.type!r}" for a in block.args)
    lines = [f"{block.name}({args}):"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def print_function(func: ir.Function) -> str:
    lines = [f"sil @{func.name} {{"]
    for block in func.blocks:
        lines.append(print_block(block))
    lines.append("}")
    return "\n".join(lines)
