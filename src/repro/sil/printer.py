"""Textual printing of SIL functions, in a SIL-inspired syntax.

The printed form is for humans, diagnostics, and golden tests; it is not
parsed back (the HLO IR, by contrast, has a full text round-trip).
"""

from __future__ import annotations

from typing import Optional

from repro.sil import ir

#: Per-instruction comments keyed by ``id(inst)`` — the ownership analyzer
#: (and any other annotating analysis) renders its facts through this.
Annotations = dict[int, str]


def _v(value: ir.Value) -> str:
    return repr(value)


def print_instruction(inst: ir.Instruction) -> str:
    return repr(inst)


def print_block(block: ir.Block, annotations: Optional[Annotations] = None) -> str:
    args = ", ".join(f"{a!r}: {a.type!r}" for a in block.args)
    lines = [f"{block.name}({args}):"]
    for inst in block.instructions:
        text = f"  {print_instruction(inst)}"
        note = annotations.get(id(inst)) if annotations else None
        if note:
            text = f"{text}  // {note}"
        lines.append(text)
    return "\n".join(lines)


def print_function(func: ir.Function, annotations: Optional[Annotations] = None) -> str:
    lines = [f"sil @{func.name} {{"]
    for block in func.blocks:
        lines.append(print_block(block, annotations))
    lines.append("}")
    return "\n".join(lines)
