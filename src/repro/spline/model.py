"""The polynomial-spline personalization model (Section 5.1.3).

A cubic-Hermite-style spline over fixed uniform knots with learnable
control points (values at the knots) and learnable end slopes.  Splines
need orders of magnitude less compute than neural networks, which is what
makes on-device fine-tuning attractive; the model is differentiable
through the platform's AD and runs on any Tensor backend — including the
naive pure-Python one used for mobile deployment (Table 4).

The same model definition serves both stages of the paper's workflow:
server-side global training and on-device fine-tuning ("the same Swift
code defined and ran model training in both stages").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core import differentiable_struct, no_derivative


@differentiable_struct
@dataclass
class SplineModel:
    """Catmull-Rom-style spline on uniform knots over [0, 1].

    ``control_points[k]`` is the spline value at knot ``k``; segment
    interpolation is cubic Hermite with finite-difference tangents, so the
    curve is C1 and every output is a smooth (differentiable) function of
    the control points.
    """

    control_points: list  # floats (or 0-d tensors), length = n_knots
    n_segments: int = no_derivative(default=0)

    @classmethod
    def create(cls, n_knots: int, initial: float = 0.0) -> "SplineModel":
        if n_knots < 4:
            raise ValueError("need at least 4 knots for cubic segments")
        return cls([initial] * n_knots, n_knots - 1)


def spline_evaluate(model: SplineModel, x: float) -> float:
    """Evaluate the spline at ``x`` in [0, 1] (differentiable)."""
    n = model.n_segments
    position = x * float(n)
    segment = int(position)
    if segment >= n:
        segment = n - 1
    if segment < 0:
        segment = 0
    t = position - float(segment)

    points = model.control_points
    p1 = points[segment]
    p2 = points[segment + 1]
    p0 = points[segment - 1] if segment > 0 else p1 + (p1 - p2)
    p3 = points[segment + 2] if segment + 2 <= n else p2 + (p2 - p1)

    m1 = (p2 - p0) * 0.5
    m2 = (p3 - p1) * 0.5

    t2 = t * t
    t3 = t2 * t
    h00 = 2.0 * t3 - 3.0 * t2 + 1.0
    h10 = t3 - 2.0 * t2 + t
    h01 = -2.0 * t3 + 3.0 * t2
    h11 = t3 - t2
    return h00 * p1 + h10 * m1 + h01 * p2 + h11 * m2


def spline_loss(model: SplineModel, xs: Sequence[float], ys: Sequence[float]) -> float:
    """Mean squared error of the spline over a dataset (differentiable)."""
    total = 0.0
    n = len(xs)
    for i in range(n):
        predicted = spline_evaluate(model, xs[i])
        residual = predicted - ys[i]
        total = total + residual * residual
    return total / float(n)


@dataclass
class FitReport:
    initial_loss: float
    final_loss: float
    steps: int
    loss_evaluations: int


def fit_spline(
    model: SplineModel,
    xs: Sequence[float],
    ys: Sequence[float],
    max_steps: int = 60,
    loss_tolerance: float = 1e-7,
) -> tuple[SplineModel, FitReport]:
    """Fit with gradient descent + backtracking line search, to convergence."""
    from repro.optim import BacktrackingLineSearch

    xs = [float(v) for v in xs]
    ys = [float(v) for v in ys]

    def loss_fn(m):
        return spline_loss(m, xs, ys)

    search = BacktrackingLineSearch(initial_step=2.0)
    initial = float(loss_fn(model))
    evaluations = 0
    steps = 0
    for _ in range(max_steps):
        model, result = search.step(loss_fn, model)
        evaluations += result.evaluations + 1  # +1 for the gradient's value
        steps += 1
        if result.converged:
            break
        if abs(result.loss_before - result.loss_after) < loss_tolerance:
            break
    final = float(loss_fn(model))
    return model, FitReport(initial, final, steps, evaluations)


def fine_tune(
    global_model: SplineModel,
    xs: Sequence[float],
    ys: Sequence[float],
    max_steps: int = 60,
) -> tuple[SplineModel, FitReport]:
    """On-device personalization: start from the global checkpoint."""
    personal = SplineModel(
        list(global_model.control_points), global_model.n_segments
    )
    return fit_spline(personal, xs, ys, max_steps=max_steps)
