"""Spline personalization model (Section 5.1.3, Table 4 workload)."""

from repro.spline.model import (
    FitReport,
    SplineModel,
    fine_tune,
    fit_spline,
    spline_evaluate,
    spline_loss,
)

__all__ = [
    "FitReport",
    "SplineModel",
    "fine_tune",
    "fit_spline",
    "spline_evaluate",
    "spline_loss",
]
