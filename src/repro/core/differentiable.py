"""The ``Differentiable`` protocol and tangent-vector machinery.

Mirrors Figure 1 of the paper: every differentiable value has an associated
``TangentVector`` conforming to additive arithmetic, plus a ``move(along:)``
operation (the exponential map).  The AD system is written entirely against
this protocol, which is what decouples it from any particular Tensor type.

Conformances provided here:

* Python ``float``/``int`` — tangent space is ``float``;
* tuples/lists of differentiable values — tangent is the elementwise tuple/
  list of tangents;
* user structs via :func:`differentiable_struct`, which synthesizes a
  ``TangentVector`` dataclass (the analogue of Swift's derived
  conformances);
* any object implementing the duck protocol ``__tangent_zero__``,
  ``__tangent_add__`` / ``__add__`` on tangents, and ``__move__`` — tensors
  conform this way.

The additive identity is the symbolic :data:`ZERO` tangent, which absorbs
addition without materializing zero storage.  This is the "mutable value
semantics" formulation of Section 4.3: pullbacks accumulate into adjoint
slots and never build dense zero arrays (the functional formulation that
does is kept, for comparison, in :mod:`repro.core.pullback_styles`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields, is_dataclass, replace
from typing import Any


class _ZeroTangent:
    """Symbolic additive identity of every tangent space.

    ``ZERO + t == t``, ``-ZERO == ZERO``, ``ZERO * s == ZERO``.  Moving a
    value along ``ZERO`` is the identity.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __add__(self, other):
        return other

    def __radd__(self, other):
        return other

    def __sub__(self, other):
        return tangent_neg(other)

    def __rsub__(self, other):
        return other

    def __neg__(self):
        return self

    def __mul__(self, other):
        return self

    def __rmul__(self, other):
        return self

    def __truediv__(self, other):
        return self

    def __repr__(self):
        return "ZERO"

    def __bool__(self):
        return False

    def __reduce__(self):  # keep singleton identity across pickling
        return (_ZeroTangent, ())


ZERO = _ZeroTangent()


def is_zero(tangent: Any) -> bool:
    return tangent is ZERO


def tangent_add(a: Any, b: Any) -> Any:
    """Add two tangents of the same space; either may be :data:`ZERO`.

    Mixed representations (e.g. dense tuple + sparse
    :class:`~repro.core.cotangents.PartialTuple`) fall through to ``+``,
    which the sparse containers implement.
    """
    if a is ZERO:
        return b
    if b is ZERO:
        return a
    if isinstance(a, tuple) and isinstance(b, tuple):
        return tuple(tangent_add(x, y) for x, y in zip(a, b, strict=True))
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            raise TypeError("mismatched list tangents")
        return [tangent_add(x, y) for x, y in zip(a, b)]
    return a + b


def tangent_neg(a: Any) -> Any:
    if a is ZERO:
        return ZERO
    if isinstance(a, tuple):
        return tuple(tangent_neg(x) for x in a)
    if isinstance(a, list):
        return [tangent_neg(x) for x in a]
    return -a


def tangent_scale(a: Any, s: float) -> Any:
    if a is ZERO:
        return ZERO
    if isinstance(a, tuple):
        return tuple(tangent_scale(x, s) for x in a)
    if isinstance(a, list):
        return [tangent_scale(x, s) for x in a]
    return a * s


def move(value: Any, tangent: Any) -> Any:
    """Functional exponential map: value moved along ``tangent``.

    Dataclass structs and objects exposing ``__move__`` move fieldwise;
    numbers translate; sequences move elementwise.
    """
    if tangent is ZERO:
        return value
    mover = getattr(value, "__move__", None)
    if mover is not None:
        return mover(tangent)
    if isinstance(value, bool):
        raise TypeError("booleans are not differentiable")
    if isinstance(value, (int, float)):
        return float(value) + float(tangent)
    if isinstance(value, tuple):
        return tuple(move(v, t) for v, t in zip(value, tangent, strict=True))
    if isinstance(value, list):
        return [move(v, t) for v, t in zip(value, tangent, strict=True)]
    raise TypeError(f"{type(value).__name__} does not conform to Differentiable")


def is_differentiable_value(value: Any) -> bool:
    """Runtime conformance check for the Differentiable protocol."""
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    if hasattr(value, "__move__"):
        return True
    if isinstance(value, (tuple, list)):
        return all(is_differentiable_value(v) for v in value)
    return False


def tangent_zero(value: Any) -> Any:
    """The canonical zero tangent for ``value`` (symbolic where possible)."""
    return ZERO


# ---------------------------------------------------------------------------
# Derived conformances for user structs.
# ---------------------------------------------------------------------------


def no_derivative(**kwargs):
    """Dataclass field marker excluding the field from the tangent space.

    The analogue of Swift's ``@noDerivative`` stored-property attribute.
    """
    metadata = dict(kwargs.pop("metadata", {}) or {})
    metadata["no_derivative"] = True
    return dataclasses.field(metadata=metadata, **kwargs)


def differentiable_fields(cls_or_instance) -> list[str]:
    """Names of the stored properties participating in differentiation."""
    return [
        f.name
        for f in fields(cls_or_instance)
        if not f.metadata.get("no_derivative", False)
    ]


_TANGENT_CACHE: dict[type, type] = {}


def _synthesize_tangent_vector(cls: type) -> type:
    """Create the ``TangentVector`` dataclass for a differentiable struct.

    Fields default to :data:`ZERO`, so ``Model.TangentVector()`` is the
    additive identity and sparse tangents are cheap to build.
    """
    diff_fields = differentiable_fields(cls)

    namespace = {
        "__doc__": f"Tangent space of {cls.__name__} (synthesized).",
        "_struct_type": cls,
        "_fields": tuple(diff_fields),
    }

    def __add__(self, other):
        if other is ZERO:
            return self
        if not isinstance(other, type(self)):
            return NotImplemented
        return type(self)(
            **{
                name: tangent_add(getattr(self, name), getattr(other, name))
                for name in self._fields
            }
        )

    def __radd__(self, other):
        if other is ZERO:
            return self
        return NotImplemented

    def __neg__(self):
        return type(self)(
            **{name: tangent_neg(getattr(self, name)) for name in self._fields}
        )

    def __sub__(self, other):
        return self + (-other)

    def __mul__(self, scalar):
        return type(self)(
            **{
                name: tangent_scale(getattr(self, name), scalar)
                for name in self._fields
            }
        )

    def __rmul__(self, scalar):
        return self.__mul__(scalar)

    @classmethod
    def zero(tv_cls):
        return tv_cls()

    namespace.update(
        __add__=__add__,
        __radd__=__radd__,
        __neg__=__neg__,
        __sub__=__sub__,
        __mul__=__mul__,
        __rmul__=__rmul__,
        zero=zero,
    )

    # Attach field definitions with ZERO defaults so TangentVector() is the
    # additive identity.
    tv_ns = dict(namespace)
    tv_ns["__annotations__"] = {name: Any for name in diff_fields}
    for name in diff_fields:
        tv_ns[name] = ZERO
    return dataclass(type(f"{cls.__name__}TangentVector", (), tv_ns))


def differentiable_struct(cls: type) -> type:
    """Class decorator conferring Differentiable conformance on a dataclass.

    Synthesizes ``cls.TangentVector`` over the non-``no_derivative`` fields
    and provides ``__move__`` (functional) and ``move_`` (in-place, for the
    mutable-value-semantics optimizer path).
    """
    if not is_dataclass(cls):
        # eq=False keeps instances identity-hashable (layers hold tensors,
        # for which element comparison is not an equivalence test anyway).
        cls = dataclass(eq=False)(cls)

    tangent_cls = _synthesize_tangent_vector(cls)
    _TANGENT_CACHE[cls] = tangent_cls
    cls.TangentVector = tangent_cls

    def __move__(self, tangent):
        if tangent is ZERO:
            return self
        updates = {}
        for name in tangent_cls._fields:
            t = getattr(tangent, name)
            if t is not ZERO:
                updates[name] = move(getattr(self, name), t)
        return replace(self, **updates) if updates else self

    def move_(self, tangent):
        """In-place move: mutates this struct's differentiable fields."""
        if tangent is ZERO:
            return
        for name in tangent_cls._fields:
            t = getattr(tangent, name)
            if t is not ZERO:
                current = getattr(self, name)
                in_place = getattr(current, "move_", None)
                if in_place is not None and not isinstance(current, (int, float)):
                    in_place(t)
                else:
                    object.__setattr__(self, name, move(current, t))

    def tangent_embedding(self, field_name, cotangent):
        """A TangentVector that is ``cotangent`` at ``field_name``, ZERO elsewhere."""
        if field_name not in tangent_cls._fields:
            return ZERO
        return tangent_cls(**{field_name: cotangent})

    cls.__move__ = __move__
    cls.move_ = move_
    cls.__tangent_embedding__ = tangent_embedding
    cls.__is_differentiable_struct__ = True
    return cls


def tangent_vector_type(cls: type) -> type:
    """The synthesized TangentVector type of a differentiable struct."""
    return _TANGENT_CACHE[cls]


def embed_field_cotangent(struct_value: Any, field_name: str, cotangent: Any) -> Any:
    """Cotangent of a whole struct given the cotangent of one field.

    This is the pullback of ``struct_extract``.  With the symbolic ZERO
    default the embedding is O(1): no sibling zeros are materialized —
    the Section 4.3 efficiency argument.
    """
    embed = getattr(struct_value, "__tangent_embedding__", None)
    if embed is not None:
        return embed(field_name, cotangent)
    raise TypeError(
        f"cannot embed cotangent for field {field_name!r} of "
        f"non-differentiable struct {type(struct_value).__name__}"
    )
