"""The differentiability linter (pre-synthesis batched diagnostics).

Derivative synthesis (:mod:`repro.core.synthesis`) rejects a function the
moment it needs a derivative rule that does not exist.  This linter runs the
same activity analysis *before* synthesis and reports **every** problem at
once, with source locations — the "rich compiler diagnostics" half of the
paper's Section 2.2 pipeline (activity analysis → differentiability
checking → derivative synthesis):

* ``error`` — a primitive with no registered derivative is applied to an
  active value (its result feeds the return), so synthesis must fail;
* ``warning`` — a ``wrt`` parameter never influences the returned value:
  its gradient is identically zero;
* ``warning`` — an active value (varied w.r.t. the inputs) is dropped
  before the return: derivative information is computed and discarded;
* ``warning`` — the result does not depend on any ``wrt`` parameter at all.

:func:`check_differentiability` raises one
:class:`~repro.errors.DifferentiabilityError` carrying the full batch,
never just the first failure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.activity import ActivityInfo, analyze_activity
from repro.errors import Diagnostic, DifferentiabilityError
from repro.sil import ir
from repro.sil.primitives import Primitive


def _param_name(func: ir.Function, index: int) -> str:
    if index < len(func.param_names):
        return func.param_names[index]
    return f"%{func.params[index].id}"


def lint_function(
    func: ir.Function, wrt: Optional[Sequence[int]] = None
) -> list[Diagnostic]:
    """Collect every differentiability diagnostic for ``func`` w.r.t. the
    parameter indices ``wrt`` (default: all parameters).  Does not raise."""
    wrt_t = tuple(wrt) if wrt is not None else tuple(range(len(func.params)))
    activity = analyze_activity(func, wrt_t)
    diagnostics: list[Diagnostic] = []

    if not activity.result_varied():
        diagnostics.append(
            Diagnostic(
                "warning",
                f"result of {func.name!r} does not depend on the "
                "differentiation arguments; gradient will be zero",
            )
        )

    for i in wrt_t:
        param = func.params[i]
        if activity.result_varied() and not activity.is_useful(param):
            diagnostics.append(
                Diagnostic(
                    "warning",
                    f"wrt parameter {_param_name(func, i)!r} of {func.name!r} "
                    "never contributes to the result; its gradient is "
                    "always zero",
                )
            )

    users = ir.users(func)
    for inst in func.instructions():
        if isinstance(inst, ir.AccessStoreInst) and activity.is_varied(inst.value):
            diagnostics.append(
                Diagnostic(
                    "error",
                    f"expression is not differentiable: access_store of "
                    f"active value {inst.value} mutates a borrowed location "
                    "(in-place mutation is outside the differentiable subset)",
                    inst.loc,
                )
            )
        if not isinstance(inst, ir.ApplyInst):
            continue
        diagnostics.extend(_lint_apply(func, inst, activity, users))
    return diagnostics


def _lint_apply(
    func: ir.Function,
    inst: ir.ApplyInst,
    activity: ActivityInfo,
    users: dict[ir.Value, list[ir.Instruction]],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    target = None
    if not inst.is_indirect:
        target = inst.callee.target
    else:
        producer = inst.callee.producer
        if isinstance(producer, ir.ConstInst):
            target = producer.literal

    if isinstance(target, Primitive) and not target.differentiable:
        active_args = [
            arg
            for i, arg in enumerate(inst.args)
            if i not in target.nondiff_args and activity.is_active_value(arg)
        ]
        if active_args and activity.is_active(inst):
            names = ", ".join(repr(a) for a in active_args)
            out.append(
                Diagnostic(
                    "error",
                    f"expression is not differentiable: primitive "
                    f"{target.name!r} applied to active value(s) {names} "
                    "has no registered derivative",
                    inst.loc,
                )
            )

    # Active-but-dropped: the value varies with the inputs but neither
    # reaches the return nor has any user — derivative work is discarded.
    for res in inst.results:
        if (
            activity.is_varied(res)
            and not activity.is_useful(res)
            and not users.get(res)
        ):
            out.append(
                Diagnostic(
                    "warning",
                    f"active value {res} is dropped before the return; "
                    "its derivative is discarded",
                    inst.loc,
                )
            )
    return out


def check_differentiability(
    func: ir.Function, wrt: Optional[Sequence[int]] = None
) -> list[Diagnostic]:
    """Lint ``func`` and raise one :class:`DifferentiabilityError` carrying
    *all* error diagnostics if any exist; returns warnings otherwise."""
    diagnostics = lint_function(func, wrt)
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        raise DifferentiabilityError(diagnostics)
    return diagnostics
