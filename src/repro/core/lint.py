"""The differentiability linter (pre-synthesis batched diagnostics).

Derivative synthesis (:mod:`repro.core.synthesis`) rejects a function the
moment it needs a derivative rule that does not exist.  This linter runs the
same activity analysis *before* synthesis and reports **every** problem at
once, with source locations — the "rich compiler diagnostics" half of the
paper's Section 2.2 pipeline (activity analysis → differentiability
checking → derivative synthesis):

* ``error`` — a primitive with no registered derivative is applied to an
  active value (its result feeds the return), so synthesis must fail;
* ``warning`` — a ``wrt`` parameter never influences the returned value:
  its gradient is identically zero;
* ``warning`` — an active value (varied w.r.t. the inputs) is dropped
  before the return: derivative information is computed and discarded;
* ``warning`` — the result does not depend on any ``wrt`` parameter at all;
* ``error`` — a custom derivative rule breaks its contract: the registered
  VJP's arity disagrees with the function it claims to differentiate, or
  (with ``probe_custom_rules=True``) its pullback returns the wrong number
  of cotangent components.

:func:`check_differentiability` raises one
:class:`~repro.errors.DifferentiabilityError` carrying the full batch,
never just the first failure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.activity import ActivityInfo, analyze_activity
from repro.errors import Diagnostic, DifferentiabilityError
from repro.sil import ir
from repro.sil.primitives import Primitive


def _param_name(func: ir.Function, index: int) -> str:
    if index < len(func.param_names):
        return func.param_names[index]
    return f"%{func.params[index].id}"


def _callable_arity(fn) -> tuple[int, Optional[int]]:
    """``(min_args, max_args)`` of a plain callable; ``(0, None)`` when the
    signature cannot be introspected."""
    import inspect

    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return (0, None)
    lo = 0
    hi: Optional[int] = 0
    for param in sig.parameters.values():
        if param.kind == inspect.Parameter.VAR_POSITIONAL:
            hi = None
        elif param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            if param.default is inspect.Parameter.empty:
                lo += 1
            if hi is not None:
                hi += 1
    return (lo, hi)


def _fits(n: int, arity: tuple[int, Optional[int]]) -> bool:
    lo, hi = arity
    return n >= lo and (hi is None or n <= hi)


def lint_function(
    func: ir.Function,
    wrt: Optional[Sequence[int]] = None,
    probe_custom_rules: bool = False,
) -> list[Diagnostic]:
    """Collect every differentiability diagnostic for ``func`` w.r.t. the
    parameter indices ``wrt`` (default: all parameters).  Does not raise.

    With ``probe_custom_rules=True`` every primitive/custom VJP reachable
    from an apply site is additionally *run once* at seeded scalar samples
    and its pullback's output shape checked (wrong tuple length, ``bool``
    in a cotangent slot).  Off by default: probing executes rule code,
    which the pre-synthesis lint inside ``VJPPlan.build`` must not do.
    """
    wrt_t = tuple(wrt) if wrt is not None else tuple(range(len(func.params)))
    activity = analyze_activity(func, wrt_t)
    diagnostics: list[Diagnostic] = []

    if not activity.result_varied():
        diagnostics.append(
            Diagnostic(
                "warning",
                f"result of {func.name!r} does not depend on the "
                "differentiation arguments; gradient will be zero",
            )
        )

    for i in wrt_t:
        param = func.params[i]
        if activity.result_varied() and not activity.is_useful(param):
            diagnostics.append(
                Diagnostic(
                    "warning",
                    f"wrt parameter {_param_name(func, i)!r} of {func.name!r} "
                    "never contributes to the result; its gradient is "
                    "always zero",
                )
            )

    users = ir.users(func)
    for inst in func.instructions():
        if isinstance(inst, ir.AccessStoreInst) and activity.is_varied(inst.value):
            diagnostics.append(
                Diagnostic(
                    "error",
                    f"expression is not differentiable: access_store of "
                    f"active value {inst.value} mutates a borrowed location "
                    "(in-place mutation is outside the differentiable subset)",
                    inst.loc,
                )
            )
        if not isinstance(inst, ir.ApplyInst):
            continue
        diagnostics.extend(_lint_apply(func, inst, activity, users))
        diagnostics.extend(
            _lint_custom_contract(inst, probe=probe_custom_rules)
        )
    return diagnostics


def _lint_custom_contract(
    inst: ir.ApplyInst, probe: bool = False
) -> list[Diagnostic]:
    """Contract checks for the derivative rule bound to this apply site:
    the VJP's arity must match the callee it claims to differentiate, and
    (when probing) its pullback must return one cotangent per argument."""
    if inst.is_indirect:
        return []
    target = inst.callee.target

    name: Optional[str] = None
    vjp_fn = None
    jvp_fn = None
    jvp_name: Optional[str] = None
    expected_args = len(inst.args)
    if isinstance(target, Primitive):
        if target.vjp is not None:
            name, vjp_fn = target.name, target.vjp
        if target.jvp is not None:
            jvp_name, jvp_fn = target.name, target.jvp
    elif isinstance(target, ir.Function):
        from repro.core import registry

        custom = registry.custom_vjp_for(target)
        if custom is not None:
            name = getattr(custom, "__name__", repr(custom))
            vjp_fn = custom
            expected_args = len(target.params)
        custom_jvp = registry.custom_jvp_for(target)
        if custom_jvp is not None:
            jvp_name = getattr(custom_jvp, "__name__", repr(custom_jvp))
            jvp_fn = custom_jvp

    out: list[Diagnostic] = []
    if jvp_fn is not None and not _fits(2, _callable_arity(jvp_fn)):
        out.append(
            Diagnostic(
                "error",
                f"custom derivative contract violation: JVP {jvp_name!r} "
                "must accept exactly (primals, tangents)",
                inst.loc,
            )
        )
    if vjp_fn is None:
        return out
    arity = _callable_arity(vjp_fn)
    if not _fits(expected_args, arity):
        lo, hi = arity
        accepts = f"{lo}" if hi == lo else f"{lo}..{'*' if hi is None else hi}"
        out.append(
            Diagnostic(
                "error",
                f"custom derivative contract violation: VJP {name!r} "
                f"accepts {accepts} argument(s) but its primal takes "
                f"{expected_args}",
                inst.loc,
            )
        )
        return out

    if probe:
        # Imported lazily: the record-typing prober lives in the analysis
        # layer, above this core module.
        from repro.analysis.derivatives.records import probe_rule_record

        out.extend(
            probe_rule_record(name, vjp_fn, expected_args, inst.loc)
        )
    return out


def _lint_apply(
    func: ir.Function,
    inst: ir.ApplyInst,
    activity: ActivityInfo,
    users: dict[ir.Value, list[ir.Instruction]],
) -> list[Diagnostic]:
    out: list[Diagnostic] = []

    target = None
    if not inst.is_indirect:
        target = inst.callee.target
    else:
        producer = inst.callee.producer
        if isinstance(producer, ir.ConstInst):
            target = producer.literal

    if isinstance(target, Primitive) and not target.differentiable:
        active_args = [
            arg
            for i, arg in enumerate(inst.args)
            if i not in target.nondiff_args and activity.is_active_value(arg)
        ]
        if active_args and activity.is_active(inst):
            names = ", ".join(repr(a) for a in active_args)
            out.append(
                Diagnostic(
                    "error",
                    f"expression is not differentiable: primitive "
                    f"{target.name!r} applied to active value(s) {names} "
                    "has no registered derivative",
                    inst.loc,
                )
            )

    # Active-but-dropped: the value varies with the inputs but neither
    # reaches the return nor has any user — derivative work is discarded.
    for res in inst.results:
        if (
            activity.is_varied(res)
            and not activity.is_useful(res)
            and not users.get(res)
        ):
            out.append(
                Diagnostic(
                    "warning",
                    f"active value {res} is dropped before the return; "
                    "its derivative is discarded",
                    inst.loc,
                )
            )
    return out


def check_differentiability(
    func: ir.Function, wrt: Optional[Sequence[int]] = None
) -> list[Diagnostic]:
    """Lint ``func`` and raise one :class:`DifferentiabilityError` carrying
    *all* error diagnostics if any exist; returns warnings otherwise."""
    diagnostics = lint_function(func, wrt)
    errors = [d for d in diagnostics if d.is_error]
    if errors:
        raise DifferentiabilityError(diagnostics)
    return diagnostics
