"""Derivative synthesis (Section 2.2, step 3).

Transforms a lowered SIL function into derivative artifacts **once**, ahead
of time: a :class:`VJPPlan` (reverse mode) and/or a :class:`JVPPlan`
(forward mode).  The transformation

* runs activity analysis and differentiability checking first, raising
  :class:`~repro.errors.DifferentiabilityError` *before* any execution;
* recursively transforms callees, terminating at primitives or functions
  with registered custom derivatives (``@derivative(of:)``);
* handles arbitrary control flow with per-basic-block records: the VJP's
  forward sweep pushes one record per executed block holding the pullback
  closures of that block's active instructions plus the taken branch edge —
  the "statically-typed records corresponding to the basic blocks" of the
  paper.  The reverse sweep walks records backwards, accumulating adjoints
  into per-value slots (the mutable-value-semantics formulation: no dense
  zero tangents are ever materialized, cf. Section 4.3).

Plans are cached per (function, wrt); calling ``gradient`` in a loop never
re-transforms or re-traces user code.  Tests assert this AOT property.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core import registry
from repro.core.activity import ActivityInfo, analyze_activity
from repro.core.cotangents import PartialTuple, normalize_cotangent
from repro.core.differentiable import ZERO, embed_field_cotangent, tangent_add
from repro.errors import Diagnostic, DifferentiabilityError, InterpreterError
from repro.locks import named_rlock
from repro.sil import ir
from repro.sil.primitives import Primitive


class _Adjoints:
    """Per-call adjoint accumulator keyed by SSA value id.

    Entries are consumed (popped) when the defining instruction is reached
    in the reverse sweep, which makes value-id reuse across loop iterations
    safe: each iteration's record re-accumulates fresh entries.
    """

    __slots__ = ("slots",)

    def __init__(self) -> None:
        self.slots: dict[int, object] = {}

    def accumulate(self, value: ir.Value, cotangent) -> None:
        if cotangent is ZERO or cotangent is None:
            return
        current = self.slots.get(value.id)
        if current is None:
            self.slots[value.id] = cotangent
        else:
            self.slots[value.id] = tangent_add(current, cotangent)

    def consume(self, value: ir.Value):
        return self.slots.pop(value.id, ZERO)


# ---------------------------------------------------------------------------
# Derivative rules: how an apply site obtains (result, pullback) at runtime.
# ---------------------------------------------------------------------------


class PrimitiveVJPRule:
    __slots__ = ("prim",)

    def __init__(self, prim: Primitive) -> None:
        self.prim = prim

    def forward(self, args):
        return self.prim.vjp(*args)


class FunctionVJPRule:
    """Callee is another lowered function: use its synthesized plan."""

    __slots__ = ("plan",)

    def __init__(self, plan: "VJPPlan") -> None:
        self.plan = plan

    def forward(self, args):
        result, records = self.plan.execute_forward(args)
        plan = self.plan

        def pullback(ct):
            return plan.run_pullback(records, ct)

        return result, pullback


class CustomVJPRule:
    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def forward(self, args):
        return self.fn(*args)


class IndirectVJPRule:
    """Callee is a first-class runtime value; resolve its VJP dynamically.

    The returned pullback yields ``(callee_cotangent, *arg_cotangents)``:
    differentiable callables (layers) carry state, so the call is also
    differentiated with respect to the callee itself.
    """

    def forward_indirect(self, callee, args):
        vjp_call = getattr(callee, "__vjp_call__", None)
        if vjp_call is not None:
            return vjp_call(*args)

        sil_func = getattr(callee, "__sil_function__", None)
        if sil_func is not None:
            plan = vjp_plan(sil_func, tuple(range(len(sil_func.params))))
            result, records = plan.execute_forward(args)
            return result, lambda ct: (ZERO, *plan.run_pullback(records, ct))

        if isinstance(callee, Primitive):
            if callee.vjp is None:
                raise DifferentiabilityError(
                    [
                        Diagnostic(
                            "error",
                            f"primitive {callee.name!r} has no registered VJP",
                        )
                    ]
                )
            result, pb = callee.vjp(*args)
            return result, lambda ct: (ZERO, *pb(ct))

        import types

        if isinstance(callee, types.FunctionType):
            from repro.sil.frontend import lower_function

            plan = vjp_plan(lower_function(callee), None)
            result, records = plan.execute_forward(args)
            return result, lambda ct: (ZERO, *plan.run_pullback(records, ct))

        raise DifferentiabilityError(
            [
                Diagnostic(
                    "error",
                    f"cannot differentiate call of {type(callee).__name__} value"
                    " (no __vjp_call__)",
                )
            ]
        )


_INDIRECT_RULE = IndirectVJPRule()


# ---------------------------------------------------------------------------
# VJP plan.
# ---------------------------------------------------------------------------


class _BlockRecord:
    """Runtime record of one executed basic block (the paper's per-block
    pullback struct).  ``entries`` pairs active-instruction indices with the
    data the reverse sweep needs (a pullback closure, or structural info)."""

    __slots__ = ("block", "entries", "edge_args")

    def __init__(self, block: ir.Block, edge_args) -> None:
        self.block = block
        self.entries: list[tuple[ir.Instruction, object]] = []
        # SSA values (in the predecessor's scope) passed to this block's args.
        self.edge_args = edge_args


class VJPPlan:
    """Ahead-of-time synthesized reverse-mode derivative of one function.

    With ``prune_captures=True`` the build additionally runs the capture
    liveness analysis (:mod:`repro.analysis.derivatives.liveness`) and
    drops record entries whose cotangent is provably never consumed —
    varied-but-cotangent-dead values whose consumers all have
    zero-derivative pullbacks.  Gradients are bit-identical; the reverse
    sweep would have skipped those entries anyway when their adjoint slot
    came back ZERO.
    """

    def __init__(
        self,
        func: ir.Function,
        wrt: tuple[int, ...],
        prune_captures: bool = False,
    ) -> None:
        self.func = func
        self.wrt = wrt
        self.prune_captures = prune_captures
        self.diagnostics: list[Diagnostic] = []
        self.activity: Optional[ActivityInfo] = None
        #: apply-site rules keyed by instruction identity, built once.
        self.rules: dict[int, object] = {}
        #: id(inst) of record entries dropped by capture pruning.
        self.pruned: set[int] = set()
        #: Number of times this plan was (re)built; tests assert == 1.
        self.build_count = 0

    # -- transformation (runs once) ----------------------------------------

    def build(self) -> None:
        from repro.core.lint import lint_function

        self.build_count += 1
        func = self.func
        self.activity = analyze_activity(func, self.wrt)
        errors: list[Diagnostic] = []

        if self.prune_captures:
            # Imported lazily: the derivative analyses live above the AD
            # core (same layering as pullback_cost below).
            from repro.analysis.derivatives.liveness import (
                prunable_instruction_ids,
            )

            self.pruned = prunable_instruction_ids(
                func, self.wrt, self.activity
            )

        # Pre-synthesis lint: batched warnings (constant result, unused wrt
        # parameters, dropped active values) recorded alongside synthesis's
        # own diagnostics so users see every problem in one shot.
        self.diagnostics.extend(
            d for d in lint_function(func, self.wrt) if not d.is_error
        )

        for inst in func.instructions():
            if not isinstance(inst, ir.ApplyInst) or not self.activity.is_active(inst):
                continue
            # Diagnostics are computed even for pruned sites: pruning is an
            # optimization, not a differentiability waiver.
            rule, diag = self._rule_for(inst)
            if diag is not None:
                errors.append(diag)
            if rule is not None and id(inst) not in self.pruned:
                self.rules[id(inst)] = rule

        if errors:
            self.diagnostics.extend(errors)
            raise DifferentiabilityError(errors)

    def _rule_for(self, inst: ir.ApplyInst):
        if inst.is_indirect:
            # If the callee is a compile-time constant we can check it now;
            # otherwise resolution is deferred to runtime.
            producer = inst.callee.producer
            if isinstance(producer, ir.ConstInst):
                callee = producer.literal
                if (
                    not hasattr(callee, "__vjp_call__")
                    and not hasattr(callee, "__sil_function__")
                    and not isinstance(callee, Primitive)
                    and not callable(callee)
                ):
                    return None, Diagnostic(
                        "error",
                        f"call of non-differentiable value {callee!r}",
                        inst.loc,
                    )
            return _INDIRECT_RULE, None

        target = inst.callee.target
        if isinstance(target, Primitive):
            if target.vjp is None:
                return None, Diagnostic(
                    "error",
                    f"expression is not differentiable: primitive "
                    f"{target.name!r} has no registered derivative",
                    inst.loc,
                )
            return PrimitiveVJPRule(target), None
        if isinstance(target, ir.Function):
            custom = registry.custom_vjp_for(target)
            if custom is not None:
                # Record the edge even for custom rules: re-registering a
                # derivative for ``target`` must invalidate this caller's
                # plan too, or it would keep calling the stale closure.
                _note_dependency(self.func, target)
                return CustomVJPRule(custom), None
            try:
                plan = vjp_plan(target, tuple(range(len(target.params))))
                _note_dependency(self.func, target)
            except DifferentiabilityError as exc:
                note = Diagnostic(
                    "error",
                    f"when differentiating call to {target.name!r}: "
                    + "; ".join(str(d) for d in exc.diagnostics),
                    inst.loc,
                )
                return None, note
            return FunctionVJPRule(plan), None
        return None, Diagnostic(
            "error", f"cannot differentiate call to {target!r}", inst.loc
        )

    # -- forward sweep -------------------------------------------------------

    def execute_forward(self, args: Sequence[object]):
        """Run the augmented forward computation.

        Returns ``(result, records)`` where ``records`` is the executed
        chain of per-block pullback records, consumed by
        :meth:`run_pullback`.
        """
        func = self.func
        activity = self.activity
        if len(args) != len(func.params):
            raise InterpreterError(
                f"@{func.name} expects {len(func.params)} args, got {len(args)}"
            )

        env: dict[int, object] = {}
        records: list[_BlockRecord] = []
        block = func.entry
        block_args: Sequence[object] = list(args)
        record = _BlockRecord(block, None)
        records.append(record)

        while True:
            for param, value in zip(block.args, block_args):
                env[param.id] = value

            for inst in block.body:
                if isinstance(inst, ir.ConstInst):
                    env[inst.result.id] = inst.literal
                    continue
                if isinstance(inst, ir.ApplyInst):
                    arg_vals = [env[v.id] for v in inst.args]
                    rule = self.rules.get(id(inst))
                    if rule is None:
                        env[inst.result.id] = _plain_apply(inst, env, arg_vals)
                    elif rule is _INDIRECT_RULE:
                        callee = env[inst.callee.id]
                        result, pb = rule.forward_indirect(callee, arg_vals)
                        env[inst.result.id] = result
                        record.entries.append((inst, pb))
                    else:
                        result, pb = rule.forward(arg_vals)
                        env[inst.result.id] = result
                        record.entries.append((inst, pb))
                    continue
                if isinstance(inst, ir.TupleInst):
                    env[inst.result.id] = tuple(env[v.id] for v in inst.operands)
                    if activity.is_active(inst) and id(inst) not in self.pruned:
                        record.entries.append((inst, len(inst.operands)))
                    continue
                if isinstance(inst, ir.TupleExtractInst):
                    operand = env[inst.operands[0].id]
                    env[inst.result.id] = operand[inst.index]
                    if activity.is_active(inst) and id(inst) not in self.pruned:
                        record.entries.append((inst, len(operand)))
                    continue
                if isinstance(inst, ir.StructExtractInst):
                    operand = env[inst.operands[0].id]
                    env[inst.result.id] = getattr(operand, inst.field)
                    if activity.is_active(inst) and id(inst) not in self.pruned:
                        record.entries.append((inst, operand))
                    continue
                if isinstance(inst, ir.ACCESS_INSTS):
                    # Formal access scopes only ever carry inactive data here:
                    # the differentiability linter rejects stores of active
                    # values before any plan is built.
                    from repro.sil import interp

                    interp.bind_results(inst, interp.eval_instruction(inst, env), env)
                    continue
                raise InterpreterError(f"cannot execute {inst}")

            term = block.terminator
            if isinstance(term, ir.ReturnInst):
                record.entries.append((term, None))
                return env[term.value.id], records
            if isinstance(term, ir.BrInst):
                edge_args = term.operands
                next_block = term.dest
            elif isinstance(term, ir.CondBrInst):
                if env[term.cond.id]:
                    edge_args, next_block = term.true_args, term.true_dest
                else:
                    edge_args, next_block = term.false_args, term.false_dest
            else:  # pragma: no cover
                raise InterpreterError(f"unknown terminator {term}")

            block_args = [env[v.id] for v in edge_args]
            block = next_block
            record = _BlockRecord(block, edge_args)
            records.append(record)

    # -- reverse sweep -------------------------------------------------------

    def run_pullback(self, records: list[_BlockRecord], seed) -> tuple:
        """Walk the record chain backwards; returns cotangents for all
        parameters (ZERO where nothing flowed)."""
        adj = _Adjoints()

        last = records[-1]
        ret_inst, _ = last.entries[-1]
        assert isinstance(ret_inst, ir.ReturnInst)
        adj.accumulate(ret_inst.value, seed)

        for idx in range(len(records) - 1, -1, -1):
            record = records[idx]
            for inst, payload in reversed(record.entries):
                if isinstance(inst, ir.ReturnInst):
                    continue
                ct = adj.consume(inst.result)
                if ct is ZERO:
                    continue
                ct = normalize_cotangent(ct)
                if isinstance(inst, ir.ApplyInst):
                    pullback = payload
                    arg_cts = pullback(ct)
                    if inst.is_indirect:
                        operands = [inst.callee, *inst.args]
                    else:
                        operands = inst.args
                    for operand, operand_ct in zip(operands, arg_cts):
                        if operand_ct is not None:
                            adj.accumulate(operand, operand_ct)
                elif isinstance(inst, ir.TupleInst):
                    if isinstance(ct, (tuple, list)):
                        parts = ct
                    else:
                        raise InterpreterError(
                            f"tuple cotangent expected, got {type(ct).__name__}"
                        )
                    for operand, part in zip(inst.operands, parts):
                        adj.accumulate(operand, part)
                elif isinstance(inst, ir.TupleExtractInst):
                    arity = payload
                    partial = PartialTuple(arity).accumulate(inst.index, ct)
                    adj.accumulate(inst.operands[0], partial)
                elif isinstance(inst, ir.StructExtractInst):
                    struct_value = payload
                    embedded = embed_field_cotangent(struct_value, inst.field, ct)
                    adj.accumulate(inst.operands[0], embedded)

            if record.edge_args is None:
                # Entry block: block args are the function parameters.
                return tuple(
                    normalize_cotangent(adj.consume(param))
                    for param in self.func.params
                )
            for arg, incoming in zip(record.block.args, record.edge_args):
                ct = adj.consume(arg)
                if ct is not ZERO:
                    adj.accumulate(incoming, ct)

        raise InterpreterError("record chain had no entry block")  # pragma: no cover

    # -- convenience ---------------------------------------------------------

    def vjp(self, args: Sequence[object]):
        """``(value, pullback)`` where pullback maps a result cotangent to a
        tuple of parameter cotangents (all parameters)."""
        result, records = self.execute_forward(args)
        return result, lambda ct: self.run_pullback(records, ct)

    def pullback_cost(self, style: str = "mvs"):
        """Classify this plan's pullback O(1) vs O(n) per Appendix B.

        Imported lazily: the ownership analyses live above the AD core.
        """
        from repro.analysis.ownership.pullback_cost import analyze_pullback_cost

        return analyze_pullback_cost(self.func, self.wrt, style)


def _plain_apply(inst: ir.ApplyInst, env, arg_vals):
    """Execute an inactive apply exactly as the reference interpreter would."""
    if inst.is_indirect:
        callee = env[inst.callee.id]
    else:
        callee = inst.callee.target
    if isinstance(callee, Primitive):
        return callee.fn(*arg_vals)
    if isinstance(callee, ir.Function):
        from repro.sil.interp import call_function

        return call_function(callee, arg_vals)
    if callable(callee):
        return callee(*arg_vals)
    raise InterpreterError(f"cannot apply non-callable {callee!r}")


# ---------------------------------------------------------------------------
# JVP plan (forward mode).
# ---------------------------------------------------------------------------


class JVPPlan:
    """Ahead-of-time synthesized forward-mode derivative of one function."""

    def __init__(self, func: ir.Function, wrt: tuple[int, ...]) -> None:
        self.func = func
        self.wrt = wrt
        self.activity: Optional[ActivityInfo] = None
        self.diagnostics: list[Diagnostic] = []
        self.rules: dict[int, object] = {}
        self.build_count = 0

    def build(self) -> None:
        from repro.core.lint import lint_function

        self.build_count += 1
        self.activity = analyze_activity(self.func, self.wrt)
        errors: list[Diagnostic] = []
        self.diagnostics.extend(
            d for d in lint_function(self.func, self.wrt) if not d.is_error
        )
        for inst in self.func.instructions():
            if not isinstance(inst, ir.ApplyInst) or not self.activity.is_active(inst):
                continue
            if inst.is_indirect:
                self.rules[id(inst)] = "indirect"
                continue
            target = inst.callee.target
            if isinstance(target, Primitive):
                if target.jvp is None:
                    errors.append(
                        Diagnostic(
                            "error",
                            f"primitive {target.name!r} has no registered JVP "
                            "(forward-mode derivative)",
                            inst.loc,
                        )
                    )
                else:
                    self.rules[id(inst)] = target
            elif isinstance(target, ir.Function):
                custom = registry.custom_jvp_for(target)
                if custom is not None:
                    _note_dependency(self.func, target)
                    self.rules[id(inst)] = ("custom", custom)
                else:
                    try:
                        self.rules[id(inst)] = (
                            "plan",
                            jvp_plan(target, tuple(range(len(target.params)))),
                        )
                        _note_dependency(self.func, target)
                    except DifferentiabilityError as exc:
                        errors.append(
                            Diagnostic(
                                "error",
                                f"when differentiating call to {target.name!r}: "
                                + "; ".join(str(d) for d in exc.diagnostics),
                                inst.loc,
                            )
                        )
            else:
                errors.append(
                    Diagnostic("error", f"cannot differentiate {inst}", inst.loc)
                )
        if errors:
            self.diagnostics.extend(errors)
            raise DifferentiabilityError(errors)

    def execute(self, args: Sequence[object], tangents: Sequence[object]):
        """Run the derivative: returns ``(value, result_tangent)``."""
        func = self.func
        env: dict[int, object] = {}
        tan: dict[int, object] = {}
        block = func.entry
        block_vals: Sequence[object] = list(args)
        block_tans: Sequence[object] = list(tangents)

        while True:
            for param, value, tangent in zip(block.args, block_vals, block_tans):
                env[param.id] = value
                tan[param.id] = tangent

            for inst in block.body:
                if isinstance(inst, ir.ConstInst):
                    env[inst.result.id] = inst.literal
                    tan[inst.result.id] = ZERO
                    continue
                if isinstance(inst, ir.ApplyInst):
                    arg_vals = [env[v.id] for v in inst.args]
                    rule = self.rules.get(id(inst))
                    if rule is None:
                        env[inst.result.id] = _plain_apply(inst, env, arg_vals)
                        tan[inst.result.id] = ZERO
                        continue
                    arg_tans = [tan.get(v.id, ZERO) for v in inst.args]
                    if rule == "indirect":
                        callee = env[inst.callee.id]
                        result, dresult = _indirect_jvp(
                            callee, arg_vals, arg_tans, tan.get(inst.callee.id, ZERO)
                        )
                    elif isinstance(rule, Primitive):
                        result, dresult = rule.jvp(tuple(arg_vals), tuple(arg_tans))
                    else:
                        kind, impl = rule
                        if kind == "custom":
                            result, dresult = impl(tuple(arg_vals), tuple(arg_tans))
                        else:
                            result, dresult = impl.execute(arg_vals, arg_tans)
                    env[inst.result.id] = result
                    tan[inst.result.id] = dresult
                    continue
                if isinstance(inst, ir.TupleInst):
                    env[inst.result.id] = tuple(env[v.id] for v in inst.operands)
                    tan[inst.result.id] = tuple(
                        tan.get(v.id, ZERO) for v in inst.operands
                    )
                    continue
                if isinstance(inst, ir.TupleExtractInst):
                    operand = env[inst.operands[0].id]
                    env[inst.result.id] = operand[inst.index]
                    t = tan.get(inst.operands[0].id, ZERO)
                    tan[inst.result.id] = ZERO if t is ZERO else t[inst.index]
                    continue
                if isinstance(inst, ir.StructExtractInst):
                    operand = env[inst.operands[0].id]
                    env[inst.result.id] = getattr(operand, inst.field)
                    t = tan.get(inst.operands[0].id, ZERO)
                    tan[inst.result.id] = (
                        ZERO if t is ZERO else getattr(t, inst.field, ZERO)
                    )
                    continue
                if isinstance(inst, ir.ACCESS_INSTS):
                    # Inactive by construction (see the linter); no tangent.
                    from repro.sil import interp

                    interp.bind_results(inst, interp.eval_instruction(inst, env), env)
                    for res in inst.results:
                        tan[res.id] = ZERO
                    continue
                raise InterpreterError(f"cannot execute {inst}")

            term = block.terminator
            if isinstance(term, ir.ReturnInst):
                return env[term.value.id], tan.get(term.value.id, ZERO)
            if isinstance(term, ir.BrInst):
                edge_args, block = term.operands, term.dest
            elif isinstance(term, ir.CondBrInst):
                if env[term.cond.id]:
                    edge_args, block = term.true_args, term.true_dest
                else:
                    edge_args, block = term.false_args, term.false_dest
            block_vals = [env[v.id] for v in edge_args]
            block_tans = [tan.get(v.id, ZERO) for v in edge_args]


def _indirect_jvp(callee, arg_vals, arg_tans, callee_tan):
    jvp_call = getattr(callee, "__jvp_call__", None)
    if jvp_call is not None:
        return jvp_call(tuple(arg_vals), tuple(arg_tans), callee_tan)
    sil_func = getattr(callee, "__sil_function__", None)
    if sil_func is not None:
        plan = jvp_plan(sil_func, tuple(range(len(sil_func.params))))
        return plan.execute(arg_vals, arg_tans)
    if isinstance(callee, Primitive):
        if callee.jvp is None:
            raise DifferentiabilityError(
                [Diagnostic("error", f"primitive {callee.name!r} has no JVP")]
            )
        return callee.jvp(tuple(arg_vals), tuple(arg_tans))
    raise DifferentiabilityError(
        [
            Diagnostic(
                "error",
                f"cannot forward-differentiate call of {type(callee).__name__}",
            )
        ]
    )


# ---------------------------------------------------------------------------
# Plan caches.
# ---------------------------------------------------------------------------

#: VJP keys are (id(func), wrt, prune_captures); JVP keys (id(func), wrt).
#: ``invalidate_plans_for`` only inspects key[0], so the shapes may differ.
_VJP_PLANS: dict[tuple, VJPPlan] = {}
_JVP_PLANS: dict[tuple, JVPPlan] = {}

#: Reverse call-graph edges between plan'd functions: callee id -> caller
#: function objects.  Used to propagate plan invalidation when a custom
#: derivative is registered after synthesis.
_DEPENDENTS: dict[int, set] = {}

#: Plan synthesis inserts an *in-progress* plan before building it (the
#: recursion sentinel below); a second thread must never observe that
#: half-built plan.  Reentrant because building a plan recursively plans
#: its callees on the same thread.  Concurrent replicas therefore
#: serialize on first-step synthesis and share the finished plan — the
#: host-side analogue of the compiler cache's single-flight discipline.
_PLAN_LOCK = named_rlock("core.plan_cache")


def _note_dependency(caller: ir.Function, callee: ir.Function) -> None:
    _DEPENDENTS.setdefault(id(callee), set()).add(caller)


def vjp_plan(
    func: ir.Function,
    wrt: Optional[tuple[int, ...]] = None,
    prune_captures: bool = False,
) -> VJPPlan:
    """Get (or synthesize, once) the reverse-mode plan for ``func``.

    Pruned and unpruned plans are cached independently; both stay AOT
    (each is built exactly once).
    """
    if wrt is None:
        wrt = tuple(range(len(func.params)))
    key = (id(func), wrt, prune_captures)
    with _PLAN_LOCK:
        plan = _VJP_PLANS.get(key)
        if plan is None:
            plan = VJPPlan(func, wrt, prune_captures=prune_captures)
            # Insert before building so recursive functions resolve to the
            # in-progress plan rather than recursing forever.
            _VJP_PLANS[key] = plan
            try:
                plan.build()
            except Exception:
                del _VJP_PLANS[key]
                raise
    return plan


def jvp_plan(func: ir.Function, wrt: Optional[tuple[int, ...]] = None) -> JVPPlan:
    if wrt is None:
        wrt = tuple(range(len(func.params)))
    key = (id(func), wrt)
    with _PLAN_LOCK:
        plan = _JVP_PLANS.get(key)
        if plan is None:
            plan = JVPPlan(func, wrt)
            _JVP_PLANS[key] = plan
            try:
                plan.build()
            except Exception:
                del _JVP_PLANS[key]
                raise
    return plan


def invalidate_plans_for(func: ir.Function) -> None:
    """Drop cached plans for ``func`` and, transitively, every plan whose
    synthesized rules reference it (used when a custom derivative is
    registered after plans were synthesized)."""
    # Guarded: re-registration can race first-step synthesis on replica
    # threads; an unlocked sweep here could observe (or strand) the
    # in-progress plan that vjp_plan inserts before building.
    with _PLAN_LOCK:
        worklist = [func]
        seen: set[int] = set()
        while worklist:
            current = worklist.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            for cache in (_VJP_PLANS, _JVP_PLANS):
                for key in [k for k in cache if k[0] == id(current)]:
                    del cache[key]
            worklist.extend(_DEPENDENTS.pop(id(current), ()))


def clear_plan_caches() -> None:
    with _PLAN_LOCK:
        _VJP_PLANS.clear()
        _JVP_PLANS.clear()
        _DEPENDENTS.clear()
