"""Appendix B: two formulations of the array-subscript pullback.

A faithful port of the paper's Figure 9.  The operation to differentiate,
``my_op(values, a, b) = values[a] + values[b]``, is O(1).  The *functional*
pullback formulation materializes a dense zero array per subscript and runs
in O(n); the *mutable-value-semantics* formulation accumulates into an
``inout`` adjoint buffer in O(1), independent of ``len(values)``.

``benchmarks/bench_figure9_subscript_pullback.py`` regenerates the paper's
asymptotic comparison from these functions.  The AD engine itself uses the
value-semantic formulation natively (sparse adjoints in
:mod:`repro.core.cotangents`).
"""

from __future__ import annotations

from typing import Callable


# ---------------------------------------------------------------------------
# Functional representation (O(n) pullback).
# ---------------------------------------------------------------------------


def subscript_with_functional_pullback(
    values: list[float], index: int
) -> tuple[float, Callable[[float], list[float]]]:
    """Subscript read with an explicit pullback, functional style.

    The pullback allocates a fresh zero array of the input's size — the
    O(n) cost the paper criticizes.
    """
    size = len(values)  # optimization from the paper: capture size, not array

    def pullback(dx: float) -> list[float]:
        tmp = [0.0] * size  # allocates O(n) memory!
        tmp[index] = dx
        return tmp

    return values[index], pullback


def sum_arrays_helper(a: list[float], b: list[float]) -> list[float]:
    """Elementwise sum of two equal-length arrays (O(n))."""
    if len(a) != len(b):
        raise ValueError("mismatched array lengths")
    return [x + y for x, y in zip(a, b)]


def my_op(values: list[float], a: int, b: int) -> float:
    """The example operation to differentiate."""
    return values[a] + values[b]


def my_op_with_functional_pullback(
    values: list[float], a: int, b: int
) -> tuple[float, Callable[[float], list[float]]]:
    """``my_op`` and its pullback, written in the functional style.

    Pullback cost: two O(n) allocations plus an O(n) sum."""
    a_val, a_pb = subscript_with_functional_pullback(values, a)
    b_val, b_pb = subscript_with_functional_pullback(values, b)
    result = a_val + b_val

    def pullback(dx: float) -> list[float]:
        d_a = a_pb(dx)  # O(n), allocates O(n) memory
        d_b = b_pb(dx)  # O(n), allocates O(n) memory
        return sum_arrays_helper(d_a, d_b)  # O(n)

    return result, pullback


# ---------------------------------------------------------------------------
# Value-semantic representation (O(1) pullback).
# ---------------------------------------------------------------------------


def subscript_with_mutable_pullback(
    values: list[float], index: int
) -> tuple[float, Callable[[float, list[float]], None]]:
    """Subscript read with an explicit pullback, value-semantic style.

    The pullback takes the adjoint buffer ``inout`` and accumulates in
    constant time."""

    def pullback(dx: float, d_values: list[float]) -> None:
        d_values[index] += dx  # constant time!

    return values[index], pullback


def my_op_with_mutable_pullback(
    values: list[float], a: int, b: int
) -> tuple[float, Callable[[float, list[float]], None]]:
    """``my_op`` and its pullback, written value-semantic style."""
    a_val, a_pb = subscript_with_mutable_pullback(values, a)
    b_val, b_pb = subscript_with_mutable_pullback(values, b)

    def pullback(dx: float, d_values: list[float]) -> None:
        a_pb(dx, d_values)  # constant time
        b_pb(dx, d_values)  # constant time

    return a_val + b_val, pullback


def functional_gradient(values: list[float], a: int, b: int) -> list[float]:
    """Dense gradient of ``my_op`` via the functional pullback (O(n))."""
    _, pb = my_op_with_functional_pullback(values, a, b)
    return pb(1.0)


def mutable_gradient_accumulate(
    values: list[float], a: int, b: int, d_values: list[float]
) -> None:
    """Accumulate the gradient of ``my_op`` into ``d_values`` (O(1))."""
    _, pb = my_op_with_mutable_pullback(values, a, b)
    pb(1.0, d_values)
