"""Public differential operators.

The analogues of the paper's language-integrated operators:

* :func:`differentiable` — the ``@differentiable`` attribute: lowers the
  function to SIL at decoration time and synthesizes its derivatives ahead
  of time (lazily-once per ``wrt`` set);
* :func:`gradient` / :func:`value_and_gradient` — Figure 2's
  ``gradient(at:in:)`` operator for scalar-valued functions;
* :func:`vjp` / :func:`pullback` — reverse-mode linearization;
* :func:`jvp` / :func:`differential` — forward-mode linearization;
* :func:`derivative` (re-exported) — the ``@derivative(of:)`` attribute.

These are ordinary higher-order functions, exactly as in the paper: library
authors can define new differential operators out of :func:`vjp`/:func:`jvp`.
"""

from __future__ import annotations

import functools
from typing import Callable, Sequence, Union

from repro.core import synthesis
from repro.core.cotangents import deep_normalize
from repro.core.differentiable import ZERO, is_zero
from repro.errors import ReproError
from repro.sil import ir
from repro.sil.frontend import lower_function

Wrt = Union[int, Sequence[int], None]


class DifferentiableFunction:
    """A ``@differentiable`` function value.

    Bundles the original function with ahead-of-time synthesized derivative
    functions — the runtime counterpart of the paper's
    ``@differentiable (A) -> B`` function type family (Figure 3).  Lowering
    happens at decoration time; VJP/JVP plans are synthesized on first
    request per ``wrt`` set and cached forever.
    """

    def __init__(self, pyfunc: Callable) -> None:
        functools.update_wrapper(self, pyfunc)
        self.pyfunc = pyfunc
        self.func: ir.Function = lower_function(pyfunc)

    # Frontend hook: calls to this object lower to direct applies of the
    # already-lowered SIL function.
    @property
    def __sil_function__(self) -> ir.Function:
        return self.func

    def __call__(self, *args):
        return self.pyfunc(*args)

    def __repr__(self) -> str:
        return f"@differentiable {self.func.name}"

    # -- derivative access -------------------------------------------------

    def _wrt_tuple(self, wrt: Wrt, n_args: int) -> tuple[int, ...]:
        if wrt is None:
            return tuple(range(n_args))
        if isinstance(wrt, int):
            return (wrt,)
        return tuple(wrt)

    def vjp_plan(
        self, wrt: Wrt = None, prune_captures: bool = False
    ) -> synthesis.VJPPlan:
        return synthesis.vjp_plan(
            self.func,
            self._wrt_tuple(wrt, len(self.func.params)),
            prune_captures=prune_captures,
        )

    def jvp_plan(self, wrt: Wrt = None) -> synthesis.JVPPlan:
        return synthesis.jvp_plan(
            self.func, self._wrt_tuple(wrt, len(self.func.params))
        )

    def vjp(self, *args, wrt: Wrt = None):
        """``(value, pullback)``; pullback maps a result cotangent to the
        cotangents of the ``wrt`` arguments (a single tangent if one)."""
        wrt_t = self._wrt_tuple(wrt, len(args))
        plan = self.vjp_plan(wrt_t)
        value, full_pullback = plan.vjp(args)

        def pullback(cotangent):
            all_cts = full_pullback(cotangent)
            picked = tuple(
                densify(deep_normalize(all_cts[i]), args[i]) for i in wrt_t
            )
            return picked[0] if len(picked) == 1 else picked

        return value, pullback

    def jvp(self, args: Sequence, tangents: Sequence):
        """``(value, result_tangent)`` — forward-mode derivative."""
        plan = self.jvp_plan(tuple(range(len(args))))
        value, tangent = plan.execute(list(args), list(tangents))
        return value, tangent


def differentiable(fn: Callable) -> DifferentiableFunction:
    """The ``@differentiable`` attribute.

    Lowers ``fn`` ahead of time and marks it for compile-time
    differentiation.  Plain functions passed to :func:`gradient` & friends
    are promoted implicitly (the paper's implicit conversion of function
    values to differentiable function values)."""
    if isinstance(fn, DifferentiableFunction):
        return fn
    return DifferentiableFunction(fn)


def _promote(f) -> DifferentiableFunction:
    if isinstance(f, DifferentiableFunction):
        return f
    sil_func = getattr(f, "__sil_function__", None)
    if sil_func is not None and isinstance(f, DifferentiableFunction):
        return f
    return DifferentiableFunction(f)


def densify(cotangent, like):
    """Replace a symbolic ZERO cotangent with a concrete zero of the primal's
    tangent space, so user code can use gradients uniformly."""
    if not is_zero(cotangent):
        return cotangent
    if isinstance(like, (int, float)) and not isinstance(like, bool):
        return 0.0
    zero_builder = getattr(like, "__tangent_zero__", None)
    if zero_builder is not None:
        return zero_builder()
    tv = getattr(type(like), "TangentVector", None)
    if tv is not None:
        return tv()
    if isinstance(like, tuple):
        return tuple(densify(ZERO, v) for v in like)
    if isinstance(like, list):
        return [densify(ZERO, v) for v in like]
    return cotangent  # leave symbolic for unknown types


def _seed_for(value):
    """The canonical cotangent seed for a scalar-valued function."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return 1.0
    one = getattr(value, "__cotangent_one__", None)
    if one is not None:
        return one()
    raise ReproError(
        "gradient requires a scalar-valued function "
        f"(got result of type {type(value).__name__}); use vjp for general "
        "results"
    )


def value_and_gradient(f, *args, wrt: Wrt = None):
    """``(value, gradient)`` of a scalar-valued function at ``args``.

    ``wrt`` selects which arguments to differentiate with respect to
    (default: all).  The gradient is a single tangent when one argument is
    selected, otherwise a tuple of tangents.
    """
    df = _promote(f)
    value, pullback = df.vjp(*args, wrt=wrt)
    return value, pullback(_seed_for(value))


def gradient(f, *args, wrt: Wrt = None):
    """Figure 2's ``gradient(at: x, in: f)``: evaluate ∇f at ``args``."""
    return value_and_gradient(f, *args, wrt=wrt)[1]


def vjp(f, *args, wrt: Wrt = None):
    """``(value, pullback)`` — reverse-mode linearization at ``args``."""
    return _promote(f).vjp(*args, wrt=wrt)


def pullback(f, *args, wrt: Wrt = None):
    """Just the pullback closure of ``f`` at ``args``."""
    return vjp(f, *args, wrt=wrt)[1]


def jvp(f, args: Sequence, tangents: Sequence):
    """``(value, result_tangent)`` — forward-mode derivative of ``f``."""
    return _promote(f).jvp(args, tangents)


def differential(f, args: Sequence):
    """The differential (a linear map on tangents) of ``f`` at ``args``."""
    df = _promote(f)

    def apply_differential(*tangents):
        return df.jvp(args, tangents)[1]

    return apply_differential


def derivative_count(f, wrt: Wrt = None) -> int:
    """How many times the VJP plan for ``f`` was built (test helper —
    asserts the ahead-of-time property: always 1 after any number of
    gradient evaluations)."""
    return _promote(f).vjp_plan(wrt).build_count
