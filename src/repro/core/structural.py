"""Derivatives of structural primitives (indexing, list/tuple building).

Registered here (not in ``repro.sil``) so the IR layer stays AD-free.  The
``index_get`` pullback uses the sparse :class:`PartialList` adjoint — the
O(1) value-semantic formulation of the array-subscript derivative from
Section 4.3 / Appendix B of the paper.
"""

from __future__ import annotations

from repro.core.cotangents import PartialList, PartialTuple
from repro.core.differentiable import ZERO
from repro.sil.primitives import get_primitive

_index_get = get_primitive("index_get")
_slice_get = get_primitive("slice_get")
_list_make = get_primitive("list_make")
_tuple_make = get_primitive("tuple_make")


@_index_get.def_vjp
def _index_get_vjp(xs, i):
    subscript_vjp = getattr(xs, "__subscript_vjp__", None)
    if subscript_vjp is not None:
        return subscript_vjp(i)
    n = len(xs)

    def pullback(ct):
        # O(1): a sparse one-hot adjoint, never a dense zero list.
        return (PartialList(n).accumulate(i, ct), None)

    return xs[i], pullback


@_index_get.def_jvp
def _index_get_jvp(primals, tangents):
    xs, i = primals
    dxs, _ = tangents
    if dxs is ZERO:
        return xs[i], ZERO
    if isinstance(dxs, (PartialList, PartialTuple)):
        return xs[i], dxs.get(i)
    return xs[i], dxs[i]


@_slice_get.def_vjp
def _slice_get_vjp(xs, start, stop):
    slice_vjp = getattr(xs, "__slice_vjp__", None)
    if slice_vjp is not None:
        return slice_vjp(start, stop)
    n = len(xs)
    lo, hi, _ = slice(start, stop).indices(n)

    def pullback(ct):
        partial = PartialList(n)
        for offset, piece in enumerate(ct):
            if piece is not ZERO:
                partial.accumulate(lo + offset, piece)
        return (partial, None, None)

    return xs[start:stop], pullback


@_list_make.def_vjp
def _list_make_vjp(*elts):
    def pullback(ct):
        if ct is ZERO:
            return tuple(ZERO for _ in elts)
        if isinstance(ct, PartialList):
            return tuple(ct.get(i) for i in range(len(elts)))
        return tuple(ct)

    return list(elts), pullback


@_list_make.def_jvp
def _list_make_jvp(primals, tangents):
    return list(primals), list(tangents)


@_tuple_make.def_vjp
def _tuple_make_vjp(*elts):
    def pullback(ct):
        if ct is ZERO:
            return tuple(ZERO for _ in elts)
        if isinstance(ct, PartialTuple):
            return tuple(ct.get(i) for i in range(len(elts)))
        return tuple(ct)

    return tuple(elts), pullback


@_tuple_make.def_jvp
def _tuple_make_jvp(primals, tangents):
    return tuple(primals), tuple(tangents)
