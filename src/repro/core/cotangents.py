"""Sparse cotangent containers for aggregate values.

These are the machinery behind the mutable-value-semantics pullback
formulation of Section 4.3: the adjoint of a tuple/list is accumulated
slot-by-slot without ever materializing dense zeros.  ``index_get``'s
pullback is O(1) in the size of the indexed container, versus the O(n)
functional formulation demonstrated (for comparison) in
:mod:`repro.core.pullback_styles`.
"""

from __future__ import annotations

from repro.core.differentiable import ZERO, tangent_add


class PartialTuple:
    """Sparse cotangent of a tuple value: per-index slots, ZERO elsewhere."""

    __slots__ = ("arity", "slots")

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.slots: dict[int, object] = {}

    def accumulate(self, index: int, cotangent) -> "PartialTuple":
        current = self.slots.get(index, ZERO)
        self.slots[index] = tangent_add(current, cotangent)
        return self

    def get(self, index: int):
        return self.slots.get(index, ZERO)

    def to_tuple(self) -> tuple:
        return tuple(self.slots.get(i, ZERO) for i in range(self.arity))

    def __add__(self, other):
        if other is ZERO:
            return self
        merged = PartialTuple(self.arity)
        merged.slots = dict(self.slots)
        if isinstance(other, PartialTuple):
            merged.arity = max(self.arity, other.arity)
            for i, ct in other.slots.items():
                merged.accumulate(i, ct)
            return merged
        if isinstance(other, tuple):
            merged.arity = max(self.arity, len(other))
            for i, ct in enumerate(other):
                if ct is not ZERO:
                    merged.accumulate(i, ct)
            return merged
        return NotImplemented

    __radd__ = __add__

    def __repr__(self) -> str:
        return f"PartialTuple({self.to_tuple()!r})"


class PartialList:
    """Sparse cotangent of a list value.

    This is the value-semantic subscript adjoint: accumulating one entry is
    O(1) irrespective of the list's length.  ``to_list`` densifies on demand
    (e.g. at the user-facing API boundary).
    """

    __slots__ = ("length", "slots")

    def __init__(self, length: int) -> None:
        self.length = length
        self.slots: dict[int, object] = {}

    def accumulate(self, index: int, cotangent) -> "PartialList":
        if index < 0:
            index += self.length
        current = self.slots.get(index, ZERO)
        self.slots[index] = tangent_add(current, cotangent)
        return self

    def get(self, index: int):
        if index < 0:
            index += self.length
        return self.slots.get(index, ZERO)

    def to_list(self) -> list:
        return [self.slots.get(i, ZERO) for i in range(self.length)]

    def __add__(self, other):
        if other is ZERO:
            return self
        merged = PartialList(self.length)
        merged.slots = dict(self.slots)
        if isinstance(other, PartialList):
            merged.length = max(self.length, other.length)
            for i, ct in other.slots.items():
                merged.accumulate(i, ct)
            return merged
        if isinstance(other, list):
            merged.length = max(self.length, len(other))
            for i, ct in enumerate(other):
                if ct is not ZERO:
                    merged.accumulate(i, ct)
            return merged
        return NotImplemented

    __radd__ = __add__

    def __repr__(self) -> str:
        return f"PartialList({self.to_list()!r})"


def normalize_cotangent(ct):
    """Convert internal sparse representations to user-facing tangents."""
    if isinstance(ct, PartialTuple):
        return ct.to_tuple()
    if isinstance(ct, PartialList):
        return ct.to_list()
    return ct


def deep_normalize(ct):
    """Recursively normalize sparse containers anywhere in a tangent tree.

    Applied at the public API boundary so user code (``move``, optimizers)
    sees only tuples/lists/TangentVectors/ZERO/leaf tangents.
    """
    ct = normalize_cotangent(ct)
    if isinstance(ct, tuple):
        return tuple(deep_normalize(v) for v in ct)
    if isinstance(ct, list):
        return [deep_normalize(v) for v in ct]
    if hasattr(ct, "_fields") and hasattr(ct, "_struct_type"):
        return type(ct)(
            **{name: deep_normalize(getattr(ct, name)) for name in ct._fields}
        )
    return ct
