"""Activity analysis (Section 2.2, step 1).

Determines which instructions are *active*: both **varied** (transitively
data-dependent on the differentiation parameters) and **useful**
(transitively contributing to the function's return value).  Only active
instructions receive derivative code during synthesis; inactive ones are
executed unchanged.

Both properties are forward/backward dataflow fixpoints over the CFG,
flowing through block arguments along branch edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sil import ir
from repro.sil.primitives import Primitive


@dataclass
class ActivityInfo:
    """Result of activity analysis for one (function, wrt) pair."""

    wrt: tuple[int, ...]
    varied: set[int] = field(default_factory=set)  # value ids
    useful: set[int] = field(default_factory=set)  # value ids

    def is_varied(self, value: ir.Value) -> bool:
        return value.id in self.varied

    def is_useful(self, value: ir.Value) -> bool:
        return value.id in self.useful

    def is_active_value(self, value: ir.Value) -> bool:
        return value.id in self.varied and value.id in self.useful

    def is_active(self, inst: ir.Instruction) -> bool:
        return any(self.is_active_value(r) for r in inst.results)

    def result_varied(self) -> bool:
        """True if any returned value is varied (the function actually
        depends on its differentiation parameters)."""
        return self._result_varied


#: Attribute names whose reads never carry derivative information — the
#: analogue of Swift's ``@noDerivative`` stored properties.  Metadata-like
#: fields (device placement, shapes) and observation methods live here so
#: e.g. ``x.device`` inside differentiated code does not make downstream
#: values spuriously active.
NO_DERIVATIVE_FIELDS: set[str] = {
    "device",
    "shape",
    "dtype",
    "rank",
    "size",
    "kind",
    "name",
    "numpy",
    "item",
    "to_list",
    "tolist",
}


def register_no_derivative_field(name: str) -> None:
    NO_DERIVATIVE_FIELDS.add(name)


def _differentiable_operand_ids(inst: ir.Instruction) -> list[ir.Value]:
    """Operands through which variedness can flow into this instruction.

    Structurally non-differentiable operand positions of primitives (e.g.
    the index of ``index_get``) and metadata attribute reads are excluded.
    """
    if isinstance(inst, ir.ApplyInst) and not inst.is_indirect:
        target = inst.callee.target
        if isinstance(target, Primitive):
            return [
                arg
                for i, arg in enumerate(inst.args)
                if i not in target.nondiff_args
            ]
    if isinstance(inst, ir.StructExtractInst) and inst.field in NO_DERIVATIVE_FIELDS:
        return []
    return list(inst.operands)


def analyze_activity(func: ir.Function, wrt: tuple[int, ...]) -> ActivityInfo:
    """Run varied/useful analysis of ``func`` w.r.t. parameter indices ``wrt``."""
    info = ActivityInfo(wrt=tuple(wrt))
    blocks = func.reachable_blocks()

    # ---- varied: forward fixpoint ----------------------------------------
    for i in wrt:
        info.varied.add(func.params[i].id)

    changed = True
    while changed:
        changed = False
        for block in blocks:
            for inst in block.instructions:
                if isinstance(inst, ir.ConstInst):
                    continue
                if inst.is_terminator:
                    changed |= _propagate_branch_varied(inst, info)
                    continue
                if any(
                    op.id in info.varied
                    for op in _differentiable_operand_ids(inst)
                ):
                    for res in inst.results:
                        if res.id not in info.varied:
                            info.varied.add(res.id)
                            changed = True

    # ---- useful: backward fixpoint ----------------------------------------
    returns = [
        b.terminator
        for b in blocks
        if isinstance(b.terminator, ir.ReturnInst)
    ]
    for ret in returns:
        info.useful.add(ret.value.id)

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            term = block.terminator
            changed |= _propagate_branch_useful(term, info)
            for inst in reversed(block.body):
                if any(r.id in info.useful for r in inst.results):
                    for op in _differentiable_operand_ids(inst):
                        if op.id not in info.useful:
                            info.useful.add(op.id)
                            changed = True

    info._result_varied = any(r.value.id in info.varied for r in returns)
    return info


def _edges(term: ir.Terminator) -> list[tuple[ir.Block, list[ir.Value]]]:
    if isinstance(term, ir.BrInst):
        return [(term.dest, list(term.operands))]
    if isinstance(term, ir.CondBrInst):
        return [
            (term.true_dest, list(term.true_args)),
            (term.false_dest, list(term.false_args)),
        ]
    return []


def _propagate_branch_varied(term: ir.Terminator, info: ActivityInfo) -> bool:
    changed = False
    for dest, args in _edges(term):
        for param, arg in zip(dest.args, args):
            if arg.id in info.varied and param.id not in info.varied:
                info.varied.add(param.id)
                changed = True
    return changed


def _propagate_branch_useful(term: ir.Terminator, info: ActivityInfo) -> bool:
    changed = False
    for dest, args in _edges(term):
        for param, arg in zip(dest.args, args):
            if param.id in info.useful and arg.id not in info.useful:
                info.useful.add(arg.id)
                changed = True
    return changed
