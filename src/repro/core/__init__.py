"""The paper's primary contribution: language-integrated, ahead-of-time AD.

Public surface:

* ``@differentiable`` / :class:`DifferentiableFunction`
* :func:`gradient`, :func:`value_and_gradient`, :func:`vjp`,
  :func:`pullback`, :func:`jvp`, :func:`differential`
* ``@derivative(of=...)`` custom derivative registration
* the ``Differentiable`` protocol machinery:
  :func:`differentiable_struct`, :func:`no_derivative`, :data:`ZERO`,
  :func:`move`, :func:`tangent_add`
"""

from repro.core import structural  # noqa: F401  (registers structural VJPs)
from repro.core.api import (
    DifferentiableFunction,
    densify,
    differentiable,
    differential,
    derivative_count,
    gradient,
    jvp,
    pullback,
    value_and_gradient,
    vjp,
)
from repro.core.cotangents import PartialList, PartialTuple, normalize_cotangent
from repro.core.differentiable import (
    ZERO,
    differentiable_fields,
    differentiable_struct,
    embed_field_cotangent,
    is_differentiable_value,
    is_zero,
    move,
    no_derivative,
    tangent_add,
    tangent_neg,
    tangent_scale,
    tangent_vector_type,
)
from repro.core.registry import derivative
from repro.core.synthesis import JVPPlan, VJPPlan, clear_plan_caches

__all__ = [
    "DifferentiableFunction",
    "densify",
    "differentiable",
    "differential",
    "derivative_count",
    "gradient",
    "jvp",
    "pullback",
    "value_and_gradient",
    "vjp",
    "PartialList",
    "PartialTuple",
    "normalize_cotangent",
    "ZERO",
    "differentiable_fields",
    "differentiable_struct",
    "embed_field_cotangent",
    "is_differentiable_value",
    "is_zero",
    "move",
    "no_derivative",
    "tangent_add",
    "tangent_neg",
    "tangent_scale",
    "tangent_vector_type",
    "derivative",
    "JVPPlan",
    "VJPPlan",
    "clear_plan_caches",
]
