"""Custom derivative registration — the ``@derivative(of:)`` attribute.

Users register VJPs/JVPs for primitives or for whole functions.  Registered
derivatives are the base case of the recursive derivative-synthesis
transformation: when synthesis reaches a callee with a registered
derivative, it uses it instead of transforming the callee's body.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sil import ir
from repro.sil.primitives import Primitive

#: Custom rules for lowered functions (keyed by the Function object id).
_FUNCTION_VJPS: dict[int, Callable] = {}
_FUNCTION_JVPS: dict[int, Callable] = {}


def derivative(of, kind: str = "vjp") -> Callable[[Callable], Callable]:
    """Decorator: register a custom derivative for ``of``.

    ``of`` may be a :class:`Primitive`, a ``@differentiable`` function, or a
    plain Python function (lowered on demand).  ``kind`` selects which
    derivative function is being supplied: ``"vjp"`` (reverse mode, the
    default) or ``"jvp"`` (forward mode).

    A VJP has signature ``vjp(*primals) -> (value, pullback)`` with
    ``pullback(cotangent) -> tuple_of_arg_cotangents``; a JVP has signature
    ``jvp(primals, tangents) -> (value, tangent)``.
    """
    if kind not in ("vjp", "jvp"):
        raise ValueError(f"kind must be 'vjp' or 'jvp', got {kind!r}")

    def register(fn: Callable) -> Callable:
        target = of
        if isinstance(target, Primitive):
            if kind == "vjp":
                target.vjp = fn
            else:
                target.jvp = fn
            return fn

        sil_func = getattr(target, "__sil_function__", None)
        if sil_func is None:
            from repro.sil.frontend import lower_function

            sil_func = lower_function(target)
        table = _FUNCTION_VJPS if kind == "vjp" else _FUNCTION_JVPS
        table[id(sil_func)] = fn
        # Invalidate any plans already synthesized without the custom rule.
        from repro.core import synthesis

        synthesis.invalidate_plans_for(sil_func)
        return fn

    return register


def custom_vjp_for(func: ir.Function) -> Optional[Callable]:
    return _FUNCTION_VJPS.get(id(func))


def custom_jvp_for(func: ir.Function) -> Optional[Callable]:
    return _FUNCTION_JVPS.get(id(func))
