"""Exception hierarchy shared across the repro platform.

Every subsystem raises subclasses of :class:`ReproError` so callers can catch
platform errors without also swallowing genuine Python bugs.  Diagnostics
produced by the ahead-of-time differentiability checker carry source
locations, mirroring the compiler diagnostics described in Section 2.2 of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class for all errors raised by the repro platform."""


class LoweringError(ReproError):
    """The Python→SIL frontend met a construct outside the supported subset."""


class VerificationError(ReproError):
    """A SIL function failed structural verification."""


class InterpreterError(ReproError):
    """The SIL interpreter met an invalid runtime state."""


class DifferentiabilityError(ReproError):
    """Ahead-of-time differentiability checking rejected a function.

    Raised at transformation time (i.e. when ``@differentiable`` is applied or
    a derivative is first synthesized), never at gradient-evaluation time —
    this is the "catch errors before execution" property from the paper.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        super().__init__(
            "; ".join(str(d) for d in self.diagnostics) or "non-differentiable"
        )


class ShapeError(ReproError):
    """Tensor shapes are incompatible for the requested operation."""


class HloError(ReproError):
    """Invalid HLO construction, parsing, or pass application."""


class BorrowError(ReproError):
    """A mutable value was borrowed while another unique borrow was live."""


class DeviceError(ReproError):
    """An operation mixed tensors placed on incompatible devices."""


@dataclass(frozen=True)
class SourceLocation:
    """A (file, line, column) triple pointing into user source."""

    filename: str = "<unknown>"
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Diagnostic:
    """A single compiler diagnostic with severity, message, and location."""

    severity: str  # "error" | "warning" | "note"
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return f"{self.location}: {self.severity}: {self.message}"
