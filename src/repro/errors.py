"""Exception hierarchy shared across the repro platform.

Every subsystem raises subclasses of :class:`ReproError` so callers can catch
platform errors without also swallowing genuine Python bugs.  Diagnostics
produced by the ahead-of-time differentiability checker carry source
locations, mirroring the compiler diagnostics described in Section 2.2 of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class for all errors raised by the repro platform."""


class LoweringError(ReproError):
    """The Python→SIL frontend met a construct outside the supported subset."""


class VerificationError(ReproError):
    """A SIL function failed structural or typed verification.

    ``offending_pass`` names the optimization pass after which the invariant
    first failed (``None`` when verification failed outside per-pass mode).
    """

    def __init__(self, message: str, offending_pass: str | None = None):
        super().__init__(message)
        self.offending_pass = offending_pass


class InterpreterError(ReproError):
    """The SIL interpreter met an invalid runtime state."""


class DifferentiabilityError(ReproError):
    """Ahead-of-time differentiability checking rejected a function.

    Raised at transformation time (i.e. when ``@differentiable`` is applied or
    a derivative is first synthesized), never at gradient-evaluation time —
    this is the "catch errors before execution" property from the paper.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        super().__init__(
            "; ".join(str(d) for d in self.diagnostics) or "non-differentiable"
        )


class ShapeError(ReproError):
    """Tensor shapes are incompatible for the requested operation."""


class HloError(ReproError):
    """Invalid HLO construction, parsing, or pass application.

    ``offending_pass`` names the optimization pass after which the module
    first failed verification (``None`` outside per-pass mode).
    """

    def __init__(self, message: str, offending_pass: str | None = None):
        super().__init__(message)
        self.offending_pass = offending_pass


class TraceError(ReproError):
    """Static trace-stability analysis rejected a LazyTensor trace.

    Carries the full batch of located diagnostics (malformed shapes,
    unknown ops, retrace hazards), mirroring how
    :class:`DifferentiabilityError` batches linter output.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        super().__init__(
            "; ".join(str(d) for d in self.diagnostics) or "invalid trace"
        )


class BorrowError(ReproError):
    """A mutable value was borrowed while another unique borrow was live."""


class DeviceError(ReproError):
    """An operation mixed tensors placed on incompatible devices."""


@dataclass(frozen=True)
class SourceLocation:
    """A (file, line, column) triple pointing into user source."""

    filename: str = "<unknown>"
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Diagnostic:
    """A single compiler diagnostic with severity, message, and location."""

    severity: str  # "error" | "warning" | "note"
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)

    def __str__(self) -> str:
        return f"{self.severity}: {self.message} (at {self.location})"

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


def partition_diagnostics(
    diagnostics,
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Split into ``(errors, non_errors)`` preserving order."""
    errors = [d for d in diagnostics if d.is_error]
    rest = [d for d in diagnostics if not d.is_error]
    return errors, rest


def render_diagnostics(diagnostics) -> str:
    """One diagnostic per line — the batched-transcript form linters emit."""
    return "\n".join(str(d) for d in diagnostics)
