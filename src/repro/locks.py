"""Named, instrumented locks: the dynamic witness of the concurrency analysis.

Every lock the runtime uses is created through :func:`named_rlock`, which
does three things a bare ``threading.RLock()`` cannot:

1. **Registration** — the lock's *name* lands in :data:`LOCK_REGISTRY`, so
   the static lockset analysis (:mod:`repro.analysis.concurrency`) can
   resolve ``with <lock>:`` statements to the same identities it uses in
   its ``guarded_by`` registry.  Instances sharing a name form one *lock
   class* (e.g. every ``AsyncCompiler`` carries a ``hlo.async_compiler``
   lock); lock-order reasoning is over classes, as usual.
2. **Held-set tracking** — each thread keeps a stack of the instrumented
   locks it currently holds (:func:`held_locks`), which tests use to
   assert a lock really is held inside a guarded region.
3. **Acquisition-order witness** — whenever a thread acquires lock ``B``
   while holding lock ``A`` (``A != B``), the edge ``A -> B`` is recorded
   in the process-wide :data:`WITNESS`.  The static lock-order graph must
   cover every witnessed edge (``dynamic ⊆ static``): a nesting the
   analyzer did not predict fails the cross-check before it can deadlock.

Reentrant re-acquisition of a lock already held by the same thread records
no edge (an ``A -> A`` self-loop is not an ordering).  The witness's own
bookkeeping lock is a plain ``threading.RLock`` — it must not instrument
itself — and recording is reentrancy-safe: a weakref finalizer that fires
mid-record (e.g. :func:`repro.runtime.memory.free`) re-enters cleanly.

This module imports nothing but the standard library so every layer
(``core``, ``hlo``, ``runtime``, ``valsem``) can use it without cycles.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import Counter
from typing import Dict, FrozenSet, List, Tuple

#: Lock-class name -> number of live instances created under that name.
LOCK_REGISTRY: Counter = Counter()

#: Per-thread stack of lock names currently held (reentrant holds repeat).
_HELD = threading.local()

#: Guards the witness's edge map and the registry counter.  Deliberately a
#: bare RLock: instrumenting it would recurse.
_WITNESS_LOCK = threading.RLock()

#: Every live instrumented lock, so a forked child can reinitialize them.
_ALL_LOCKS: "weakref.WeakSet[InstrumentedRLock]" = weakref.WeakSet()


class LockWitness:
    """The dynamic acquisition-order record.

    ``edges`` maps ``(held, acquired)`` name pairs to the number of times
    that nesting was observed.  ``acquisitions`` counts every acquire per
    lock class (reentrant re-acquisitions included), so tests can assert a
    code path actually exercised its locks.
    """

    def __init__(self) -> None:
        self.edges: Dict[Tuple[str, str], int] = {}
        self.acquisitions: Counter = Counter()

    def record_acquire(self, name: str, held: List[str]) -> None:
        with _WITNESS_LOCK:
            self.acquisitions[name] += 1
            for outer in set(held):
                if outer != name:
                    edge = (outer, name)
                    self.edges[edge] = self.edges.get(edge, 0) + 1

    def edge_set(self) -> FrozenSet[Tuple[str, str]]:
        with _WITNESS_LOCK:
            return frozenset(self.edges)

    def reset(self) -> None:
        with _WITNESS_LOCK:
            self.edges.clear()
            self.acquisitions.clear()


#: The process-wide witness every instrumented lock reports to.
WITNESS = LockWitness()


def _held_stack() -> List[str]:
    stack = getattr(_HELD, "stack", None)
    if stack is None:
        stack = []
        _HELD.stack = stack
    return stack


def held_locks() -> Tuple[str, ...]:
    """Names of instrumented locks the *current thread* holds (innermost
    last; reentrant holds appear once per acquisition)."""
    return tuple(_held_stack())


class InstrumentedRLock:
    """A reentrant lock with a name, a registry entry, and an order witness.

    Drop-in for ``threading.RLock()`` under ``with``/``acquire``/``release``.
    The name is the lock's *class*: every instance created under the same
    name is one vertex of the lock-order graph, which is what lets a
    per-instance lock (``AsyncCompiler._lock``) be analyzed statically.
    """

    __slots__ = ("name", "_lock", "__weakref__")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.RLock()
        with _WITNESS_LOCK:
            LOCK_REGISTRY[name] += 1
        _ALL_LOCKS.add(self)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            stack = _held_stack()
            WITNESS.record_acquire(self.name, stack)
            stack.append(self.name)
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        # Remove the innermost hold of this name; release() raises below if
        # the thread never held the underlying lock.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == self.name:
                del stack[i]
                break
        self._lock.release()

    def __enter__(self) -> "InstrumentedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        """True iff the calling thread currently holds this lock class."""
        return self.name in _held_stack()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InstrumentedRLock({self.name!r})"


def named_rlock(name: str) -> InstrumentedRLock:
    """Create (and register) the instrumented lock for one lock class.

    The static analyzer resolves ``X = named_rlock("<name>")`` assignments
    by reading the *literal* name, so the argument must be a string
    literal at every call site — a constraint the inventory enforces.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("lock name must be a non-empty string literal")
    return InstrumentedRLock(name)


def witness_edges() -> FrozenSet[Tuple[str, str]]:
    """The dynamic lock-order edges observed so far (name pairs)."""
    return WITNESS.edge_set()


def reset_witness() -> None:
    """Clear recorded edges/acquisitions (test and sweep boundaries)."""
    WITNESS.reset()


def reinitialize_after_fork() -> None:
    """Make every instrumented lock usable in a freshly-forked child.

    ``fork`` copies lock state: a lock another thread held at fork time
    stays locked forever in the child (the owning thread does not exist
    there).  The process-backed executor forks replica workers, so the
    child must start from a clean slate: fresh underlying ``RLock``s for
    every registered instrumented lock (and the witness's own bookkeeping
    lock), an empty held stack for the surviving thread, and a cleared
    witness — the child records its own edges from scratch.

    Registered via :func:`os.register_at_fork` below; callable directly
    from tests.
    """
    global _WITNESS_LOCK
    _WITNESS_LOCK = threading.RLock()
    for lock in list(_ALL_LOCKS):
        lock._lock = threading.RLock()
    _HELD.stack = []
    WITNESS.reset()


# Forked replica workers (repro.runtime.parallel.process) inherit this
# module; reinitialize its locks before any child code can block on one.
os.register_at_fork(after_in_child=reinitialize_after_fork)
