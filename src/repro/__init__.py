"""repro — a Python reproduction of *Swift for TensorFlow* (MLSys 2021).

The platform combines:

* an ahead-of-time, source-to-source automatic differentiation system that
  operates on an SSA IR (``repro.sil`` + ``repro.core``), decoupled from any
  Tensor type via the ``Differentiable`` protocol;
* three Tensor implementations behind one API (``repro.tensor``): a naive
  portable backend, an eager dispatching backend, and a lazy tracing backend
  that JIT-compiles through an XLA-like HLO compiler (``repro.hlo``);
* mutable value semantics (``repro.valsem``) applied to tensors, layers,
  models, and optimizers (``repro.nn``, ``repro.optim``).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of the paper's tables and figures.
"""

__version__ = "1.0.0"
