"""Codegen audit — translation certificates vs the running interpreter.

The translation validator (:mod:`repro.analysis.equivalence`) certifies,
per canonical trace, that the flat NumPy step function the codegen
backend emits computes exactly the values the HLO schedule computes.
This harness runs it over the seeded corpus and tabulates, per program:
the verdict, how many values the proof covered, the size of the shared
term DAG, the emitted step function's length, and whether the dynamic
cross-check (interpreted ≡ generated, ``tobytes`` equality) agreed.  A ✓
in every MATCH cell is the falsifiability check: the certificate is a
proof about the code that actually runs — clean programs must execute
bit-identically on both paths, and every seeded miscompile must be
stopped statically, before it can run at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CodegenAuditRow:
    program: str
    expected: str
    verdicts: tuple
    traces: int
    checked_values: int
    term_count: int
    step_lines: int
    #: True = ran bit-identically; None = rejected statically, never ran.
    bit_identical: object
    cross_check_ok: bool

    @property
    def ok(self) -> bool:
        return self.cross_check_ok and set(self.verdicts) == {self.expected}


@dataclass
class CodegenAuditResult:
    rows: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        header = (
            f"{'program':26s} {'verdict':18s} {'traces':>6s} "
            f"{'values':>6s} {'terms':>6s} {'lines':>6s} "
            f"{'bits':>6s} {'match':>6s}"
        )
        lines = [
            "Codegen audit: translation certificates vs the interpreter",
            "=" * len(header),
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            verdict = ", ".join(row.verdicts)
            bits = (
                "≡"
                if row.bit_identical is True
                else ("—" if row.bit_identical is None else "≠")
            )
            mark = "✓" if row.ok else "✗"
            lines.append(
                f"{row.program:26s} {verdict:18s} {row.traces:>6d} "
                f"{row.checked_values:>6d} {row.term_count:>6d} "
                f"{row.step_lines:>6d} {bits:>6s} {mark:>6s}"
            )
        lines.append("-" * len(header))
        lines.append(
            "every certified step function runs bit-identically to the "
            "interpreter; every seeded miscompile is stopped statically"
            if self.ok
            else "DIVERGENCE: a certificate or verdict failed"
        )
        return "\n".join(lines)


def run_codegen_audit() -> CodegenAuditResult:
    from repro.analysis.equivalence import CORPUS, analyze_equivalence_program

    result = CodegenAuditResult()
    for program in CORPUS:
        report = analyze_equivalence_program(program)
        checks = report.checks
        # Clean programs certify and run both paths; miscompile programs
        # report the corrupted variant's verdict (bit_identical is None —
        # rejected code never executes).
        bits: object = all(c.bit_identical is True for c in checks)
        if any(c.bit_identical is None for c in checks):
            bits = None
        result.rows.append(
            CodegenAuditRow(
                program=program.name,
                expected=program.expect,
                verdicts=tuple(sorted(report.verdicts())),
                traces=len(checks),
                checked_values=sum(c.result.checked_values for c in checks),
                term_count=sum(c.result.term_count for c in checks),
                step_lines=sum(c.generated.line_count for c in checks),
                bit_identical=bits,
                cross_check_ok=report.cross_check_ok,
            )
        )
    return result
