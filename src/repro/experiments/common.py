"""Shared helpers for the table/figure reproduction harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class TableRow:
    cells: list[str]


@dataclass
class Table:
    """A paper-style results table renderable as aligned text."""

    title: str
    headers: list[str]
    rows: list[TableRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append(TableRow([str(c) for c in cells]))

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row.cells):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        out = [self.title, "=" * len(self.title), line(self.headers)]
        out.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            out.append(line(row.cells))
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()


def fmt_throughput(value: float) -> str:
    return f"{value:,.0f}"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f} ms"


def fmt_mb(nbytes: float) -> str:
    return f"{nbytes / 1e6:.1f} MB"
