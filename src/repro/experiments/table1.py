"""Table 1 — ResNet-50 / ImageNet on TPUv3 pods: per-core throughput scaling.

Paper's measurement:

    cores | top-1 acc | time (90 epochs) | throughput | per-core
      16  |  78.1%    |  189 min         |  10164     |  635.25
      32  |  77.7%    |   96 min         |  20015     |  625.47
     128  |  77.8%    |   25 min         |  77726     |  607.23

The shape: per-core throughput is largely maintained from 1 to 8 hosts,
degrading only a few percent, because the LazyTensor trace compiles once
and the ring all-reduce amortizes with pod size.

Here each pod size runs a real data-parallel step (one representative
replica computing real numerics on the lazy backend, the pod simulator
accounting all-reduce time), and "training time (90 epochs)" is modelled
from the measured throughput over the ImageNet epoch size.  Accuracy is a
convergence proxy measured by actually training the (scaled) model on the
synthetic dataset — identical across pod sizes by construction of
synchronous SGD, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import synthetic_imagenet
from repro.experiments.common import Table, fmt_throughput
from repro.nn import ResNet, accuracy, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.costmodel import S4TF_LAZY, TPU_V3_CORE
from repro.tensor import Device, Tensor, one_hot
from repro.training import DataParallelTrainer

IMAGENET_TRAIN_SIZE = 1_281_167
POD_SIZES = (16, 32, 128)


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


@dataclass
class TPUWorkload:
    """Scaled ResNet-50-class workload (see DESIGN.md substitutions)."""

    depth_per_stage: int = 2
    width: int = 16
    per_replica_batch: int = 16
    image_size: int = 16
    num_classes: int = 100
    steps: int = 2

    def model(self, device: Device) -> ResNet:
        return ResNet.create(
            depth_per_stage=self.depth_per_stage,
            base_width=self.width,
            num_classes=self.num_classes,
            image_size=self.image_size,
            device=device,
            seed=0,
        )

    def batch(self, device: Device):
        data = synthetic_imagenet(
            n=self.per_replica_batch,
            image_size=self.image_size,
            num_classes=self.num_classes,
        )
        x = Tensor(data.images, device)
        y = one_hot(
            Tensor(data.labels.astype(np.float32), device), self.num_classes
        )
        return x, y


FULL_TPU_WORKLOAD = TPUWorkload(depth_per_stage=8, width=32, per_replica_batch=64)
SCALED_TPU_WORKLOAD = TPUWorkload()


def measure_pod(workload: TPUWorkload, n_cores: int):
    """(global throughput, per-core throughput, gradient bytes)."""
    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = workload.model(device)
    x, y = workload.batch(device)
    trainer = DataParallelTrainer(device, TPU_V3_CORE, n_cores)
    optimizer = SGD(learning_rate=0.01)
    # Warm-up to steady state (compile twice, as the trace stabilizes).
    for _ in range(2):
        trainer.step(model, optimizer, _loss, x, y)
    stats_list = [
        trainer.step(model, optimizer, _loss, x, y) for _ in range(workload.steps)
    ]
    mean_compute = sum(s.compute_time for s in stats_list) / len(stats_list)
    stats = stats_list[-1]
    combined = type(stats)(mean_compute, stats.allreduce_time, stats.gradient_bytes)
    total, per_core = trainer.throughput(combined, workload.per_replica_batch)
    return total, per_core, stats.gradient_bytes


def convergence_accuracy(workload: TPUWorkload, train_steps: int = 24) -> float:
    """Short real training run on the synthetic dataset (accuracy proxy)."""
    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = workload.model(device)
    data = synthetic_imagenet(
        n=96, image_size=workload.image_size, num_classes=workload.num_classes
    )
    optimizer = SGD(learning_rate=0.1)
    from repro.training import train_step

    batches = list(data.batches(workload.per_replica_batch, device=device))
    step = 0
    while step < train_steps:
        for x, y in batches:
            train_step(model, optimizer, _loss, x, y, device)
            step += 1
            if step >= train_steps:
                break
    correct = 0.0
    count = 0
    for x, y in data.batches(workload.per_replica_batch, device=device, shuffle=False):
        correct += accuracy(model(x), y)
        count += 1
    return correct / max(count, 1)


def run_table1(workload: TPUWorkload = SCALED_TPU_WORKLOAD) -> Table:
    acc = convergence_accuracy(workload)
    table = Table(
        title="Table 1: ResNet-50-class training on simulated TPUv3 pods",
        headers=[
            "# Cores",
            "Validation Accuracy (proxy)",
            "Training Time (90 epochs, modelled)",
            "Throughput (examples / s)",
            "Per-Accelerator Throughput",
        ],
    )
    results = {}
    for n_cores in POD_SIZES:
        total, per_core, grad_bytes = measure_pod(workload, n_cores)
        minutes = 90 * IMAGENET_TRAIN_SIZE / total / 60.0
        table.add_row(
            n_cores,
            f"{acc * 100:.1f}%",
            f"{minutes:.0f} minutes",
            fmt_throughput(total),
            f"{per_core:.2f}",
        )
        results[n_cores] = {
            "throughput": total,
            "per_core": per_core,
            "gradient_bytes": grad_bytes,
        }
    table.notes.append(
        "scaled workload; accuracy is a synthetic-dataset convergence proxy "
        "(identical across pod sizes under synchronous SGD)"
    )
    table.results = results
    return table
