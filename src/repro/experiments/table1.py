"""Table 1 — ResNet-50 / ImageNet on TPUv3 pods: per-core throughput scaling.

Paper's measurement:

    cores | top-1 acc | time (90 epochs) | throughput | per-core
      16  |  78.1%    |  189 min         |  10164     |  635.25
      32  |  77.7%    |   96 min         |  20015     |  625.47
     128  |  77.8%    |   25 min         |  77726     |  607.23

The shape: per-core throughput is largely maintained from 1 to 8 hosts,
degrading only a few percent, because the LazyTensor trace compiles once
and the ring all-reduce amortizes with pod size.

Here each pod size runs real data-parallel steps through the concurrent
execution engine: up to :data:`MAX_REAL_REPLICAS` replicas execute real
numerics concurrently (:class:`ParallelDataParallelTrainer`), gradients
are genuinely averaged, and the pod simulator extrapolates the all-reduce
cost to the full pod — single-shot or bucketed-and-overlapped with
backward compute (:func:`run_overlap_ablation`).  "Training time (90
epochs)" is modelled from the measured throughput over the ImageNet epoch
size.  Accuracy is a convergence proxy measured by actually training the
(scaled) model on the synthetic dataset — identical across pod sizes by
construction of synchronous SGD, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import synthetic_imagenet
from repro.experiments.common import Table, fmt_throughput
from repro.nn import ResNet, accuracy, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.cluster import PodSimulator
from repro.runtime.costmodel import (
    SINGLE_SHOT,
    S4TF_LAZY,
    TPU_V3_CORE,
    AllReduceConfig,
)
from repro.runtime.parallel import ParallelDataParallelTrainer
from repro.tensor import Device, Tensor, one_hot

IMAGENET_TRAIN_SIZE = 1_281_167
POD_SIZES = (16, 32, 128)

#: Real replicas the concurrent engine runs per measurement; the pod
#: simulator extrapolates communication to the full pod size (running 128
#: real ResNet replicas per step is beyond the test host's budget).
MAX_REAL_REPLICAS = 4


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


@dataclass
class TPUWorkload:
    """Scaled ResNet-50-class workload (see DESIGN.md substitutions)."""

    depth_per_stage: int = 2
    width: int = 16
    per_replica_batch: int = 16
    image_size: int = 16
    num_classes: int = 100
    steps: int = 2

    def model(self, device: Device) -> ResNet:
        return ResNet.create(
            depth_per_stage=self.depth_per_stage,
            base_width=self.width,
            num_classes=self.num_classes,
            image_size=self.image_size,
            device=device,
            seed=0,
        )

    def batch(self, device: Device):
        data = synthetic_imagenet(
            n=self.per_replica_batch,
            image_size=self.image_size,
            num_classes=self.num_classes,
        )
        x = Tensor(data.images, device)
        y = one_hot(
            Tensor(data.labels.astype(np.float32), device), self.num_classes
        )
        return x, y

    def batch_arrays(self):
        """One replica shard as raw arrays (for the parallel trainer)."""
        data = synthetic_imagenet(
            n=self.per_replica_batch,
            image_size=self.image_size,
            num_classes=self.num_classes,
        )
        labels = np.eye(self.num_classes, dtype=np.float32)[data.labels]
        return data.images, labels


FULL_TPU_WORKLOAD = TPUWorkload(depth_per_stage=8, width=32, per_replica_batch=64)
SCALED_TPU_WORKLOAD = TPUWorkload()


def measure_pod_computation(workload: TPUWorkload, n_real: int) -> dict:
    """Run ``n_real`` real replicas in lockstep; return the measurement.

    The dict has ``compute_time`` (steady-state mean of the slowest
    replica), ``gradient_bytes`` and ``grad_leaf_bytes`` — everything a
    pod of any size needs to extrapolate its step time.
    """
    trainer = ParallelDataParallelTrainer(
        workload.model,
        lambda: SGD(learning_rate=0.01),
        n_real,
        profile=TPU_V3_CORE,
        engine=S4TF_LAZY,
    )
    shards = trainer.place_shards([workload.batch_arrays()] * n_real)
    # Warm-up to steady state (compile twice, as the trace stabilizes).
    for _ in range(2):
        trainer.step(_loss, shards)
    stats_list = [trainer.step(_loss, shards) for _ in range(workload.steps)]
    mean_compute = sum(s.timing.compute_time for s in stats_list) / len(stats_list)
    last = stats_list[-1]
    return {
        "compute_time": mean_compute,
        "gradient_bytes": last.gradient_bytes,
        "grad_leaf_bytes": list(last.grad_leaf_bytes),
        "n_real_replicas": n_real,
    }


def pod_throughput(
    measurement: dict,
    n_cores: int,
    per_replica_batch: int,
    allreduce: AllReduceConfig = SINGLE_SHOT,
) -> tuple:
    """(global, per-core throughput, StepTiming) for a measured workload."""
    pod = PodSimulator(TPU_V3_CORE, n_cores, allreduce)
    timing = pod.step_time_multi(
        [measurement["compute_time"]],
        measurement["gradient_bytes"],
        grad_leaf_bytes=list(reversed(measurement["grad_leaf_bytes"])),
    )
    total = n_cores * per_replica_batch / timing.total
    return total, total / n_cores, timing


def measure_pod(workload: TPUWorkload, n_cores: int):
    """(global throughput, per-core throughput, gradient bytes)."""
    measurement = measure_pod_computation(
        workload, min(n_cores, MAX_REAL_REPLICAS)
    )
    total, per_core, _ = pod_throughput(
        measurement, n_cores, workload.per_replica_batch
    )
    return total, per_core, measurement["gradient_bytes"]


def convergence_accuracy(workload: TPUWorkload, train_steps: int = 24) -> float:
    """Short real training run on the synthetic dataset (accuracy proxy)."""
    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = workload.model(device)
    data = synthetic_imagenet(
        n=96, image_size=workload.image_size, num_classes=workload.num_classes
    )
    optimizer = SGD(learning_rate=0.1)
    from repro.training import train_step

    batches = list(data.batches(workload.per_replica_batch, device=device))
    step = 0
    while step < train_steps:
        for x, y in batches:
            train_step(model, optimizer, _loss, x, y, device)
            step += 1
            if step >= train_steps:
                break
    correct = 0.0
    count = 0
    for x, y in data.batches(workload.per_replica_batch, device=device, shuffle=False):
        correct += accuracy(model(x), y)
        count += 1
    return correct / max(count, 1)


def run_table1(workload: TPUWorkload = SCALED_TPU_WORKLOAD) -> Table:
    acc = convergence_accuracy(workload)
    table = Table(
        title="Table 1: ResNet-50-class training on simulated TPUv3 pods",
        headers=[
            "# Cores",
            "Validation Accuracy (proxy)",
            "Training Time (90 epochs, modelled)",
            "Throughput (examples / s)",
            "Per-Accelerator Throughput",
        ],
    )
    # One real measurement serves every pod size: the replicas' numerics
    # do not depend on the pod's core count, only the all-reduce does.
    measurement = measure_pod_computation(workload, MAX_REAL_REPLICAS)
    results = {}
    for n_cores in POD_SIZES:
        total, per_core, _ = pod_throughput(
            measurement, n_cores, workload.per_replica_batch
        )
        grad_bytes = measurement["gradient_bytes"]
        minutes = 90 * IMAGENET_TRAIN_SIZE / total / 60.0
        table.add_row(
            n_cores,
            f"{acc * 100:.1f}%",
            f"{minutes:.0f} minutes",
            fmt_throughput(total),
            f"{per_core:.2f}",
        )
        results[n_cores] = {
            "throughput": total,
            "per_core": per_core,
            "gradient_bytes": grad_bytes,
        }
    table.notes.append(
        "scaled workload; accuracy is a synthetic-dataset convergence proxy "
        "(identical across pod sizes under synchronous SGD)"
    )
    table.results = results
    return table


def run_overlap_ablation(
    workload: TPUWorkload = SCALED_TPU_WORKLOAD,
    pod_sizes=POD_SIZES,
    n_buckets_target: int = 8,
) -> Table:
    """Table 1 ablation: single-shot vs bucketed+overlapped all-reduce.

    Both schedules see the *same* measured computation — only the
    communication schedule differs, so the per-core delta is exactly the
    all-reduce time hidden under backward compute.
    """
    measurement = measure_pod_computation(workload, MAX_REAL_REPLICAS)
    grad_bytes = measurement["gradient_bytes"]
    overlapped = AllReduceConfig(
        bucket_bytes=max(grad_bytes // n_buckets_target, 1), overlap=True
    )
    table = Table(
        title="Table 1 ablation: overlapping all-reduce with backward compute",
        headers=[
            "# Cores",
            "Per-core (single-shot)",
            "Per-core (overlapped)",
            "All-reduce hidden",
        ],
    )
    results = {}
    for n_cores in pod_sizes:
        _, base, base_timing = pod_throughput(
            measurement, n_cores, workload.per_replica_batch, SINGLE_SHOT
        )
        _, fast, fast_timing = pod_throughput(
            measurement, n_cores, workload.per_replica_batch, overlapped
        )
        hidden = fast_timing.hidden_allreduce
        fraction = hidden / fast_timing.allreduce_total if fast_timing.allreduce_total else 0.0
        table.add_row(
            n_cores,
            f"{base:.2f}",
            f"{fast:.2f}",
            f"{fraction * 100:.0f}%",
        )
        results[n_cores] = {
            "per_core_single_shot": base,
            "per_core_overlapped": fast,
            "hidden_allreduce": hidden,
            "hidden_fraction": fraction,
            "exposed_allreduce": fast_timing.allreduce_time,
            "allreduce_total": fast_timing.allreduce_total,
            "n_buckets": fast_timing.n_buckets,
            "single_shot_allreduce": base_timing.allreduce_time,
        }
    table.notes.append(
        f"identical measured compute; overlapped schedule uses "
        f"~{n_buckets_target} gradient buckets pipelined against backward"
    )
    table.notes.append(
        "bucketing replicates the ring's per-hop latency: at large core "
        "counts the latency overhead can exceed the hidden time — the "
        "classic bucket-size trade-off of gradient-bucketed data parallelism"
    )
    table.results = results
    return table
