"""Figure 4 — the LazyTensor trace of LeNet-5's forward pass.

Runs LeNet-5 on a lazy device without observing the output, then renders
the recorded trace DAG as text and DOT.  The structural properties the
figure illustrates — one connected DAG covering the whole forward pass,
with parameters/inputs as sources feeding conv/pool/matmul/elementwise
nodes — are asserted by tests on the summary returned here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn import LeNet
from repro.runtime.costmodel import S4TF_LAZY, TPU_V3_CORE
from repro.tensor import Device, Tensor
from repro.viz import capture_forward_trace, trace_summary, trace_to_dot, trace_to_text


@dataclass
class Figure4Result:
    text: str
    dot: str
    summary: dict


def run_figure4(batch_size: int = 1) -> Figure4Result:
    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = LeNet.create(device, seed=0)
    x = Tensor(np.zeros((batch_size, 28, 28, 1), np.float32), device)
    root = capture_forward_trace(model, x)
    return Figure4Result(
        text=trace_to_text([root]),
        dot=trace_to_dot([root], name="lenet_forward"),
        summary=trace_summary(root),
    )
