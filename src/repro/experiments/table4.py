"""Table 4 — on-device spline fine-tuning across four deployment stacks.

Paper's measurement (Pixel 3):

    platform                       time      memory   binary
    TensorFlow Mobile              5926 ms   80.0 MB  6.2 MB
    TensorFlow Lite (standard)      266 ms   12.3 MB  1.8 MB
    TensorFlow Lite (fused op)       63 ms    6.2 MB  1.8 MB
    Swift for TensorFlow            128 ms    4.2 MB  3.6 MB

Shape to reproduce: TF-Mobile is ~20x slower than everything else; the
fused TFLite op is fastest; S4TF lands between the two TFLite variants on
time and is the smallest on memory, with a binary between TFLite's and
TF-Mobile's.  The paper also verified all implementations produce control
points within 1.5% of each other — asserted here by running the real
fine-tuning numerics once and comparing.
"""

from __future__ import annotations

from repro.data import personalization_split
from repro.experiments.common import Table, fmt_mb, fmt_ms
from repro.frameworks import ALL_PLATFORMS, run_mobile_fine_tuning
from repro.spline import SplineModel, fine_tune, fit_spline


def run_table4(n_knots: int = 8, seed: int = 0) -> Table:
    global_data, user_data = personalization_split(
        n_global=96, n_user=48, seed=seed
    )
    global_model, _ = fit_spline(
        SplineModel.create(n_knots), global_data.xs, global_data.ys, max_steps=40
    )
    # Every platform runs the same numerics; the reference is one plain run.
    reference, _ = fine_tune(global_model, user_data.xs, user_data.ys, max_steps=40)

    table = Table(
        title="Table 4: on-device spline fine-tuning (simulated Pixel-3 CPU)",
        headers=[
            "Platform",
            "Training Time (on device)",
            "Memory Usage (on device)",
            "Binary Size (uncompressed)",
        ],
    )
    results = {}
    for platform in ALL_PLATFORMS:
        run = run_mobile_fine_tuning(
            platform, global_model, user_data, reference_model=reference
        )
        assert run.control_points_match, (
            f"{platform.name}: control points diverged beyond the paper's "
            "1.5% tolerance"
        )
        table.add_row(
            run.platform,
            fmt_ms(run.training_time_s),
            fmt_mb(run.memory_bytes),
            fmt_mb(run.binary_size_bytes),
        )
        results[run.platform] = run
    table.notes.append(
        "all four runs execute the same fine-tuning numerics to convergence; "
        "control points agree within 1.5% (asserted)"
    )
    table.results = results
    return table
