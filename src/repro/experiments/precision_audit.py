"""Precision audit — accuracy vs bytes under verified mixed precision.

The static precision analysis (:mod:`repro.analysis.precision`)
certifies per-instruction value intervals, flags the hazards a blind
"cast everything down" lowering would hit, and emits an autocast plan
that must re-check clean.  This harness runs it over the seeded corpus
and tabulates, per program: the policy dtype, the dtype-flow verdict
under the naive lowering, the memory planner's certified peak before
and after the plan (and the bytes saved), and the planned run's output
accuracy against the f64 reference (max scaled error and max error in
ULPs of the policy dtype).  A ✓ in every MATCH cell is the
falsifiability check: every certified interval contained every
dynamically observed value, every statically predicted hazard actually
manifested, and every autocast plan ran accurately — the AMP trade
(half the bytes where safe, full precision where not) with both sides
of the trade *measured*.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PrecisionAuditRow:
    program: str
    policy: str
    expected: str
    verdicts: tuple
    verdict_matches: bool
    f32_peak_bytes: int
    planned_peak_bytes: int
    bytes_saved: int
    planned_scaled_err: float
    planned_ulp_err: float
    cross_check_ok: bool

    @property
    def ok(self) -> bool:
        return self.verdict_matches and self.cross_check_ok


@dataclass
class PrecisionAuditResult:
    rows: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def total_bytes_saved(self) -> int:
        return sum(max(row.bytes_saved, 0) for row in self.rows)

    def render(self) -> str:
        header = (
            f"{'program':24s} {'policy':6s} {'verdict':22s} "
            f"{'f32 peak':>9s} {'planned':>9s} {'saved':>8s} "
            f"{'scaled err':>10s} {'ULP':>7s} {'match':>6s}"
        )
        lines = [
            "Precision audit: verified mixed-precision lowering "
            "(accuracy vs bytes)",
            "=" * len(header),
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            verdict = ", ".join(row.verdicts)
            mark = "✓" if row.ok else "✗"
            lines.append(
                f"{row.program:24s} {row.policy:6s} {verdict:22s} "
                f"{row.f32_peak_bytes:>7d} B {row.planned_peak_bytes:>7d} B "
                f"{row.bytes_saved:>+7d}B "
                f"{row.planned_scaled_err:>10.3g} {row.planned_ulp_err:>7.3g} "
                f"{mark:>5s}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"every verdict matched and every oracle cross-check held; "
            f"plans saved {self.total_bytes_saved} peak bytes where "
            "narrowing was certified safe"
            if self.ok
            else "DIVERGENCE: a verdict or oracle cross-check failed"
        )
        return "\n".join(lines)


def run_precision_audit() -> PrecisionAuditResult:
    from repro.analysis.precision import CORPUS, analyze_precision_program

    result = PrecisionAuditResult()
    for program in CORPUS:
        report = analyze_precision_program(program)
        # One row per program; multi-trace programs summarize their first
        # (and in this corpus, only) unique trace.
        check = report.checks[0]
        result.rows.append(
            PrecisionAuditRow(
                program=program.name,
                policy=program.policy,
                expected=program.expect,
                verdicts=tuple(sorted(report.verdicts())),
                verdict_matches=report.verdict_matches,
                f32_peak_bytes=check.f32_peak_bytes,
                planned_peak_bytes=check.planned_peak_bytes,
                bytes_saved=check.bytes_saved,
                planned_scaled_err=check.planned_error.max_scaled,
                planned_ulp_err=check.planned_error.max_ulp,
                cross_check_ok=report.cross_check_ok,
            )
        )
    return result
