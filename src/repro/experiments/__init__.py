"""Per-experiment harnesses regenerating every table and figure of the
paper's evaluation (Section 5).  Each module documents the paper's numbers,
the substitutions made, and the shape being reproduced; EXPERIMENTS.md
records paper-vs-measured for all of them."""

from repro.experiments.codegen_audit import (
    CodegenAuditResult,
    CodegenAuditRow,
    run_codegen_audit,
)
from repro.experiments.derivative_pruning import (
    PruningResult,
    PruningRow,
    run_derivative_pruning,
)
from repro.experiments.figure4 import Figure4Result, run_figure4
from repro.experiments.memory_plan import (
    MemoryPlanResult,
    MemoryPlanRow,
    run_memory_plan,
)
from repro.experiments.figure9 import Figure9Point, render_figure9, run_figure9
from repro.experiments.precision_audit import (
    PrecisionAuditResult,
    PrecisionAuditRow,
    run_precision_audit,
)
from repro.experiments.table1 import (
    FULL_TPU_WORKLOAD,
    SCALED_TPU_WORKLOAD,
    TPUWorkload,
    run_overlap_ablation,
    run_table1,
)
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import FULL_WORKLOAD, SCALED_WORKLOAD, Workload, run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.trace_stability import (
    TraceStabilityResult,
    TraceStabilityRow,
    run_trace_stability,
)

__all__ = [
    "CodegenAuditResult",
    "CodegenAuditRow",
    "run_codegen_audit",
    "PruningResult",
    "PruningRow",
    "run_derivative_pruning",
    "Figure4Result",
    "run_figure4",
    "MemoryPlanResult",
    "MemoryPlanRow",
    "run_memory_plan",
    "Figure9Point",
    "render_figure9",
    "run_figure9",
    "PrecisionAuditResult",
    "PrecisionAuditRow",
    "run_precision_audit",
    "FULL_TPU_WORKLOAD",
    "SCALED_TPU_WORKLOAD",
    "TPUWorkload",
    "run_overlap_ablation",
    "run_table1",
    "run_table2",
    "FULL_WORKLOAD",
    "SCALED_WORKLOAD",
    "Workload",
    "run_table3",
    "run_table4",
    "TraceStabilityResult",
    "TraceStabilityRow",
    "run_trace_stability",
]
