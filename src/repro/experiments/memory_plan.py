"""Memory-plan audit — static peak certificates vs the runtime tracker.

The static memory planner (:mod:`repro.analysis.memory`) certifies a
peak-bytes bound per trace from liveness intervals and a buffer-reuse
plan.  This harness runs it over the seeded corpus and tabulates, per
program: the verdict, the certified peak vs the peak the instrumented
runtime actually observed, the relation between the two (``==`` exact,
``>=`` sound bound), and how much the reuse plan shrinks the no-reuse
bound.  A ✓ in every MATCH cell is the falsifiability check: the
planner's memory model is the executor's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryPlanRow:
    program: str
    expected: str
    verdicts: tuple
    certified_bytes: int
    observed_bytes: int
    relation: str  # "==" | ">=" | "<!"
    naive_bytes: int
    pool_bytes: int
    reuse_factor: float
    cross_check_ok: bool

    @property
    def ok(self) -> bool:
        return self.cross_check_ok and set(self.verdicts) == {self.expected}


@dataclass
class MemoryPlanResult:
    rows: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        header = (
            f"{'program':28s} {'verdict':16s} "
            f"{'certified':>10s} {'observed':>10s} "
            f"{'pool/naive':>14s} {'reuse':>6s} {'match':>6s}"
        )
        lines = [
            "Memory-plan audit: static peak certificates vs runtime tracker",
            "=" * len(header),
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            verdict = ", ".join(row.verdicts)
            mark = "✓" if row.ok else "✗"
            lines.append(
                f"{row.program:28s} {verdict:16s} "
                f"{row.certified_bytes:>8d} B {row.relation} "
                f"{row.observed_bytes:>6d} B "
                f"{row.pool_bytes:>6d}/{row.naive_bytes:<7d} "
                f"{row.reuse_factor:>5.2f}x {mark:>5s}"
            )
        lines.append("-" * len(header))
        lines.append(
            "every certified bound holds (and straight-line bounds are "
            "exact); buffer reuse is measured against the no-reuse bound"
            if self.ok
            else "DIVERGENCE: a certified bound or verdict failed"
        )
        return "\n".join(lines)


def run_memory_plan() -> MemoryPlanResult:
    from repro.analysis.memory import CORPUS, analyze_memory_program

    result = MemoryPlanResult()
    for program in CORPUS:
        report = analyze_memory_program(program)
        # One row per program; multi-trace programs summarize their first
        # (and in this corpus, only) unique trace.
        check = report.checks[0]
        observed = check.observed_peak_bytes or 0
        relation = (
            "==" if check.exact else (">=" if check.sound else "<!")
        )
        result.rows.append(
            MemoryPlanRow(
                program=program.name,
                expected=program.expect,
                verdicts=tuple(sorted(report.verdicts())),
                certified_bytes=check.certificate.certified_peak_bytes,
                observed_bytes=observed,
                relation=relation,
                naive_bytes=check.certificate.naive_bytes,
                pool_bytes=check.certificate.planned_pool_bytes,
                reuse_factor=check.certificate.reuse_factor,
                cross_check_ok=report.cross_check_ok,
            )
        )
    return result
