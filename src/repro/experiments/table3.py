"""Table 3 — ResNet-56 / CIFAR-10 training throughput on a GTX-1080-class GPU.

Paper's measurement (examples/second):

    PyTorch                            2462
    TensorFlow                         2390
    Swift for TensorFlow (Eager Mode)   730
    Swift for TensorFlow (LazyTensor)  1827

The S4TF rows run this platform's *real* eager and lazy Tensor backends;
the PyTorch/TensorFlow rows replay the captured step program under their
runtime disciplines (fast eager dispatch, pre-built graph executor).  The
shape to reproduce: PyTorch ≈ TensorFlow > LazyTensor ≫ Eager, with
Lazy/Eager ≈ 2.5x and TF/Lazy ≈ 1.3x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import synthetic_cifar10
from repro.experiments.common import Table, fmt_throughput
from repro.frameworks import (
    GraphInterpreterEngine,
    OpByOpEngine,
    capture_step_program,
)
from repro.nn import ResNet, softmax_cross_entropy
from repro.optim import SGD
from repro.runtime.costmodel import GTX_1080, S4TF_EAGER, S4TF_LAZY, TF_GRAPH, TORCH_LIKE
from repro.tensor import Device, Tensor, one_hot
from repro.training import train_step


def _loss(model, x, y):
    return softmax_cross_entropy(model(x), y)


@dataclass
class Workload:
    """The benchmark's (possibly scaled-down) ResNet/CIFAR configuration."""

    depth_per_stage: int = 3
    width: int = 8
    batch_size: int = 32
    image_size: int = 32
    steps: int = 3

    def model(self, device: Device) -> ResNet:
        return ResNet.create(
            depth_per_stage=self.depth_per_stage,
            base_width=self.width,
            num_classes=10,
            image_size=self.image_size,
            device=device,
            seed=0,
        )

    def batch(self, device: Device):
        data = synthetic_cifar10(n=self.batch_size, image_size=self.image_size)
        x = Tensor(data.images, device)
        y = one_hot(Tensor(data.labels.astype(np.float32), device), 10)
        return x, y


#: The paper-scale workload (slow in wall-clock; benches default to scaled).
FULL_WORKLOAD = Workload(depth_per_stage=9, width=16, batch_size=128, steps=2)
SCALED_WORKLOAD = Workload()


def measure_real_backend(kind: str, engine, workload: Workload) -> float:
    """Steady-state simulated step time of a real S4TF backend."""
    device = Device(kind, GTX_1080, engine)
    model = workload.model(device)
    x, y = workload.batch(device)
    optimizer = SGD(learning_rate=0.01)
    # Warm-up: two steps, because the lazy backend compiles twice before
    # reaching steady state (the first step also materializes the input
    # pipeline, so its trace differs from the recurring one).
    for _ in range(2):
        train_step(model, optimizer, _loss, x, y, device)
    device.sync()
    start = device.elapsed
    for _ in range(workload.steps):
        train_step(model, optimizer, _loss, x, y, device)
    device.sync()
    return (device.elapsed - start) / workload.steps


def run_table3(workload: Workload = SCALED_WORKLOAD) -> Table:
    """Regenerate Table 3; returns a renderable table (ordering asserted by
    tests, factors recorded in EXPERIMENTS.md)."""

    def one_step(device: Device) -> None:
        model = workload.model(device)
        x, y = workload.batch(device)
        train_step(model, SGD(0.01), _loss, x, y, device)

    program = capture_step_program(one_step, GTX_1080)

    torch_time = OpByOpEngine(program, TORCH_LIKE, GTX_1080).steady_state_step_time(
        measure=workload.steps
    )
    tf_time = GraphInterpreterEngine(
        program, TF_GRAPH, GTX_1080
    ).steady_state_step_time(measure=workload.steps)
    eager_time = measure_real_backend("eager", S4TF_EAGER, workload)
    lazy_time = measure_real_backend("lazy", S4TF_LAZY, workload)

    batch = workload.batch_size
    table = Table(
        title="Table 3: ResNet-56-class training on a simulated GTX 1080",
        headers=["Framework", "Throughput (examples / s)"],
    )
    results = {
        "PyTorch": batch / torch_time,
        "TensorFlow": batch / tf_time,
        "Swift for TensorFlow (Eager Mode)": batch / eager_time,
        "Swift for TensorFlow (LazyTensor)": batch / lazy_time,
    }
    for name, throughput in results.items():
        table.add_row(name, fmt_throughput(throughput))
    table.notes.append(
        f"workload: ResNet({workload.depth_per_stage} blocks/stage, width "
        f"{workload.width}), batch {workload.batch_size}; simulated clock"
    )
    table.results = results
    return table
