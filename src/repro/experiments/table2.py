"""Table 2 — framework comparison for ResNet-50 training on a TPUv3-32 pod.

Paper's measurement (throughput, examples/second, TPUv3-32):

    JAX + Flax              21258
    TensorFlow              33118
    Swift for TensorFlow    20015

All three frameworks "can notionally produce identical XLA HLO"; the gap
is runtime/codebase optimization maturity, which the paper explicitly
flags ("some codebases have been better optimized for benchmark
purposes... We include this table for completeness").  Accordingly, all
three rows here execute the *same captured HLO step program* fused through
the same compiler; they differ in (a) host discipline — TF graphs are
staged ahead of time, JAX jit-compiles once per signature, S4TF re-traces
every step — and (b) a documented runtime-maturity efficiency factor.
"""

from __future__ import annotations

from repro.experiments.common import Table, fmt_throughput
from repro.experiments.table1 import (
    SCALED_TPU_WORKLOAD,
    TPUWorkload,
    _loss,
)
from repro.frameworks import FusedJitEngine, capture_step_program
from repro.frameworks.engines import LazyTraceEngine
from repro.optim import SGD
from repro.optim.tree import tangent_byte_size
from repro.runtime.costmodel import JAX_JIT, S4TF_LAZY, TF_GRAPH, TPU_V3_CORE
from repro.tensor import Device

N_CORES = 32

#: Runtime-maturity factors (device-time efficiency).  TF's benchmark
#: codebase is the most tuned; JAX and S4TF land within ~1.6x of it.
EFFICIENCY = {"TensorFlow": 1.0, "JAX + Flax": 0.64, "Swift for TensorFlow": 0.60}

#: The scaled workload's device time per step is ~100x smaller than the
#: paper's real ResNet-50 step, while host-side costs (tracing, dispatch)
#: do not scale down with it.  To compare the frameworks in the paper's
#: regime (device-bound steps of tens of milliseconds), the simulated core
#: is slowed by this factor for this table only; host costs are untouched.
COMPUTE_REGIME_FACTOR = 150.0


def run_table2(workload: TPUWorkload = SCALED_TPU_WORKLOAD) -> Table:
    gradient_bytes_holder = {}

    def one_step(device: Device) -> None:
        model = workload.model(device)
        x, y = workload.batch(device)
        from repro.core import value_and_gradient

        loss, gradient = value_and_gradient(_loss, model, x, y, wrt=0)
        gradient_bytes_holder["bytes"] = None  # computed below via optimizer
        opt = SGD(0.01)
        opt.update(model, gradient)
        gradient_bytes_holder["bytes"] = tangent_byte_size(gradient)
        from repro.tensor import LazyTensorBarrier

        LazyTensorBarrier(device)

    program = capture_step_program(one_step, TPU_V3_CORE)
    grad_bytes = gradient_bytes_holder["bytes"]
    allreduce = TPU_V3_CORE.allreduce_time(grad_bytes, N_CORES)

    import dataclasses

    regime_core = dataclasses.replace(
        TPU_V3_CORE,
        flops_per_sec=TPU_V3_CORE.flops_per_sec / COMPUTE_REGIME_FACTOR,
        mem_bw_bytes_per_sec=TPU_V3_CORE.mem_bw_bytes_per_sec
        / COMPUTE_REGIME_FACTOR,
    )

    engines = {
        "JAX + Flax": FusedJitEngine(
            program, JAX_JIT, regime_core, efficiency=EFFICIENCY["JAX + Flax"]
        ),
        "TensorFlow": FusedJitEngine(
            program, TF_GRAPH, regime_core, efficiency=EFFICIENCY["TensorFlow"]
        ),
        "Swift for TensorFlow": LazyTraceEngine(
            program,
            S4TF_LAZY,
            regime_core,
            efficiency=EFFICIENCY["Swift for TensorFlow"],
        ),
    }

    table = Table(
        title="Table 2: ResNet-50-class training on a simulated TPUv3-32 pod",
        headers=["Framework", "Throughput (examples / s)"],
    )
    results = {}
    for name, engine in engines.items():
        step_time = engine.steady_state_step_time(measure=workload.steps)
        step_time += allreduce
        throughput = N_CORES * workload.per_replica_batch / step_time
        results[name] = throughput
        table.add_row(name, fmt_throughput(throughput))
    table.notes.append(
        "identical fused HLO; rows differ in host discipline and a "
        "documented runtime-maturity factor (see module docstring)"
    )
    table.results = results
    return table
