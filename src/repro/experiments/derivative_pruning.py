"""Pullback-capture pruning audit — measured memory savings, gradients pinned.

The reverse-mode tape (`_BlockRecord` entries) is the memory cost of
training (the paper's Section 2.2 pullback closures capture exactly what
the derivative needs).  The cotangent-liveness analysis finds captures
the activity analysis records but whose cotangent provably dies in a
zero-derivative (discrete) chain; ``vjp_plan(..., prune_captures=True)``
drops them.  This harness tabulates, per corpus model: record entries
without and with pruning, the entries saved, and whether the pruned
plan's gradient is **bit-identical** to the unpruned one — the
falsifiability check that pruning is a pure memory optimization.  Clean
models double as the zero-false-pruning baseline: the analysis must not
shrink a record whose captures are all live.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PruningRow:
    model: str
    expected: str
    dead_captures: int
    entries_unpruned: int
    entries_pruned: int
    gradients_identical: bool

    @property
    def entries_saved(self) -> int:
        return self.entries_unpruned - self.entries_pruned

    @property
    def ok(self) -> bool:
        if not self.gradients_identical:
            return False
        if self.expected == "dead-capture":
            return self.entries_saved > 0
        return self.entries_saved == 0


@dataclass
class PruningResult:
    rows: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def total_saved(self) -> int:
        return sum(row.entries_saved for row in self.rows)

    def render(self) -> str:
        header = (
            f"{'model':20s} {'dead':>5s} {'entries (full)':>15s} "
            f"{'entries (pruned)':>17s} {'saved':>6s} {'grad ==':>8s}"
        )
        lines = [
            "Pullback-capture pruning: record sizes and gradient identity",
            "=" * len(header),
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            mark = "✓" if row.gradients_identical else "✗"
            lines.append(
                f"{row.model:20s} {row.dead_captures:>5d} "
                f"{row.entries_unpruned:>15d} {row.entries_pruned:>17d} "
                f"{row.entries_saved:>6d} {mark:>8s}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{self.total_saved} record entr"
            f"{'y' if self.total_saved == 1 else 'ies'} pruned; "
            + (
                "every pruned gradient is bit-identical and no live "
                "capture was dropped"
                if self.ok
                else "PRUNING CHANGED A GRADIENT (or dropped a live capture)"
            )
        )
        return "\n".join(lines)


def run_derivative_pruning() -> PruningResult:
    from repro.analysis.derivatives.models import MODELS
    from repro.analysis.derivatives.report import analyze_derivative_model

    result = PruningResult()
    for model in MODELS.values():
        report = analyze_derivative_model(model)
        if report.pruning is None:
            # Hazard models whose primal cannot run (defective rules make
            # the plan unexecutable) have nothing to measure.
            continue
        result.rows.append(
            PruningRow(
                model=model.name,
                expected=model.expect,
                dead_captures=len(report.liveness.dead) if report.liveness else 0,
                entries_unpruned=report.pruning.entries_unpruned,
                entries_pruned=report.pruning.entries_pruned,
                gradients_identical=report.pruning.gradients_identical,
            )
        )
    return result
