"""Trace-stability audit — the Section 3.4 performance model, proven.

LazyTensor's speed rests on per-step traces hashing identically so the
trace-hash → executable cache hits (the companion LazyTensor paper calls
the failure mode "silent recompilation").  This harness runs the static
trace-stability analyzer over the seeded corpus and tabulates, per
program: the verdict, the *statically predicted* compile/cache-hit
counts, the counts the instrumented runtime actually observed, and
whether the two match exactly.  A ✓ in every MATCH cell is the
falsifiability check: the analyzer's cache model is the compiler's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TraceStabilityRow:
    program: str
    expected: str
    verdicts: tuple
    predicted_compiles: int
    predicted_hits: int
    dynamic_compiles: int
    dynamic_hits: int
    cross_check_ok: bool

    @property
    def ok(self) -> bool:
        return self.cross_check_ok and set(self.verdicts) == {self.expected}


@dataclass
class TraceStabilityResult:
    rows: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        header = (
            f"{'program':26s} {'verdict':24s} "
            f"{'pred C/H':>9s} {'dyn C/H':>9s} {'match':>6s}"
        )
        lines = [
            "Trace-stability audit: static cache predictions vs runtime",
            "=" * len(header),
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            verdict = ", ".join(row.verdicts)
            mark = "✓" if row.ok else "✗"
            lines.append(
                f"{row.program:26s} {verdict:24s} "
                f"{row.predicted_compiles:>4d}/{row.predicted_hits:<4d} "
                f"{row.dynamic_compiles:>4d}/{row.dynamic_hits:<4d} {mark:>5s}"
            )
        lines.append("-" * len(header))
        lines.append(
            "all static predictions match the runtime"
            if self.ok
            else "STATIC/DYNAMIC DIVERGENCE — the cache model is wrong"
        )
        return "\n".join(lines)


def run_trace_stability() -> TraceStabilityResult:
    from repro.analysis.tracing.models import PROGRAMS
    from repro.analysis.tracing.report import analyze_trace_program

    result = TraceStabilityResult()
    for program in PROGRAMS.values():
        report = analyze_trace_program(program)
        result.rows.append(
            TraceStabilityRow(
                program=program.name,
                expected=program.expect,
                verdicts=tuple(sorted(report.verdicts())),
                predicted_compiles=report.predicted_compiles,
                predicted_hits=report.predicted_cache_hits,
                dynamic_compiles=report.dynamic_compiles,
                dynamic_hits=report.dynamic_cache_hits,
                cross_check_ok=report.cross_check_ok,
            )
        )
    return result
