"""Regenerate the paper's tables and figures from the command line.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments table3     # one experiment
    python -m repro.experiments figure9 table4
    python -m repro.experiments --verify table3   # per-pass IR verification
"""

from __future__ import annotations

import sys

from repro.experiments import (
    render_figure9,
    run_codegen_audit,
    run_derivative_pruning,
    run_figure4,
    run_figure9,
    run_memory_plan,
    run_precision_audit,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_trace_stability,
)


def _figure4_text() -> str:
    result = run_figure4()
    summary = ", ".join(f"{k}={v}" for k, v in result.summary.items())
    return (
        "Figure 4: LazyTensor trace of the LeNet-5 forward pass\n"
        "======================================================\n"
        f"{result.text}\n\nsummary: {summary}"
    )


EXPERIMENTS = {
    "table1": lambda: run_table1().render(),
    "table2": lambda: run_table2().render(),
    "table3": lambda: run_table3().render(),
    "table4": lambda: run_table4().render(),
    "figure4": _figure4_text,
    "figure9": lambda: render_figure9(run_figure9()),
    "trace_stability": lambda: run_trace_stability().render(),
    "derivative_pruning": lambda: run_derivative_pruning().render(),
    "memory_plan": lambda: run_memory_plan().render(),
    "precision_audit": lambda: run_precision_audit().render(),
    "codegen_audit": lambda: run_codegen_audit().render(),
}


def main(argv: list[str]) -> int:
    argv = list(argv)
    if "--verify" in argv:
        # Per-pass invariant attribution: every SIL/HLO pass iteration is
        # followed by full re-verification (see repro.analysis.attribution).
        from repro.analysis import set_verify_each

        argv.remove("--verify")
        set_verify_each(True)
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 2
    for i, name in enumerate(names):
        if i:
            print("\n")
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
