"""Figure 9 / Appendix B — subscript pullback cost: O(n) functional vs
O(1) mutable value semantics.

Sweeps the array size and times both pullback formulations (real wall
clock — this experiment is a pure-algorithm asymptotics result, no
hardware simulation involved).  The shape to reproduce: the functional
pullback's time grows linearly with n; the mutable pullback's is flat.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.pullback_styles import (
    my_op_with_functional_pullback,
    my_op_with_mutable_pullback,
)


@dataclass
class Figure9Point:
    n: int
    functional_seconds: float
    mutable_seconds: float


def _time_functional(values, repeats: int) -> float:
    _, pb = my_op_with_functional_pullback(values, 1, len(values) - 2)
    start = time.perf_counter()
    for _ in range(repeats):
        pb(1.0)
    return (time.perf_counter() - start) / repeats


def _time_mutable(values, repeats: int) -> float:
    _, pb = my_op_with_mutable_pullback(values, 1, len(values) - 2)
    adjoint = [0.0] * len(values)
    start = time.perf_counter()
    for _ in range(repeats):
        pb(1.0, adjoint)
    return (time.perf_counter() - start) / repeats


def run_figure9(
    sizes: tuple[int, ...] = (256, 1024, 4096, 16384, 65536),
    repeats: int = 200,
) -> list[Figure9Point]:
    points = []
    for n in sizes:
        values = [float(i) for i in range(n)]
        points.append(
            Figure9Point(
                n=n,
                functional_seconds=_time_functional(values, repeats),
                mutable_seconds=_time_mutable(values, repeats),
            )
        )
    return points


def render_figure9(points: list[Figure9Point]) -> str:
    lines = [
        "Figure 9: array-subscript pullback cost (seconds per pullback call)",
        f"{'n':>8} | {'functional':>12} | {'mutable':>12} | {'ratio':>8}",
        "-" * 50,
    ]
    for p in points:
        ratio = p.functional_seconds / max(p.mutable_seconds, 1e-12)
        lines.append(
            f"{p.n:>8} | {p.functional_seconds:12.3e} | "
            f"{p.mutable_seconds:12.3e} | {ratio:8.1f}"
        )
    return "\n".join(lines)
