"""Model checkpointing.

The paper's workflow (Section 1, Section 5.1.3) relies on checkpoints:
models pre-trained in the datacenter are fine-tuned elsewhere, and the
swift-models repository ships checkpoint reading/writing.  Here a model's
parameters — the differentiable leaves of its struct tree — are flattened
to a path-keyed dictionary, saved as ``.npz``, and restored in place (a
unique borrow of the model, consistent with mutable value semantics).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.differentiable import differentiable_fields
from repro.tensor import Tensor


def _is_struct(value) -> bool:
    return getattr(value, "__is_differentiable_struct__", False)


def state_dict(model) -> dict[str, np.ndarray]:
    """Flatten a model's parameters into ``path -> ndarray``."""
    out: dict[str, np.ndarray] = {}

    def walk(value, path: str) -> None:
        if isinstance(value, Tensor):
            out[path] = value.numpy()
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            out[path] = np.asarray(float(value), dtype=np.float32)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                walk(item, f"{path}.{i}")
        elif _is_struct(value):
            for name in differentiable_fields(value):
                walk(getattr(value, name), f"{path}.{name}" if path else name)

    walk(model, "")
    return out


def load_state_dict(model, state: dict[str, np.ndarray]) -> None:
    """Restore parameters into ``model`` in place (unique borrow).

    Paths must match the model's structure exactly; extra or missing keys
    raise ``KeyError`` so silent architecture drift cannot happen.
    """
    consumed: set[str] = set()

    def walk(owner, value, path: str, setter) -> None:
        if isinstance(value, Tensor):
            if path not in state:
                raise KeyError(f"checkpoint is missing parameter {path!r}")
            setter(Tensor(state[path], value.device))
            consumed.add(path)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            if path not in state:
                raise KeyError(f"checkpoint is missing parameter {path!r}")
            setter(float(state[path]))
            consumed.add(path)
        elif isinstance(value, list):
            for i, item in enumerate(value):
                walk(
                    value,
                    item,
                    f"{path}.{i}",
                    lambda v, lst=value, idx=i: lst.__setitem__(idx, v),
                )
        elif _is_struct(value):
            for name in differentiable_fields(value):
                field_path = f"{path}.{name}" if path else name
                walk(
                    value,
                    getattr(value, name),
                    field_path,
                    lambda v, obj=value, attr=name: object.__setattr__(
                        obj, attr, v
                    ),
                )

    walk(None, model, "", lambda v: None)
    extra = set(state) - consumed
    if extra:
        raise KeyError(f"checkpoint has unknown parameters: {sorted(extra)[:5]}")


def save(model, path: Union[str, Path]) -> Path:
    """Write a model checkpoint to ``path`` (``.npz``)."""
    path = Path(path)
    np.savez(path, **state_dict(model))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load(model, path: Union[str, Path]) -> None:
    """Restore ``model`` in place from a checkpoint written by :func:`save`."""
    with np.load(Path(path)) as data:
        load_state_dict(model, dict(data.items()))
