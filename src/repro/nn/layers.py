"""Standard layers: the building blocks of Figure 6's LeNet and the ResNets.

Every layer is a value type (mutable value semantics); parameters are plain
Tensor fields, configuration is ``no_derivative``.  Initialization follows
the Swift for TensorFlow API conventions (Glorot-uniform weights, zero
biases).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.differentiable import no_derivative
from repro.nn.layer import identity, layer, sequenced
from repro.sil.mathprims import relu  # noqa: F401  (common activation re-export)
from repro.tensor import Tensor, avg_pool2d, conv2d, flatten_batch, max_pool2d, one_hot
from repro.tensor.device import Device, default_device


def _glorot(shape, fan_in, fan_out, device, rng) -> Tensor:
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    data = rng.uniform(-limit, limit, size=shape).astype(np.float32)
    return Tensor(data, device)


@layer
class Dense:
    """Fully connected layer: ``activation(x @ weight + bias)``."""

    weight: Tensor
    bias: Tensor
    activation: object = no_derivative(default=identity)

    @classmethod
    def create(
        cls,
        input_size: int,
        output_size: int,
        activation=identity,
        device: Optional[Device] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "Dense":
        device = device or default_device()
        rng = rng if rng is not None else np.random.default_rng()
        weight = _glorot((input_size, output_size), input_size, output_size, device, rng)
        bias = Tensor.zeros((output_size,), device)
        return cls(weight, bias, activation)

    def callAsFunction(self, x):
        return self.activation(x @ self.weight + self.bias)


@layer
class Conv2D:
    """2-D convolution over NHWC input with (KH,KW,CIN,COUT) filters."""

    filter: Tensor
    bias: Tensor
    stride: int = no_derivative(default=1)
    padding: str = no_derivative(default="valid")
    activation: object = no_derivative(default=identity)

    @classmethod
    def create(
        cls,
        filter_shape: tuple[int, int, int, int],
        stride: int = 1,
        padding: str = "valid",
        activation=identity,
        device: Optional[Device] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "Conv2D":
        device = device or default_device()
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw, cin, cout = filter_shape
        fan_in = kh * kw * cin
        fan_out = kh * kw * cout
        filt = _glorot(filter_shape, fan_in, fan_out, device, rng)
        bias = Tensor.zeros((cout,), device)
        return cls(filt, bias, stride, padding, activation)

    def callAsFunction(self, x):
        convolved = conv2d(x, self.filter, self.stride, self.padding)
        return self.activation(convolved + self.bias)


@layer
class AvgPool2D:
    """Average pooling; no parameters."""

    pool_size: int = no_derivative(default=2)
    stride: int = no_derivative(default=2)

    def callAsFunction(self, x):
        return avg_pool2d(x, self.pool_size, self.stride)


@layer
class MaxPool2D:
    """Max pooling; no parameters."""

    pool_size: int = no_derivative(default=2)
    stride: int = no_derivative(default=2)

    def callAsFunction(self, x):
        return max_pool2d(x, self.pool_size, self.stride)


@layer
class Flatten:
    """Collapse all non-batch dimensions."""

    def callAsFunction(self, x):
        return flatten_batch(x)


@layer
class BatchNorm:
    """Batch normalization with learnable scale/offset.

    Normalizes over all axes except the channel axis using the current
    batch's statistics (the training-path computation; running statistics
    are an inference-time affair handled outside the differentiable call).
    """

    scale: Tensor
    offset: Tensor
    epsilon: float = no_derivative(default=1e-5)

    @classmethod
    def create(cls, features: int, device: Optional[Device] = None) -> "BatchNorm":
        device = device or default_device()
        return cls(
            Tensor.ones((features,), device), Tensor.zeros((features,), device)
        )

    def callAsFunction(self, x):
        axes = tuple(range(len(x.shape) - 1))
        mean = x.mean(axes, True)
        centered = x - mean
        variance = (centered * centered).mean(axes, True)
        normalized = centered * (variance + self.epsilon).rsqrt()
        return normalized * self.scale + self.offset


from repro.sil.primitives import primitive  # noqa: E402


def _dropout_mask(x, rate, seed):
    rng = np.random.default_rng(seed)
    keep = (rng.random(x.shape) >= rate).astype(np.float32) / (1.0 - rate)
    return Tensor(keep, x.device)


@primitive("dropout_apply", nondiff_args=(1, 2))
def dropout_apply(x, rate, seed):
    if rate <= 0.0:
        return x
    mask = _dropout_mask(x, rate, seed)
    return x * mask


@dropout_apply.def_vjp
def _dropout_apply_vjp(x, rate, seed):
    if rate <= 0.0:
        return x, lambda ct: (ct, None, None)
    mask = _dropout_mask(x, rate, seed)

    def pullback(ct):
        return (ct * mask, None, None)

    return x * mask, pullback


@layer
class Dropout:
    """Dropout with a fixed pre-sampled mask policy.

    To keep traces deterministic and cache-friendly, the mask is sampled on
    the host per call when training; at inference (``rate == 0``) this is
    the identity.
    """

    rate: float = no_derivative(default=0.5)
    seed: int = no_derivative(default=0)

    def callAsFunction(self, x):
        return dropout_apply(x, self.rate, self.seed)


@layer
class Sequential:
    """A layer composing an arbitrary list of sub-layers in order."""

    layers: list

    def callAsFunction(self, x):
        return sequenced(x, self.layers)


@layer
class Residual:
    """`x + body(x)` — the skip connection building block."""

    body: object

    def callAsFunction(self, x):
        return x + self.body(x)


@layer
class Embedding:
    """Trainable lookup table: indices -> dense vectors.

    Implemented as one-hot times the table so the gradient flows through
    the standard matmul pullback (a scatter-add into the table rows).
    """

    table: Tensor

    @classmethod
    def create(
        cls,
        vocabulary_size: int,
        embedding_size: int,
        device: Optional[Device] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "Embedding":
        device = device or default_device()
        rng = rng if rng is not None else np.random.default_rng()
        scale = 1.0 / math.sqrt(embedding_size)
        data = (rng.standard_normal((vocabulary_size, embedding_size)) * scale).astype(
            np.float32
        )
        return cls(Tensor(data, device))

    def callAsFunction(self, indices):
        encoded = one_hot(indices, len(self.table))
        return encoded @ self.table
