"""Neural-network library: the Layer protocol, standard layers, models."""

from repro.nn.layer import identity, layer, sequenced
from repro.nn.layers import (
    AvgPool2D,
    Embedding,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    Residual,
    Sequential,
    relu,
)
from repro.nn.checkpoint import load, load_state_dict, save, state_dict
from repro.nn.losses import accuracy, mse_loss, one_hot, softmax_cross_entropy
from repro.nn.recurrent import GRU, SimpleRNN
from repro.nn.models import (
    MLP,
    BasicBlock,
    ConvBN,
    LeNet,
    ResNet,
    resnet50_imagenet,
    resnet56_cifar,
    resnet_cifar_small,
)

__all__ = [
    "load",
    "load_state_dict",
    "save",
    "state_dict",
    "GRU",
    "SimpleRNN",
    "identity",
    "layer",
    "sequenced",
    "AvgPool2D",
    "Embedding",
    "BatchNorm",
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "MaxPool2D",
    "Residual",
    "Sequential",
    "relu",
    "accuracy",
    "mse_loss",
    "one_hot",
    "softmax_cross_entropy",
    "MLP",
    "BasicBlock",
    "ConvBN",
    "LeNet",
    "ResNet",
    "resnet50_imagenet",
    "resnet56_cifar",
    "resnet_cifar_small",
]
