"""Recurrent layers: fully dynamic networks (the DyNet comparison).

Section 6 notes the platform "support[s] fully dynamic networks that can
change architecture on each iteration".  These RNNs demonstrate that: the
time loop is ordinary Python control flow inside ``callAsFunction``,
lowered and differentiated by the AD transformation — sequences of any
length (even varying per call) run through the same compiled derivative,
with per-basic-block records capturing the unrolling at runtime.

Inputs are lists of ``(batch, features)`` tensors, one per time step.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layer import layer
from repro.tensor import Tensor
from repro.tensor.device import Device, default_device


def _init(shape, scale, device, rng) -> Tensor:
    data = (rng.standard_normal(shape) * scale).astype(np.float32)
    return Tensor(data, device)


@layer
class SimpleRNN:
    """Elman RNN: ``h_t = tanh(x_t W_ih + h_{t-1} W_hh + b)``.

    Returns the final hidden state; stack a Dense head for classification.
    """

    w_ih: Tensor
    w_hh: Tensor
    bias: Tensor

    @classmethod
    def create(
        cls,
        input_size: int,
        hidden_size: int,
        device: Optional[Device] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "SimpleRNN":
        device = device or default_device()
        rng = rng if rng is not None else np.random.default_rng()
        scale_ih = 1.0 / np.sqrt(input_size)
        scale_hh = 1.0 / np.sqrt(hidden_size)
        return cls(
            w_ih=_init((input_size, hidden_size), scale_ih, device, rng),
            w_hh=_init((hidden_size, hidden_size), scale_hh, device, rng),
            bias=Tensor.zeros((hidden_size,), device),
        )

    def callAsFunction(self, inputs):
        h = (inputs[0] @ self.w_ih + self.bias).tanh()
        for t in range(1, len(inputs)):
            h = (inputs[t] @ self.w_ih + h @ self.w_hh + self.bias).tanh()
        return h


@layer
class GRU:
    """Gated recurrent unit over a list of time-step tensors."""

    w_z: Tensor
    u_z: Tensor
    w_r: Tensor
    u_r: Tensor
    w_h: Tensor
    u_h: Tensor

    @classmethod
    def create(
        cls,
        input_size: int,
        hidden_size: int,
        device: Optional[Device] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> "GRU":
        device = device or default_device()
        rng = rng if rng is not None else np.random.default_rng()
        si = 1.0 / np.sqrt(input_size)
        sh = 1.0 / np.sqrt(hidden_size)
        return cls(
            w_z=_init((input_size, hidden_size), si, device, rng),
            u_z=_init((hidden_size, hidden_size), sh, device, rng),
            w_r=_init((input_size, hidden_size), si, device, rng),
            u_r=_init((hidden_size, hidden_size), sh, device, rng),
            w_h=_init((input_size, hidden_size), si, device, rng),
            u_h=_init((hidden_size, hidden_size), sh, device, rng),
        )

    def callAsFunction(self, inputs):
        h = (inputs[0] @ self.w_h).tanh()
        for t in range(1, len(inputs)):
            x = inputs[t]
            z = (x @ self.w_z + h @ self.u_z).sigmoid()
            r = (x @ self.w_r + h @ self.u_r).sigmoid()
            candidate = (x @ self.w_h + (r * h) @ self.u_h).tanh()
            h = (1.0 - z) * h + z * candidate
        return h
