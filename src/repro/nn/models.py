"""Models: LeNet-5 (Figure 6), an MLP, and the ResNet family.

``LeNet`` is a line-for-line port of the paper's Figure 6: a struct
conforming to the Layer protocol, composing standard layers, with a
``@differentiable`` ``callAsFunction``.

The ResNets provide the evaluation workloads: ``resnet56_cifar`` for the
GPU experiment (Table 3) and ``resnet50_imagenet`` for the TPU experiments
(Tables 1–2).  Both accept a ``width_multiplier``/``depth_per_stage`` so
tests and benches can scale compute while preserving the op mix.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.differentiable import no_derivative
from repro.nn.layer import layer, sequenced
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    Sequential,
)
from repro.sil.mathprims import relu
from repro.tensor.device import Device, default_device


@layer
class LeNet:
    """The paper's Figure 6 model, field for field."""

    conv1: Conv2D
    pool1: AvgPool2D
    conv2: Conv2D
    pool2: AvgPool2D
    flatten: Flatten
    fc1: Dense
    fc2: Dense
    fc3: Dense

    @classmethod
    def create(
        cls, device: Optional[Device] = None, seed: int = 0
    ) -> "LeNet":
        device = device or default_device()
        rng = np.random.default_rng(seed)
        return cls(
            conv1=Conv2D.create(
                (5, 5, 1, 6), padding="same", activation=relu, device=device, rng=rng
            ),
            pool1=AvgPool2D(2, 2),
            conv2=Conv2D.create((5, 5, 6, 16), activation=relu, device=device, rng=rng),
            pool2=AvgPool2D(2, 2),
            flatten=Flatten(),
            fc1=Dense.create(400, 120, activation=relu, device=device, rng=rng),
            fc2=Dense.create(120, 84, activation=relu, device=device, rng=rng),
            fc3=Dense.create(84, 10, device=device, rng=rng),
        )

    def callAsFunction(self, input):
        convolved = sequenced(input, [self.conv1, self.pool1, self.conv2, self.pool2])
        return sequenced(convolved, [self.flatten, self.fc1, self.fc2, self.fc3])


@layer
class MLP:
    """A plain multi-layer perceptron over flattened inputs."""

    hidden: Sequential
    head: Dense

    @classmethod
    def create(
        cls,
        input_size: int,
        hidden_sizes: list[int],
        output_size: int,
        device: Optional[Device] = None,
        seed: int = 0,
    ) -> "MLP":
        device = device or default_device()
        rng = np.random.default_rng(seed)
        sizes = [input_size] + list(hidden_sizes)
        hidden = Sequential(
            [
                Dense.create(a, b, activation=relu, device=device, rng=rng)
                for a, b in zip(sizes, sizes[1:])
            ]
        )
        head = Dense.create(sizes[-1], output_size, device=device, rng=rng)
        return cls(hidden, head)

    def callAsFunction(self, x):
        return self.head(self.hidden(x))


@layer
class ConvBN:
    """Conv2D followed by batch normalization (the ResNet building unit)."""

    conv: Conv2D
    norm: BatchNorm

    @classmethod
    def create(cls, filter_shape, stride=1, padding="same", device=None, rng=None):
        conv = Conv2D.create(filter_shape, stride, padding, device=device, rng=rng)
        norm = BatchNorm.create(filter_shape[3], device=device)
        return cls(conv, norm)

    def callAsFunction(self, x):
        return self.norm(self.conv(x))


@layer
class BasicBlock:
    """Two 3x3 ConvBNs with identity (or projection) skip connection."""

    conv1: ConvBN
    conv2: ConvBN
    projection: object  # ConvBN for strided/widening blocks, else a dummy
    has_projection: bool = no_derivative(default=False)

    @classmethod
    def create(cls, in_channels, out_channels, stride=1, device=None, rng=None):
        conv1 = ConvBN.create(
            (3, 3, in_channels, out_channels), stride, "same", device, rng
        )
        conv2 = ConvBN.create(
            (3, 3, out_channels, out_channels), 1, "same", device, rng
        )
        if stride != 1 or in_channels != out_channels:
            projection = ConvBN.create(
                (1, 1, in_channels, out_channels), stride, "same", device, rng
            )
            return cls(conv1, conv2, projection, True)
        return cls(conv1, conv2, ConvBN.create((1, 1, 1, 1), 1, "same", device, rng), False)

    def callAsFunction(self, x):
        h = relu(self.conv1(x))
        h = self.conv2(h)
        if self.has_projection:
            shortcut = self.projection(x)
        else:
            shortcut = x
        return relu(h + shortcut)


@layer
class ResNet:
    """A CIFAR-style residual network: stem, three stages, pooled head."""

    stem: ConvBN
    stages: list
    head: Dense
    pool_size: int = no_derivative(default=8)

    @classmethod
    def create(
        cls,
        depth_per_stage: int,
        base_width: int = 16,
        num_classes: int = 10,
        image_size: int = 32,
        in_channels: int = 3,
        device: Optional[Device] = None,
        seed: int = 0,
    ) -> "ResNet":
        device = device or default_device()
        rng = np.random.default_rng(seed)
        stem = ConvBN.create(
            (3, 3, in_channels, base_width), 1, "same", device, rng
        )
        stages: list = []
        channels = base_width
        for stage in range(3):
            out_channels = base_width * (2**stage)
            blocks = []
            for block in range(depth_per_stage):
                stride = 2 if (stage > 0 and block == 0) else 1
                blocks.append(
                    BasicBlock.create(channels, out_channels, stride, device, rng)
                )
                channels = out_channels
            stages.append(Sequential(blocks))
        final_spatial = image_size // 4  # two stride-2 stages
        head = Dense.create(channels * 1 * 1, num_classes, device=device, rng=rng)
        return cls(stem, stages, head, final_spatial)

    def callAsFunction(self, x):
        h = relu(self.stem(x))
        h = sequenced(h, self.stages)
        pooled = h.mean((1, 2))
        return self.head(pooled)


def resnet56_cifar(device=None, seed=0, width=16) -> ResNet:
    """ResNet-56 for CIFAR-10: 3 stages x 9 basic blocks (He et al. 2016)."""
    return ResNet.create(
        depth_per_stage=9, base_width=width, num_classes=10, device=device, seed=seed
    )


def resnet_cifar_small(device=None, seed=0) -> ResNet:
    """A scaled-down ResNet (3 stages x 1 block) for tests."""
    return ResNet.create(
        depth_per_stage=1, base_width=8, num_classes=10, device=device, seed=seed
    )


def resnet50_imagenet(
    device=None, seed=0, image_size: int = 32, base_width: int = 32
) -> ResNet:
    """A ResNet-50-class model for the TPU experiments.

    Substitution note (DESIGN.md): the paper's ResNet-50 uses bottleneck
    blocks on 224x224 inputs; here the same stage structure runs basic
    blocks at a reduced spatial size so the experiment executes in
    reasonable wall time while preserving the conv/BN/elementwise op mix
    that drives the systems comparison.  Depth 8 per stage ≈ 50 conv
    layers total.
    """
    return ResNet.create(
        depth_per_stage=8,
        base_width=base_width,
        num_classes=1000,
        image_size=image_size,
        device=device,
        seed=seed,
    )
