"""The Layer protocol (Section 4.1, Figure 6).

A layer is a *differentiable struct* — a value type whose stored properties
are parameters (tensors), sub-layers, or ``no_derivative`` configuration —
with a ``callAsFunction`` that is compiled by the AD transformation at
class-definition time.  There is no ``Variable`` wrapper type anywhere:
models are plain values, gradients are their ``TangentVector``, and
optimizers mutate models in place through unique borrows.

``@layer`` is the class decorator conferring the protocol:

>>> @layer
... class Dense:
...     weight: Tensor
...     bias: Tensor
...     def callAsFunction(self, x):
...         return x @ self.weight + self.bias

Layers are first-class differentiable callables: calling one inside any
``@differentiable`` function differentiates through both the input *and*
the layer's own parameters (the callee cotangent is the layer's
TangentVector).
"""

from __future__ import annotations

from repro.core.api import DifferentiableFunction
from repro.core.differentiable import differentiable_struct
from repro.sil.primitives import primitive


def layer(cls: type) -> type:
    """Class decorator: differentiable struct + compiled callAsFunction."""
    if not hasattr(cls, "callAsFunction"):
        raise TypeError(f"{cls.__name__} must define callAsFunction")
    cls = differentiable_struct(cls)

    # Lower + check the forward function once, ahead of time — the
    # @differentiable attribute of Figure 6.
    call_fn = DifferentiableFunction(cls.callAsFunction)
    cls.__call_fn__ = call_fn

    def __call__(self, *args):
        return call_fn.pyfunc(self, *args)

    def __vjp_call__(self, *args):
        """(result, pullback) where pullback(ct) yields the cotangents of
        (layer, *args) — how indirect applies differentiate layer calls."""
        plan = call_fn.vjp_plan()
        result, records = plan.execute_forward((self, *args))
        return result, lambda ct: plan.run_pullback(records, ct)

    def __jvp_call__(self, primals, tangents, self_tangent):
        plan = call_fn.jvp_plan()
        return plan.execute([self, *primals], [self_tangent, *tangents])

    cls.__call__ = __call__
    cls.__vjp_call__ = __vjp_call__
    cls.__jvp_call__ = __jvp_call__
    cls.__is_layer__ = True
    return cls


@primitive("identity")
def identity(x):
    """The do-nothing activation (default for linear layers)."""
    return x


@identity.def_vjp
def _identity_vjp(x):
    return x, lambda ct: (ct,)


@identity.def_jvp
def _identity_jvp(primals, tangents):
    return primals[0], tangents[0]


def sequenced(x, layers):
    """Figure 6's ``sequenced(through:)``: thread ``x`` through ``layers``.

    Differentiable: the loop and list indexing lower through the AD
    transformation, and each layer application is an indirect apply whose
    pullback accumulates into the owning struct's tangent.
    """
    out = x
    for i in range(len(layers)):
        out = layers[i](out)
    return out
