"""Loss functions (thin differentiable wrappers over tensor primitives)."""

from __future__ import annotations

from repro.tensor import mse_loss, one_hot, softmax_cross_entropy

__all__ = ["softmax_cross_entropy", "mse_loss", "one_hot", "accuracy"]


def accuracy(logits, labels) -> float:
    """Fraction of rows where argmax(logits) == argmax(labels).

    An observation (materializes lazy tensors); used for metrics only."""
    import numpy as np

    predicted = np.argmax(logits.numpy(), axis=-1)
    expected = np.argmax(labels.numpy(), axis=-1)
    return float((predicted == expected).mean())
