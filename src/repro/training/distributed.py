"""Synchronous data-parallel training over a simulated pod (Table 1).

One representative replica executes the real numerics (every replica is
identical under synchronous SGD with averaged gradients over i.i.d.
shards); the pod simulator accounts per-step compute + ring all-reduce
time, from which global and per-core throughput follow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import value_and_gradient
from repro.optim.tree import tangent_byte_size
from repro.runtime.cluster import PodSimulator
from repro.runtime.costmodel import DeviceProfile
from repro.tensor import LazyTensorBarrier
from repro.tensor.device import Device


@dataclass
class DistributedStepStats:
    compute_time: float
    allreduce_time: float
    gradient_bytes: int

    @property
    def step_time(self) -> float:
        return self.compute_time + self.allreduce_time


class DataParallelTrainer:
    """Train one model replicated over ``n_cores`` simulated accelerators."""

    def __init__(
        self, device: Device, profile: DeviceProfile, n_cores: int
    ) -> None:
        self.device = device
        self.pod = PodSimulator(profile, n_cores)
        self.n_cores = n_cores

    def step(self, model, optimizer, loss_fn, x, y) -> DistributedStepStats:
        """One synchronous step on the pod; ``x``/``y`` are one replica's
        shard of the global batch."""
        device = self.device
        start = device.elapsed
        loss, gradient = value_and_gradient(loss_fn, model, x, y, wrt=0)
        optimizer.update(model, gradient)
        if device.kind == "lazy":
            LazyTensorBarrier(device)
        device.sync()
        compute_time = device.elapsed - start

        grad_bytes = tangent_byte_size(gradient)
        allreduce = self.pod.profile.allreduce_time(grad_bytes, self.n_cores)
        return DistributedStepStats(compute_time, allreduce, grad_bytes)

    def throughput(self, stats: DistributedStepStats, per_replica_batch: int):
        """(global examples/s, per-core examples/s) for a measured step."""
        total = self.n_cores * per_replica_batch / stats.step_time
        return total, total / self.n_cores
