"""Training library: loops with automatic barriers, distributed training."""

from repro.runtime.parallel import ParallelDataParallelTrainer, ParallelStepStats
from repro.training.distributed import DataParallelTrainer, DistributedStepStats
from repro.training.loop import History, StepResult, evaluate, train, train_step

__all__ = [
    "DataParallelTrainer",
    "DistributedStepStats",
    "ParallelDataParallelTrainer",
    "ParallelStepStats",
    "History",
    "StepResult",
    "evaluate",
    "train",
    "train_step",
]
