"""The training-loop library (Figure 7, industrialized).

``train`` runs the paper's canonical loop: take the gradient of the loss
with respect to the model, let the optimizer borrow the model uniquely and
update it in place, and — on lazy devices — call ``LazyTensorBarrier()``
automatically after the optimizer step, "on behalf of the user"
(Section 3.4), so the main training loop is never accidentally unrolled
into one gigantic trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core import value_and_gradient
from repro.nn.losses import accuracy as accuracy_metric
from repro.tensor import LazyTensorBarrier
from repro.tensor.device import Device


@dataclass
class StepResult:
    step: int
    loss: float


@dataclass
class History:
    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train_step(model, optimizer, loss_fn, x, y, device: Optional[Device] = None):
    """One step: gradient -> in-place optimizer update -> automatic barrier.

    Returns the (scalar) loss value.  ``loss_fn(model, x, y)`` must be a
    module-level function so it is lowered once, ahead of time.
    """
    loss, gradient = value_and_gradient(loss_fn, model, x, y, wrt=0)
    optimizer.update(model, gradient)
    device = device or getattr(x, "device", None)
    if device is not None and device.kind == "lazy":
        # The library cuts the trace after the optimizer update so the
        # next step records a fresh, cache-identical fragment.
        LazyTensorBarrier(device)
    return loss


def train(
    model,
    optimizer,
    dataset,
    loss_fn: Callable,
    epochs: int = 1,
    batch_size: int = 32,
    device: Optional[Device] = None,
    metrics: bool = False,
    callback: Optional[Callable[[StepResult], None]] = None,
    seed: int = 0,
    predict: Optional[Callable] = None,
) -> History:
    """Fit ``model`` on ``dataset``; returns per-step history.

    ``predict(model, x)`` overrides how metric logits are produced when the
    loss function preprocesses its inputs (default: ``model(x)``).
    """
    history = History()
    step = 0
    for epoch in range(epochs):
        for x, y in dataset.batches(batch_size, device=device, seed=seed + epoch):
            loss = train_step(model, optimizer, loss_fn, x, y, device)
            loss_value = float(loss)
            history.losses.append(loss_value)
            if metrics:
                logits = predict(model, x) if predict else model(x)
                history.accuracies.append(accuracy_metric(logits, y))
            if callback is not None:
                callback(StepResult(step, loss_value))
            step += 1
    return history


def evaluate(model, dataset, batch_size: int = 64, device=None) -> float:
    """Mean accuracy over the dataset."""
    total, count = 0.0, 0
    for x, y in dataset.batches(batch_size, device=device, shuffle=False):
        total += accuracy_metric(model(x), y)
        count += 1
    return total / max(count, 1)
