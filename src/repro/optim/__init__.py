"""Optimizers with in-place (``inout``) model updates."""

from repro.optim.accumulate import (
    GradientAccumulator,
    accumulate_gradient,
    microbatched_step,
)
from repro.optim.line_search import BacktrackingLineSearch, LineSearchResult
from repro.optim.optimizers import (
    SGD,
    Adam,
    LearningRateSchedule,
    RMSProp,
    functional_update,
)
from repro.optim.tree import (
    tangent_byte_size,
    tangent_norm_squared,
    tree_map,
    tree_map2,
    tree_reduce_sum,
)

__all__ = [
    "GradientAccumulator",
    "accumulate_gradient",
    "microbatched_step",
    "BacktrackingLineSearch",
    "LineSearchResult",
    "SGD",
    "Adam",
    "LearningRateSchedule",
    "RMSProp",
    "functional_update",
    "tangent_byte_size",
    "tangent_norm_squared",
    "tree_map",
    "tree_map2",
    "tree_reduce_sum",
]
