"""Gradient accumulation — the inout-formulated derivative surface.

Section 4.4 leaves "support for inout-formulated derivatives" as an open
question; this module provides the API-level form: pullback results
accumulate *into* a caller-owned mutable slot instead of materializing a
fresh tangent per call.  The practical payoff is microbatch gradient
accumulation: summing gradients over K microbatches without K live
tangent trees.
"""

from __future__ import annotations

from typing import Callable

from repro.core import value_and_gradient
from repro.core.differentiable import ZERO, tangent_add
from repro.optim.tree import tree_map


class GradientAccumulator:
    """A mutable tangent slot with in-place accumulation semantics.

    The slot starts at the symbolic ZERO, so accumulation never
    materializes zero storage (the Section 4.3 discipline)."""

    def __init__(self) -> None:
        self.value = ZERO
        self.count = 0

    def accumulate(self, tangent) -> None:
        """``self += tangent`` (borrowing the slot uniquely)."""
        self.value = tangent_add(self.value, tangent)
        self.count += 1

    def mean(self):
        """The averaged accumulated tangent."""
        if self.count == 0:
            return ZERO
        scale = 1.0 / self.count
        return tree_map(lambda leaf: leaf * scale, self.value)

    def reset(self) -> None:
        self.value = ZERO
        self.count = 0


def accumulate_gradient(
    loss_fn: Callable, model, accumulator: GradientAccumulator, *batch
) -> float:
    """One microbatch: compute the loss and accumulate its gradient into
    ``accumulator``; returns the loss value."""
    loss, gradient = value_and_gradient(loss_fn, model, *batch, wrt=0)
    accumulator.accumulate(gradient)
    return float(loss)


def microbatched_step(
    loss_fn: Callable, model, optimizer, microbatches
) -> float:
    """A full optimizer step from several microbatches: accumulate each
    microbatch's gradient into one slot, then update with the mean."""
    accumulator = GradientAccumulator()
    total = 0.0
    for batch in microbatches:
        total += accumulate_gradient(loss_fn, model, accumulator, *batch)
    optimizer.update(model, accumulator.mean())
    return total / max(accumulator.count, 1)
