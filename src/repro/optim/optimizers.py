"""Optimizers with mutable-value-semantics updates (Section 4.2).

Every optimizer's ``update`` has the shape the paper advocates::

    (inout Model, Model.TangentVector) -> Void

The model is borrowed uniquely and moved in place along the transformed
gradient, so at no point do two full copies of the parameters exist —
the "avoiding model copies" result.  ``functional_update`` provides the
``(Model, TangentVector) -> Model`` formulation for comparison; the
memory benchmark contrasts their peak usage.
"""

from __future__ import annotations

import math
from repro.core.differentiable import ZERO, move
from repro.optim.tree import tree_map, tree_map2


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.velocity = ZERO

    def update(self, model, gradient) -> None:
        """Borrow ``model`` uniquely and move it against the gradient."""
        if self.momentum != 0.0:
            mu = self.momentum
            self.velocity = tree_map2(
                lambda v, g: v * mu + g,
                self.velocity,
                gradient,
                a_zero=lambda v: v * mu,
                b_zero=lambda g: g,
            )
            step = self.velocity
        else:
            step = gradient
        lr = self.learning_rate
        model.move_(tree_map(lambda g: g * (-lr), step))


class Adam:
    """Adam (Kingma & Ba) over tangent trees."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.step_count = 0
        self.first_moment = ZERO
        self.second_moment = ZERO

    def update(self, model, gradient) -> None:
        self.step_count += 1
        b1, b2 = self.beta1, self.beta2
        self.first_moment = tree_map2(
            lambda m, g: m * b1 + g * (1 - b1),
            self.first_moment,
            gradient,
            a_zero=lambda m: m * b1,
            b_zero=lambda g: g * (1 - b1),
        )
        self.second_moment = tree_map2(
            lambda v, g: v * b2 + (g * g) * (1 - b2),
            self.second_moment,
            gradient,
            a_zero=lambda v: v * b2,
            b_zero=lambda g: (g * g) * (1 - b2),
        )
        correction1 = 1 - b1**self.step_count
        correction2 = 1 - b2**self.step_count
        lr = self.learning_rate
        eps = self.epsilon

        def step(m, v):
            m_hat = m * (1.0 / correction1)
            v_hat = v * (1.0 / correction2)
            return m_hat * (-lr) / (_sqrt(v_hat) + eps)

        delta = tree_map2(
            step,
            self.first_moment,
            self.second_moment,
            a_zero=lambda m: m * (-lr / correction1) / eps,
            b_zero=None,
        )
        model.move_(delta)


class RMSProp:
    """RMSProp with exponentially-decayed squared-gradient scaling."""

    def __init__(
        self, learning_rate: float = 1e-3, rho: float = 0.9, epsilon: float = 1e-8
    ) -> None:
        self.learning_rate = learning_rate
        self.rho = rho
        self.epsilon = epsilon
        self.mean_square = ZERO

    def update(self, model, gradient) -> None:
        rho = self.rho
        self.mean_square = tree_map2(
            lambda s, g: s * rho + (g * g) * (1 - rho),
            self.mean_square,
            gradient,
            a_zero=lambda s: s * rho,
            b_zero=lambda g: (g * g) * (1 - rho),
        )
        lr, eps = self.learning_rate, self.epsilon
        delta = tree_map2(
            lambda g, s: g * (-lr) / (_sqrt(s) + eps),
            gradient,
            self.mean_square,
            a_zero=None,
            b_zero=None,
        )
        model.move_(delta)


def _sqrt(leaf):
    if isinstance(leaf, (int, float)):
        return math.sqrt(leaf)
    return leaf.sqrt()


def functional_update(model, gradient, learning_rate: float):
    """The pure-functional training step: ``(Model, TV) -> Model``.

    Returns a *new* model; the old one stays alive at the call site, so
    both parameter sets are materialized simultaneously — the memory
    behaviour Section 4.2's ``inout`` formulation avoids."""
    return move(model, tree_map(lambda g: g * (-learning_rate), gradient))


class LearningRateSchedule:
    """Piecewise/decay learning-rate schedules for the training library."""

    def __init__(self, base: float, decay_steps: int = 0, decay_rate: float = 1.0):
        self.base = base
        self.decay_steps = decay_steps
        self.decay_rate = decay_rate

    def __call__(self, step: int) -> float:
        if self.decay_steps <= 0:
            return self.base
        return self.base * (self.decay_rate ** (step // self.decay_steps))
