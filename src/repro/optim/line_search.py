"""Backtracking line search (Section 5.1.3).

The mobile spline experiment optimizes with gradient descent whose step
size is chosen by backtracking line search under the Armijo condition —
derivatives decide the direction, repeated loss evaluation decides the
step.  Works on any Differentiable model over any Tensor backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import value_and_gradient
from repro.core.differentiable import move
from repro.optim.tree import tangent_norm_squared, tree_map


@dataclass
class LineSearchResult:
    loss_before: float
    loss_after: float
    step_size: float
    evaluations: int
    converged: bool


class BacktrackingLineSearch:
    """Armijo backtracking: shrink the step until sufficient decrease."""

    def __init__(
        self,
        initial_step: float = 1.0,
        shrink: float = 0.5,
        sufficient_decrease: float = 1e-4,
        max_evaluations: int = 30,
        tolerance: float = 1e-10,
    ) -> None:
        self.initial_step = initial_step
        self.shrink = shrink
        self.sufficient_decrease = sufficient_decrease
        self.max_evaluations = max_evaluations
        self.tolerance = tolerance

    def step(self, loss_fn: Callable, model) -> tuple[object, LineSearchResult]:
        """One descent step; returns (updated model, diagnostics)."""
        loss, gradient = value_and_gradient(loss_fn, model)
        loss = float(loss)
        grad_norm2 = tangent_norm_squared(gradient)
        if grad_norm2 <= self.tolerance:
            return model, LineSearchResult(loss, loss, 0.0, 0, True)

        t = self.initial_step
        evaluations = 0
        while evaluations < self.max_evaluations:
            candidate = move(model, tree_map(lambda g: g * (-t), gradient))
            candidate_loss = float(loss_fn(candidate))
            evaluations += 1
            if candidate_loss <= loss - self.sufficient_decrease * t * grad_norm2:
                return candidate, LineSearchResult(
                    loss, candidate_loss, t, evaluations, False
                )
            t *= self.shrink
        return model, LineSearchResult(loss, loss, 0.0, evaluations, True)

    def minimize(
        self,
        loss_fn: Callable,
        model,
        max_steps: int = 100,
        loss_tolerance: float = 1e-8,
    ) -> tuple[object, list[LineSearchResult]]:
        """Iterate to convergence; returns (model, per-step diagnostics)."""
        history: list[LineSearchResult] = []
        for _ in range(max_steps):
            model, result = self.step(loss_fn, model)
            history.append(result)
            if result.converged:
                break
            if abs(result.loss_before - result.loss_after) < loss_tolerance:
                break
        return model, history
