"""Elementwise operations over tangent trees.

Optimizer state (momenta, second moments) lives in the model's
``TangentVector`` space.  These helpers map scalar functions over the
leaves of nested TangentVectors / lists / tuples / tensors / floats,
treating the symbolic :data:`ZERO` as an absorbing zero leaf.
"""

from __future__ import annotations

from typing import Callable

from repro.core.differentiable import ZERO


def _is_struct_tangent(t) -> bool:
    return hasattr(t, "_fields") and hasattr(t, "_struct_type")


def tree_map(fn: Callable, tree):
    """Apply ``fn`` to every non-ZERO leaf; ZERO subtrees stay ZERO."""
    if tree is ZERO:
        return ZERO
    if _is_struct_tangent(tree):
        return type(tree)(
            **{name: tree_map(fn, getattr(tree, name)) for name in tree._fields}
        )
    if isinstance(tree, list):
        return [tree_map(fn, t) for t in tree]
    if isinstance(tree, tuple):
        return tuple(tree_map(fn, t) for t in tree)
    return fn(tree)


def tree_map2(fn: Callable, a, b, *, a_zero=None, b_zero=None):
    """Apply a binary ``fn`` leafwise over two congruent tangent trees.

    ``a_zero``/``b_zero`` supply the behaviour when one side is ZERO:
    callables receiving the other leaf, or None meaning the result is the
    ZERO-propagated ``fn`` applied with an absorbed zero (result ZERO only
    when *both* are ZERO and no handler is given).
    """
    if a is ZERO and b is ZERO:
        return ZERO
    if a is ZERO:
        return tree_map(b_zero, b) if b_zero is not None else ZERO
    if b is ZERO:
        return tree_map(a_zero, a) if a_zero is not None else ZERO
    if _is_struct_tangent(a) or _is_struct_tangent(b):
        cls = type(a) if _is_struct_tangent(a) else type(b)
        return cls(
            **{
                name: tree_map2(
                    fn,
                    getattr(a, name),
                    getattr(b, name),
                    a_zero=a_zero,
                    b_zero=b_zero,
                )
                for name in cls._fields
            }
        )
    if isinstance(a, list) or isinstance(b, list):
        return [
            tree_map2(fn, x, y, a_zero=a_zero, b_zero=b_zero)
            for x, y in zip(a, b, strict=True)
        ]
    if isinstance(a, tuple) or isinstance(b, tuple):
        return tuple(
            tree_map2(fn, x, y, a_zero=a_zero, b_zero=b_zero)
            for x, y in zip(a, b, strict=True)
        )
    return fn(a, b)


def tree_reduce_sum(fn: Callable, tree) -> float:
    """Sum ``fn(leaf)`` (a float) over every non-ZERO leaf."""
    if tree is ZERO:
        return 0.0
    if _is_struct_tangent(tree):
        return sum(
            tree_reduce_sum(fn, getattr(tree, name)) for name in tree._fields
        )
    if isinstance(tree, (list, tuple)):
        return sum(tree_reduce_sum(fn, t) for t in tree)
    return fn(tree)


def _leaf_sumsq(leaf) -> float:
    if isinstance(leaf, (int, float)):
        return float(leaf) ** 2
    return float((leaf * leaf).sum())


def tangent_norm_squared(tree) -> float:
    """The squared l2 norm of a tangent tree (observes lazy tensors)."""
    return tree_reduce_sum(_leaf_sumsq, tree)


def tangent_byte_size(tree) -> int:
    """Approximate storage footprint of a tangent tree (f32 leaves)."""

    def leaf_bytes(leaf) -> float:
        if isinstance(leaf, (int, float)):
            return 4
        size = getattr(leaf, "size", 1)
        return 4 * size

    return int(tree_reduce_sum(leaf_bytes, tree))


def tangent_leaf_sizes(tree) -> list[int]:
    """Per-leaf f32 byte sizes in tree traversal order.

    The traversal order matches :func:`tree_map`, which walks struct
    fields in declaration order — the same order gradients for a model's
    parameters are produced, so the reversed list approximates backward
    production order for all-reduce bucketing.
    """
    sizes: list[int] = []

    def visit(leaf):
        if isinstance(leaf, (int, float)):
            sizes.append(4)
        else:
            sizes.append(4 * int(getattr(leaf, "size", 1)))
        return leaf

    tree_map(visit, tree)
    return sizes
