"""Run the static-analysis toolchain from the command line.

Usage::

    python -m repro.analysis --self-check        # verify everything
    python -m repro.analysis --self-check -q     # summary only on failure
    python -m repro.analysis --ownership sgd_update
    python -m repro.analysis --ownership mypkg.mymod:myfn --style functional
    python -m repro.analysis --trace lr_schedule_storm
    python -m repro.analysis --trace all
    python -m repro.analysis --derivatives bad_square
    python -m repro.analysis --derivatives all
    python -m repro.analysis --lint mypkg.mymod:myfn
    python -m repro.analysis --concurrency runtime
    python -m repro.analysis --concurrency race_unlocked_counter
    python -m repro.analysis --concurrency all
    python -m repro.analysis --memory mlp_chain_reuse
    python -m repro.analysis --memory all
    python -m repro.analysis --precision softmax_unstabilized
    python -m repro.analysis --precision all --json
    python -m repro.analysis --codegen mlp_chain
    python -m repro.analysis --codegen all
    python -m repro.analysis --list                # the dispatch table

``--ownership`` resolves its argument against the bundled model corpus
(:mod:`repro.analysis.ownership.models`) first, then as a dotted
``module:function`` (or ``module.function``) path; the function is lowered
to SIL and printed with per-instruction ownership annotations.

``--trace`` runs the static trace-stability analysis over one program
from the seeded corpus (:mod:`repro.analysis.tracing.models`) — or every
program with ``all`` — printing canonical cache keys, retrace-storm /
growth diagnostics, and the static-vs-dynamic cross-check.  The exit
status is 0 only when every analyzed program matches its expected
verdict and every static cache prediction matches the runtime.

``--derivatives`` runs the static derivative-correctness verifier
(:mod:`repro.analysis.derivatives`) over one model from the seeded
corpus — or every model with ``all``, or any ``module:function`` —
printing pullback linearity verdicts, JVP/VJP transpose consistency,
record typing, capture liveness, and the numeric cross-checks.

``--lint`` lowers a function and prints the batched differentiability
lint (including the custom-derivative contract checks) without running
the full verifier.

``--concurrency`` runs the static concurrency-safety analysis
(:mod:`repro.analysis.concurrency`): shared-state inventory against the
``guarded_by`` registry, lockset race detection, the lock-order deadlock
graph with its dynamic witness cross-check, and replica-merge
determinism verification.  ``runtime`` analyzes the real parallel
engine, a corpus model name analyzes that seeded hazard, ``corpus``
analyzes every model, and ``all`` runs runtime + corpus; exit status 0
iff the runtime is clean, every seeded hazard is caught, and every
static-vs-dynamic cross-check agrees.

``--memory`` runs the static memory planner
(:mod:`repro.analysis.memory`) over one program from the seeded corpus —
or every program with ``all`` — printing liveness-based buffer plans,
peak-memory certificates with per-pass attribution, budget/remat
fix-its, and the certified-vs-observed cross-check (the bound must hold
on every trace and be exact on straight-line traces).

``--precision`` runs the static precision-safety analysis
(:mod:`repro.analysis.precision`) over one program from the seeded
corpus — or every program with ``all`` — printing the autocast plan,
dtype-flow verdicts under the naive narrow-everything lowering, the
certified ⊇ observed interval cross-check against the dynamic oracle,
output-accuracy metrics for the naive and planned lowerings, and the
memory planner's certified peak before and after narrowing.

``--codegen`` runs the translation validator
(:mod:`repro.analysis.equivalence`) over one program from the seeded
corpus — or every program with ``all`` — emitting each unique trace's
flat-NumPy step function, statically certifying it equivalent to its HLO
schedule, cross-checking the certificate dynamically (interpreted ≡
generated, bit for bit), and requiring every seeded miscompile to be
rejected with a located diagnostic.

``--list`` prints the dispatch table itself: every subsystem flag, the
self-check sweep it backs, and the bundled program/model names its
argument resolves against.  ``--json`` switches any subcommand's output
to machine-readable JSON (``--lint`` excepted).

Each subsystem is one row of the ``SUBSYSTEMS`` dispatch table below:
a flag, its argument metavar/help, the self-check sweep number, the
bundled-program enumerator, and the runner the parsed argument is
handed to.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Subsystem:
    """One analysis subsystem's CLI surface: flag + sweep + runner."""

    flag: str
    metavar: str
    help: str
    run: Callable[[argparse.Namespace], int]
    #: Which self-check sweep this subsystem backs (see
    #: :mod:`repro.analysis.selfcheck`'s module docstring).
    sweep: int = 0
    #: Enumerates the bundled program/model names the argument resolves
    #: against (``None`` when the flag takes arbitrary ``module:function``
    #: specs only).  Deferred behind a callable so ``--list`` is the only
    #: code path paying for the corpus imports.
    programs: Callable[[], list[str]] | None = None

    @property
    def dest(self) -> str:
        return self.flag.lstrip("-").replace("-", "_")


def _ownership_names() -> list[str]:
    return sorted(_ownership_corpus())


def _trace_names() -> list[str]:
    from repro.analysis.tracing.models import PROGRAMS

    return sorted(PROGRAMS)


def _derivative_names() -> list[str]:
    from repro.analysis.derivatives.models import MODELS

    return sorted(MODELS)


def _concurrency_names() -> list[str]:
    from repro.analysis.concurrency.models import CORPUS_MODELS

    return ["runtime", "corpus"] + sorted(m.name for m in CORPUS_MODELS)


def _memory_names() -> list[str]:
    from repro.analysis.memory import CORPUS

    return sorted(p.name for p in CORPUS)


def _precision_names() -> list[str]:
    from repro.analysis.precision import CORPUS

    return sorted(p.name for p in CORPUS)


def _codegen_names() -> list[str]:
    from repro.analysis.equivalence import CORPUS

    return sorted(p.name for p in CORPUS)


SUBSYSTEMS: tuple[Subsystem, ...] = (
    Subsystem(
        flag="--ownership",
        metavar="FN",
        help=(
            "lower FN (a bundled model name, or module:function) to SIL and "
            "print it with per-instruction ownership annotations: borrow "
            "verdicts, copy-materialization labels, and pullback costs"
        ),
        run=lambda args: _run_ownership(args.ownership, args.style, args.json),
        sweep=4,
        programs=_ownership_names,
    ),
    Subsystem(
        flag="--trace",
        metavar="PROGRAM",
        help=(
            "run the static trace-stability analysis over PROGRAM (a "
            "seeded corpus name, or 'all'): canonical cache keys, "
            "retrace-storm and growth diagnostics, and the exact "
            "static-vs-dynamic cache cross-check"
        ),
        run=lambda args: _run_trace(args.trace, args.quiet, args.json),
        sweep=5,
        programs=_trace_names,
    ),
    Subsystem(
        flag="--derivatives",
        metavar="FN",
        help=(
            "run the static derivative verifier over FN (a seeded corpus "
            "name, 'all', or module:function): pullback linearity, JVP/VJP "
            "transpose consistency, record typing, capture liveness, and "
            "the seeded numeric cross-checks"
        ),
        run=lambda args: _run_derivatives(args.derivatives, args.quiet, args.json),
        sweep=6,
        programs=_derivative_names,
    ),
    Subsystem(
        flag="--lint",
        metavar="FN",
        help=(
            "lower FN (module:function) and print the batched "
            "differentiability lint, including custom-derivative contract "
            "checks, without synthesizing a plan"
        ),
        run=lambda args: _run_lint(args.lint),
        sweep=3,
    ),
    Subsystem(
        flag="--concurrency",
        metavar="TARGET",
        help=(
            "run the concurrency-safety analysis over TARGET ('runtime', "
            "'corpus', a seeded corpus model name, or 'all'): shared-state "
            "inventory, lockset race detection, lock-order deadlock graph "
            "with dynamic witness cross-check, and merge-determinism "
            "verification"
        ),
        run=lambda args: _run_concurrency(
            args.concurrency, args.quiet, not args.no_witness, args.json
        ),
        sweep=7,
        programs=_concurrency_names,
    ),
    Subsystem(
        flag="--memory",
        metavar="PROGRAM",
        help=(
            "run the static memory planner over PROGRAM (a seeded corpus "
            "name, or 'all'): liveness-based buffer plans with in-place "
            "donations, peak-memory certificates with per-pass "
            "attribution, budget fix-its, and the certified-vs-observed "
            "cross-check"
        ),
        run=lambda args: _run_memory(args.memory, args.quiet, args.json),
        sweep=8,
        programs=_memory_names,
    ),
    Subsystem(
        flag="--precision",
        metavar="PROGRAM",
        help=(
            "run the static precision-safety analysis over PROGRAM (a "
            "seeded corpus name, or 'all'): interval ranges, dtype-flow "
            "hazard verdicts under the naive narrow lowering, the "
            "verified autocast plan, the certified-contains-observed "
            "oracle cross-check, and the peak-memory delta of narrowing"
        ),
        run=lambda args: _run_precision(args.precision, args.quiet, args.json),
        sweep=9,
        programs=_precision_names,
    ),
    Subsystem(
        flag="--codegen",
        metavar="PROGRAM",
        help=(
            "run the translation validator over PROGRAM (a seeded corpus "
            "name, or 'all'): emit the flat-NumPy step function for every "
            "unique trace, certify it equivalent to its HLO schedule, "
            "cross-check dynamically (interpreted == generated, bit for "
            "bit), and require seeded miscompiles to be rejected with "
            "located diagnostics"
        ),
        run=lambda args: _run_codegen(args.codegen, args.quiet, args.json),
        sweep=10,
        programs=_codegen_names,
    ),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Cross-layer static verification: typed SIL checking, HLO "
            "module verification, per-pass invariant attribution, and the "
            "differentiability linter."
        ),
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help=(
            "run every verifier over every registered primitive's "
            "synthesized JVP/VJP and over the HLO modules produced by the "
            "LeNet-5 trace workload"
        ),
    )
    for subsystem in SUBSYSTEMS:
        parser.add_argument(
            subsystem.flag, metavar=subsystem.metavar, help=subsystem.help
        )
    parser.add_argument(
        "--list",
        action="store_true",
        help=(
            "print the subsystem dispatch table: every flag, the "
            "self-check sweep it backs, and its bundled program names"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help=(
            "emit machine-readable JSON instead of rendered text "
            "(supported by every subcommand except --lint)"
        ),
    )
    parser.add_argument(
        "--no-witness",
        action="store_true",
        help="skip the dynamic lock-witness runs (static analysis only)",
    )
    parser.add_argument(
        "--style",
        choices=("mvs", "functional"),
        default="mvs",
        help="cotangent style for the pullback cost analyzer (default: mvs)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print the report only on failure"
    )
    args = parser.parse_args(argv)

    if args.json and args.lint:
        parser.error("--json is not supported with --lint")

    if args.list:
        return _run_list(args.json)

    for subsystem in SUBSYSTEMS:
        if getattr(args, subsystem.dest):
            return subsystem.run(args)

    if not args.self_check:
        parser.print_help()
        return 2

    from repro.analysis.selfcheck import self_check

    report = self_check()
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    elif not args.quiet or not report.ok:
        print(report.summary())
    return 0 if report.ok else 1


def _run_list(as_json: bool) -> int:
    rows = [
        {
            "flag": s.flag,
            "metavar": s.metavar,
            "sweep": s.sweep,
            "programs": s.programs() if s.programs is not None else [],
        }
        for s in SUBSYSTEMS
    ]
    if as_json:
        print(json.dumps(rows, indent=2))
        return 0
    width = max(len(f"{r['flag']} {r['metavar']}") for r in rows)
    for row in rows:
        head = f"{row['flag']} {row['metavar']}"
        print(f"{head:<{width}}  sweep {row['sweep']}")
        if row["programs"]:
            print(f"{'':<{width}}  programs: " + ", ".join(row["programs"]) + ", all")
        else:
            print(f"{'':<{width}}  programs: (module:function specs)")
    return 0


def _ownership_corpus() -> dict:
    from repro.analysis.ownership import models

    corpus = dict(models.OPTIMIZER_MODELS)
    for fn in models.CLEAN_SUITE:
        corpus.setdefault(fn.__name__, fn)
    corpus.setdefault("copy_then_write", models.copy_then_write)
    corpus.setdefault("array_subscript", models.array_subscript)
    for fn, _verdict in models.VIOLATION_SUITE:
        corpus.setdefault(fn.__name__, fn)
    return corpus


def _resolve_function(spec: str):
    corpus = _ownership_corpus()
    if spec in corpus:
        return corpus[spec]

    if ":" in spec:
        module_name, _, attr = spec.partition(":")
    else:
        module_name, _, attr = spec.rpartition(".")
    if not module_name:
        raise SystemExit(
            f"error: unknown function {spec!r}; bundled names: "
            + ", ".join(sorted(corpus))
        )
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def _diag_json(diag) -> dict:
    loc = getattr(diag, "location", None)
    return {
        "severity": diag.severity,
        "message": diag.message,
        "file": loc.filename if loc is not None else None,
        "line": loc.line if loc is not None else None,
    }


def _run_trace(spec: str, quiet: bool, as_json: bool = False) -> int:
    from repro.analysis.tracing.models import PROGRAMS
    from repro.analysis.tracing.report import analyze_trace_program

    if spec == "all":
        programs = list(PROGRAMS.values())
    elif spec in PROGRAMS:
        programs = [PROGRAMS[spec]]
    else:
        raise SystemExit(
            f"error: unknown trace program {spec!r}; bundled names: "
            + ", ".join(sorted(PROGRAMS))
            + ", all"
        )

    failures = 0
    json_reports = []
    for program in programs:
        report = analyze_trace_program(program)
        verdict_ok = report.verdicts() == {program.expect}
        ok = verdict_ok and report.cross_check_ok
        if not ok:
            failures += 1
        if as_json:
            json_reports.append(
                {
                    "program": program.name,
                    "expect": program.expect,
                    "verdicts": sorted(report.verdicts()),
                    "verdict_matches": verdict_ok,
                    "cross_check_ok": report.cross_check_ok,
                    "ok": ok,
                    "predicted_compiles": report.predicted_compiles,
                    "dynamic_compiles": report.dynamic_compiles,
                    "predicted_cache_hits": report.predicted_cache_hits,
                    "dynamic_cache_hits": report.dynamic_cache_hits,
                    "diagnostics": [_diag_json(d) for d in report.diagnostics],
                }
            )
        elif not quiet or not ok:
            print(report.render())
            print(
                f"expected verdict:        {program.expect} "
                f"({'as predicted' if verdict_ok else 'MISPREDICTED'})"
            )
            print()
    if as_json:
        print(json.dumps(json_reports, indent=2))
    else:
        print(
            f"{len(programs)} program(s) analyzed, {failures} failure(s); "
            "static cache predictions "
            + ("all match the runtime" if failures == 0 else "DIVERGE from the runtime")
        )
    return 0 if failures == 0 else 1


def _run_derivatives(spec: str, quiet: bool, as_json: bool = False) -> int:
    from repro.analysis.derivatives.models import MODELS
    from repro.analysis.derivatives.report import (
        analyze_derivative_model,
        verify_derivatives,
    )

    if spec == "all":
        reports = [
            (model.expect, analyze_derivative_model(model))
            for model in MODELS.values()
        ]
    elif spec in MODELS:
        model = MODELS[spec]
        reports = [(model.expect, analyze_derivative_model(model))]
    else:
        try:
            pyfunc = _resolve_function(spec)
        except SystemExit:
            raise SystemExit(
                f"error: unknown derivative model {spec!r}; bundled names: "
                + ", ".join(sorted(MODELS))
                + ", all, or module:function"
            ) from None
        reports = [(None, verify_derivatives(pyfunc))]

    failures = 0
    json_reports = []
    for expected, report in reports:
        verdict_ok = expected is None or expected in report.verdicts()
        ok = verdict_ok and report.cross_check_ok
        if not ok:
            failures += 1
        if as_json:
            json_reports.append(
                {
                    "function": report.func_name,
                    "expect": expected,
                    "verdicts": sorted(report.verdicts()),
                    "verdict_matches": verdict_ok,
                    "cross_check_ok": report.cross_check_ok,
                    "ok": ok,
                    "diagnostics": [_diag_json(d) for d in report.diagnostics()],
                }
            )
        elif not quiet or not ok:
            print(report.render())
            if len(reports) == 1:
                annotated = report.annotated_sil()
                if annotated is not None:
                    print()
                    print(annotated)
            if expected is not None:
                print(
                    f"expected verdict: {expected} "
                    f"({'as predicted' if verdict_ok else 'MISPREDICTED'})"
                )
            print()
    if as_json:
        print(json.dumps(json_reports, indent=2))
    else:
        print(
            f"{len(reports)} function(s) verified, {failures} failure(s); "
            "static verdicts "
            + (
                "all agree with the numeric probes"
                if failures == 0
                else "DISAGREE with the numeric probes"
            )
        )
    return 0 if failures == 0 else 1


def _run_concurrency(
    spec: str, quiet: bool, witness: bool, as_json: bool = False
) -> int:
    from repro.analysis.concurrency.models import CORPUS_MODELS
    from repro.analysis.concurrency.report import (
        analyze_corpus,
        analyze_corpus_model,
        analyze_runtime,
    )

    model_names = {m.name: m for m in CORPUS_MODELS}
    failures = 0
    payload: dict = {}

    def show(text: str, ok: bool) -> None:
        if as_json:
            return
        if not quiet or not ok:
            print(text)
            print()

    def model_json(result) -> dict:
        return {
            "model": result.model.name,
            "expect": result.model.expect,
            "verdicts": sorted(result.verdicts),
            "matches": result.matches,
            "cross_check_ok": result.cross_check_ok,
            "diagnostics": [_diag_json(d) for d in result.diagnostics],
        }

    if spec in ("runtime", "all"):
        report = analyze_runtime(run_witness=witness)
        if not report.ok:
            failures += 1
        show(report.render(), report.ok)
        if as_json:
            payload["runtime"] = {
                "ok": report.ok,
                "verdicts": sorted(report.verdicts()),
                "cross_check_ok": report.cross_check_ok,
                "unregistered_fields": [
                    f.qualname for f in report.inventory.unregistered
                ],
                "diagnostics": [_diag_json(d) for d in report.diagnostics()],
            }

    if spec in ("corpus", "all"):
        corpus = analyze_corpus(run_witness=witness)
        failures += sum(not r.matches for r in corpus.results)
        show(corpus.render(), corpus.ok)
        if as_json:
            payload["corpus"] = [model_json(r) for r in corpus.results]
    elif spec in model_names:
        result = analyze_corpus_model(model_names[spec])
        if not result.matches:
            failures += 1
        if as_json:
            payload["corpus"] = [model_json(result)]
        else:
            print(result.render())
            for diag in result.diagnostics:
                print(f"    {diag.severity}: {diag.message} "
                      f"[{diag.location.filename}:{diag.location.line}]")
    elif spec not in ("runtime", "corpus", "all"):
        raise SystemExit(
            f"error: unknown concurrency target {spec!r}; use 'runtime', "
            "'corpus', 'all', or a corpus model: "
            + ", ".join(sorted(model_names))
        )

    if as_json:
        payload["failures"] = failures
        payload["ok"] = failures == 0
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"concurrency analysis: {failures} failure(s); "
            + (
                "locksets, lock order, and merges all verified"
                if failures == 0
                else "hazards or cross-check divergences found"
            )
        )
    return 0 if failures == 0 else 1


def _run_memory(spec: str, quiet: bool, as_json: bool = False) -> int:
    from repro.analysis.memory import CORPUS, analyze_memory_program

    names = {p.name: p for p in CORPUS}
    if spec == "all":
        programs = list(CORPUS)
    elif spec in names:
        programs = [names[spec]]
    else:
        raise SystemExit(
            f"error: unknown memory program {spec!r}; bundled names: "
            + ", ".join(sorted(names))
            + ", all"
        )

    failures = 0
    json_reports = []
    for program in programs:
        report = analyze_memory_program(program)
        verdict_ok = report.verdicts() == {program.expect}
        ok = verdict_ok and report.cross_check_ok
        if not ok:
            failures += 1
        if as_json:
            json_reports.append(
                {
                    "program": program.name,
                    "expect": program.expect,
                    "verdicts": sorted(report.verdicts()),
                    "verdict_matches": verdict_ok,
                    "cross_check_ok": report.cross_check_ok,
                    "ok": ok,
                    "reuse_factor": report.reuse_factor,
                    "checks": [
                        {
                            "trace_key": c.trace_key,
                            "certified_peak_bytes": (
                                c.certificate.certified_peak_bytes
                            ),
                            "observed_peak_bytes": c.observed_peak_bytes,
                            "sound": c.sound,
                            "exact": c.exact,
                            "planned_pool_bytes": (
                                c.certificate.planned_pool_bytes
                            ),
                            "naive_bytes": c.certificate.naive_bytes,
                            "buffers_reused": c.plan.buffers_reused,
                            "diagnostics": [
                                _diag_json(d) for d in c.diagnostics
                            ],
                        }
                        for c in report.checks
                    ],
                }
            )
        elif not quiet or not ok:
            print(report.render())
            print(
                f"  expected verdict: {program.expect} "
                f"({'as predicted' if verdict_ok else 'MISPREDICTED'})"
            )
            print()
    if as_json:
        print(json.dumps(json_reports, indent=2))
    else:
        print(
            f"{len(programs)} program(s) certified, {failures} failure(s); "
            "static peak bounds "
            + (
                "hold against the dynamic tracker"
                if failures == 0
                else "DIVERGE from the dynamic tracker"
            )
        )
    return 0 if failures == 0 else 1


def _run_precision(spec: str, quiet: bool, as_json: bool) -> int:
    from repro.analysis.precision import CORPUS, analyze_precision_program

    names = {p.name: p for p in CORPUS}
    if spec == "all":
        programs = list(CORPUS)
    elif spec in names:
        programs = [names[spec]]
    else:
        raise SystemExit(
            f"error: unknown precision program {spec!r}; bundled names: "
            + ", ".join(sorted(names))
            + ", all"
        )

    failures = 0
    json_reports = []
    for program in programs:
        report = analyze_precision_program(program)
        ok = report.verdict_matches and report.cross_check_ok
        if not ok:
            failures += 1
        if as_json:
            json_reports.append(report.to_json())
        elif not quiet or not ok:
            print(report.render())
            print(
                f"  expected verdict: {program.expect} "
                f"({'as predicted' if report.verdict_matches else 'MISPREDICTED'})"
            )
            print()
    if as_json:
        print(json.dumps(json_reports, indent=2))
    else:
        print(
            f"{len(programs)} program(s) audited, {failures} failure(s); "
            "certified intervals "
            + (
                "contain every observed value"
                if failures == 0
                else "VIOLATED by the dynamic oracle"
            )
        )
    return 0 if failures == 0 else 1


def _run_lint(spec: str) -> int:
    from repro.core.lint import lint_function
    from repro.sil.frontend import lower_function

    pyfunc = _resolve_function(spec)
    sil_func = getattr(pyfunc, "__sil_function__", None) or lower_function(pyfunc)
    diagnostics = lint_function(
        sil_func, tuple(range(len(sil_func.params))), probe_custom_rules=True
    )
    for diag in diagnostics:
        print(diag)
    errors = sum(1 for d in diagnostics if d.is_error)
    print(
        f"@{sil_func.name}: {len(diagnostics)} diagnostic(s), {errors} error(s)"
    )
    return 0 if errors == 0 else 1


def _run_ownership(spec: str, style: str, as_json: bool = False) -> int:
    from repro.analysis.ownership import analyze_ownership
    from repro.sil.frontend import lower_function

    pyfunc = _resolve_function(spec)
    sil_func = getattr(pyfunc, "__sil_function__", None) or lower_function(pyfunc)
    report = analyze_ownership(sil_func, style=style)
    if as_json:
        print(
            json.dumps(
                {
                    "function": sil_func.name,
                    "ok": report.ok,
                    "mutation_sites": report.copies.mutation_sites,
                    "must_copy": report.copies.must_copy,
                    "may_copy": report.copies.may_copy,
                    "in_place": report.copies.in_place,
                    "diagnostics": [_diag_json(d) for d in report.diagnostics],
                },
                indent=2,
            )
        )
    else:
        print(report.render())
    return 0 if report.ok else 1


def _run_codegen(spec: str, quiet: bool, as_json: bool = False) -> int:
    from repro.analysis.equivalence import CORPUS, analyze_equivalence_program

    names = {p.name: p for p in CORPUS}
    if spec == "all":
        programs = list(CORPUS)
    elif spec in names:
        programs = [names[spec]]
    else:
        raise SystemExit(
            f"error: unknown equivalence program {spec!r}; bundled names: "
            + ", ".join(sorted(names))
            + ", all"
        )

    failures = 0
    json_reports = []
    for program in programs:
        report = analyze_equivalence_program(program)
        verdict_ok = report.verdicts() == {program.expect}
        ok = verdict_ok and report.cross_check_ok
        if not ok:
            failures += 1
        if as_json:
            json_reports.append(
                {
                    "program": program.name,
                    "expect": program.expect,
                    "verdicts": sorted(report.verdicts()),
                    "verdict_matches": verdict_ok,
                    "cross_check_ok": report.cross_check_ok,
                    "ok": ok,
                    "checks": [
                        {
                            "trace_key": c.trace_key,
                            "certified": c.result.certified,
                            "checked_values": c.result.checked_values,
                            "term_count": c.result.term_count,
                            "step_fn_lines": c.generated.line_count,
                            "bit_identical": c.bit_identical,
                            "baseline_certified": (
                                None
                                if c.baseline is None
                                else c.baseline.certified
                            ),
                            "diagnostics": [
                                _diag_json(d) for d in c.diagnostics
                            ],
                        }
                        for c in report.checks
                    ],
                }
            )
        elif not quiet or not ok:
            print(report.render())
            print(
                f"  expected verdict: {program.expect} "
                f"({'as predicted' if verdict_ok else 'MISPREDICTED'})"
            )
            print()
    if as_json:
        print(json.dumps(json_reports, indent=2))
    else:
        print(
            f"{len(programs)} program(s) validated, {failures} failure(s); "
            "certified translations "
            + (
                "run bit-identically to the interpreter"
                if failures == 0
                else "DIVERGE from the interpreter"
            )
        )
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
