"""Run the static-analysis toolchain from the command line.

Usage::

    python -m repro.analysis --self-check        # verify everything
    python -m repro.analysis --self-check -q     # summary only on failure
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Cross-layer static verification: typed SIL checking, HLO "
            "module verification, per-pass invariant attribution, and the "
            "differentiability linter."
        ),
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help=(
            "run every verifier over every registered primitive's "
            "synthesized JVP/VJP and over the HLO modules produced by the "
            "LeNet-5 trace workload"
        ),
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print the report only on failure"
    )
    args = parser.parse_args(argv)

    if not args.self_check:
        parser.print_help()
        return 2

    from repro.analysis.selfcheck import self_check

    report = self_check()
    if not args.quiet or not report.ok:
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
