"""The translation-validation corpus: step programs with known verdicts.

Mirrors the other analysis corpora (:mod:`repro.analysis.memory.models`,
:mod:`repro.analysis.tracing.models`): a *clean* suite whose every
lowered module the validator must certify — with the dynamic cross-check
(interpreted ≡ generated, bit for bit) passing and **zero** diagnostics —
plus one seeded-miscompile entry per transform in
:mod:`repro.analysis.equivalence.miscompiles`, each recording the verdict
the validator must produce when the transform is applied to the emitted
source.

``narrow`` entries re-dtype the lowered module with the PR-8 naive policy
before codegen, so the emitted source exercises the convert /
narrow-accumulator / f32-accumulation paths the dtype-sensitive
miscompiles need.  Each program builds its own device; ``build`` returns
``(device, step_fn)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.tensor import LazyTensorBarrier, Tensor, lazy_device


@dataclass(frozen=True)
class EquivalenceProgram:
    """One corpus entry: a step program plus the expected verdict."""

    name: str
    description: str
    #: "clean" or a miscompile verdict ("wrong-broadcast", "stale-reuse",
    #: "dropped-convert", "reordered-op", "accum-elision").
    expect: str
    steps: int
    build: Callable[[], tuple]
    #: Narrow the lowered module to this dtype (PR-8 naive policy) before
    #: codegen; None keeps the traced f32 module.
    narrow: Optional[str] = None
    #: Name of the miscompile transform applied to the emitted source
    #: (hazard entries only; the untransformed source must still certify).
    miscompile: Optional[str] = None


# ---------------------------------------------------------------------------
# Clean corpus.
# ---------------------------------------------------------------------------


def _build_mlp_chain():
    """Three dot/relu layers: the canonical buffer-reuse emission (two
    pool buffers -> two rebound Python variables)."""
    device = lazy_device()
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 16)).astype(np.float32), device)
    ws = [
        Tensor(rng.standard_normal((16, 16)).astype(np.float32), device)
        for _ in range(3)
    ]

    def step_fn(step: int) -> None:
        h = x
        for w in ws:
            h = (h @ w).relu()
        LazyTensorBarrier(device)

    return device, step_fn


def _build_affine_relu_fusion():
    """dot + broadcast bias + relu: the fused region is inlined flat, and
    the broadcast line is the wrong-broadcast miscompile's target."""
    device = lazy_device()
    rng = np.random.default_rng(1)
    x = Tensor(rng.standard_normal((4, 6)).astype(np.float32), device)
    w = Tensor(rng.standard_normal((6, 3)).astype(np.float32), device)
    b = Tensor(np.linspace(-1.0, 1.0, 3).astype(np.float32), device)

    def step_fn(step: int) -> None:
        y = ((x @ w) + b).relu()  # noqa: F841  (materialized by the barrier)
        LazyTensorBarrier(device)

    return device, step_fn


def _build_diamond_tuple_outputs():
    """Two materialized outputs -> tuple root; the return statement must
    alias both certified values."""
    device = lazy_device()
    rng = np.random.default_rng(2)
    x = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w1 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w2 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        u = x @ w1
        v = (u * u) @ w2  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_sgd_fused_update():
    """A whole SGD update in one fusion: subtract gives the reordered-op
    miscompile a non-commutative target."""
    device = lazy_device()
    state = {"w": Tensor(np.linspace(0.5, 2.0, 32).astype(np.float32), device)}

    def step_fn(step: int) -> None:
        state["w"] = state["w"] - state["w"] * 0.1
        LazyTensorBarrier(device)

    return device, step_fn


def _build_residual_combine():
    """An activation held across two matmuls and recombined: rich liveness
    overlap, the stale-reuse miscompile's natural victim."""
    device = lazy_device()
    rng = np.random.default_rng(5)
    x = Tensor(rng.standard_normal((16, 16)).astype(np.float32), device)
    w1 = Tensor(rng.standard_normal((16, 16)).astype(np.float32), device)
    w2 = Tensor(rng.standard_normal((16, 16)).astype(np.float32), device)
    w3 = Tensor(rng.standard_normal((16, 16)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        h1 = x @ w1
        h2 = h1 @ w2
        h3 = h2 @ w3
        out = h1 * h3  # noqa: F841  (h1 carried across the chain)
        LazyTensorBarrier(device)

    return device, step_fn


def _build_reshape_pipeline():
    """reshape + transpose feeding a dot: the view/copy-ambiguous ops the
    emitter must still name and sequence correctly."""
    device = lazy_device()
    rng = np.random.default_rng(3)
    x = Tensor(rng.standard_normal((4, 4)).astype(np.float32), device)
    w = Tensor(rng.standard_normal((2, 4)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        y = x.reshaped((8, 2)) @ w  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_narrow_mlp():
    """dot / relu / mean under the naive f16 policy: converts at every
    dtype boundary, f32-accumulated matmuls, and a narrow-accumulator
    reduce — the dtype-sensitive emission paths."""
    device = lazy_device()
    rng = np.random.default_rng(6)
    x = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w1 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w2 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        h = (x @ w1).relu()
        y = (h @ w2).mean()  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_lenet_forward():
    """The Table 2/3 workload trace: a full LeNet forward (conv, pool,
    flatten-reshape, dense) certified end to end."""
    from repro.nn import LeNet

    device = lazy_device()
    model = LeNet.create(device, seed=0)
    rng = np.random.default_rng(4)
    xv = rng.standard_normal((2, 28, 28, 1)).astype(np.float32)

    def step_fn(step: int) -> None:
        logits = model(Tensor(xv, device))  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


CORPUS: tuple[EquivalenceProgram, ...] = (
    EquivalenceProgram(
        name="mlp_chain",
        description="three dot/relu layers; buffer reuse becomes rebinding",
        expect="clean",
        steps=2,
        build=_build_mlp_chain,
    ),
    EquivalenceProgram(
        name="affine_relu_fusion",
        description="dot + broadcast bias + relu; fusion inlined flat",
        expect="clean",
        steps=2,
        build=_build_affine_relu_fusion,
    ),
    EquivalenceProgram(
        name="diamond_tuple_outputs",
        description="two materialized outputs; tuple root return",
        expect="clean",
        steps=2,
        build=_build_diamond_tuple_outputs,
    ),
    EquivalenceProgram(
        name="sgd_fused_update",
        description="whole SGD update in one fusion over resident params",
        expect="clean",
        steps=2,
        build=_build_sgd_fused_update,
    ),
    EquivalenceProgram(
        name="residual_combine",
        description="activation held across two matmuls and recombined",
        expect="clean",
        steps=2,
        build=_build_residual_combine,
    ),
    EquivalenceProgram(
        name="reshape_pipeline",
        description="reshape feeding a dot; may-alias ops emitted in order",
        expect="clean",
        steps=2,
        build=_build_reshape_pipeline,
    ),
    EquivalenceProgram(
        name="narrow_mlp_f16",
        description="naive-f16 module: converts, f32 accum, narrow reduce",
        expect="clean",
        steps=2,
        build=_build_narrow_mlp,
        narrow="f16",
    ),
    EquivalenceProgram(
        name="narrow_mlp_bf16",
        description="naive-bf16 module: quantized results in f32 storage",
        expect="clean",
        steps=2,
        build=_build_narrow_mlp,
        narrow="bf16",
    ),
    EquivalenceProgram(
        name="lenet_forward",
        description="full LeNet forward (the Table 2/3 workload trace)",
        expect="clean",
        steps=1,
        build=_build_lenet_forward,
    ),
    # -- seeded miscompiles (each transform applied to certified source) --
    EquivalenceProgram(
        name="miscompile_wrong_broadcast",
        description="bias broadcast emitted with perturbed dims",
        expect="wrong-broadcast",
        steps=1,
        build=_build_affine_relu_fusion,
        miscompile="wrong_broadcast",
    ),
    EquivalenceProgram(
        name="miscompile_stale_reuse",
        description="held activation's buffer clobbered while still live",
        expect="stale-reuse",
        steps=1,
        build=_build_residual_combine,
        miscompile="stale_buffer_reuse",
    ),
    EquivalenceProgram(
        name="miscompile_dropped_convert",
        description="first cast of the narrowed module silently dropped",
        expect="dropped-convert",
        steps=1,
        build=_build_narrow_mlp,
        narrow="f16",
        miscompile="dropped_convert",
    ),
    EquivalenceProgram(
        name="miscompile_reordered_op",
        description="subtract operands swapped in the SGD update",
        expect="reordered-op",
        steps=1,
        build=_build_sgd_fused_update,
        miscompile="reordered_noncommutative",
    ),
    EquivalenceProgram(
        name="miscompile_accum_elision",
        description="f32 widening of an f16 matmul operand elided",
        expect="accum-elision",
        steps=1,
        build=_build_narrow_mlp,
        narrow="f16",
        miscompile="f32_accum_elision",
    ),
)


def get_program(name: str) -> EquivalenceProgram:
    for program in CORPUS:
        if program.name == name:
            return program
    known = ", ".join(p.name for p in CORPUS)
    raise KeyError(f"unknown equivalence program {name!r} (known: {known})")
