"""Seeded miscompiles: the five classic codegen bugs the proof must catch.

Each transform takes *correct* emitted source and produces a plausibly
buggy variant — the kind of defect a hand-written emitter ships: a
broadcast to the wrong dims, a buffer reused while its old value is still
needed, a dropped dtype conversion, swapped operands of a
non-commutative op, and an elided f32-accumulation widening.  The
transformed source still parses and runs; only the translation validator
stands between it and the cache.  Sweep 10 requires every applicable
transform to be rejected with a located diagnostic.

Transforms are AST-to-AST (``ast.unparse``) so they survive formatting
details of the emitter.  A transform returns ``None`` when its pattern
does not occur in the given source (e.g. no ``cast`` call in an all-f32
module); the corpus pairs each miscompile with a program where it
applies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Optional


def _parse(source: str) -> ast.Module:
    return ast.parse(source)


def _emit(tree: ast.Module) -> str:
    return ast.unparse(ast.fix_missing_locations(tree)) + "\n"


def _kernel_calls(tree: ast.Module, name: str) -> list[ast.Call]:
    found: list[ast.Call] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Subscript)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "K"
            and isinstance(node.func.slice, ast.Constant)
            and node.func.slice.value == name
        ):
            found.append(node)
    return found


def wrong_broadcast(source: str) -> Optional[str]:
    """Perturb the dims of the first broadcast (off-by-one leading dim)."""
    tree = _parse(source)
    for call in _kernel_calls(tree, "broadcast_to"):
        dims = call.args[1]
        if isinstance(dims, ast.Tuple) and dims.elts:
            first = dims.elts[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, int):
                first.value += 1
                return _emit(tree)
    return None


def stale_buffer_reuse(source: str) -> Optional[str]:
    """Retarget one assignment onto a variable that is still live.

    Emulates a planner bug: value *i* is written into the buffer of a
    value V whose interval has not ended.  Every later read of V now sees
    the clobbering value — the first such consumer is the divergence the
    validator must name.
    """
    tree = _parse(source)
    fn = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    assigns = [s for s in fn.body if isinstance(s, ast.Assign)]

    def reads_of(stmt: ast.stmt) -> set[str]:
        return {
            n.id
            for n in ast.walk(stmt)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        }

    for i, stmt in enumerate(assigns):
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        defined_before = {
            s.targets[0].id
            for s in assigns[:i]
            if isinstance(s.targets[0], ast.Name)
        }
        read_after: set[str] = set()
        for later in fn.body[fn.body.index(stmt) + 1 :]:
            read_after |= reads_of(later)
        victims = sorted((defined_before - {target.id}) & read_after)
        if not victims:
            continue
        victim = victims[0]
        old_name = target.id
        target.id = victim
        # Later reads of the retargeted value follow it to the new name.
        past = False
        for later in fn.body:
            if later is stmt:
                past = True
                continue
            if not past:
                continue
            for n in ast.walk(later):
                if (
                    isinstance(n, ast.Name)
                    and isinstance(n.ctx, ast.Load)
                    and n.id == old_name
                ):
                    n.id = victim
        return _emit(tree)
    return None


def dropped_convert(source: str) -> Optional[str]:
    """Strip the first ``cast(x, dtype)`` wrapper — the narrowed result
    silently keeps its wide storage."""
    tree = _parse(source)

    class Strip(ast.NodeTransformer):
        def __init__(self) -> None:
            self.done = False

        def visit_Call(self, node: ast.Call):
            self.generic_visit(node)
            if (
                not self.done
                and isinstance(node.func, ast.Name)
                and node.func.id == "cast"
                and len(node.args) == 2
            ):
                self.done = True
                return node.args[0]
            return node

    stripper = Strip()
    tree = stripper.visit(tree)
    return _emit(tree) if stripper.done else None


def reordered_noncommutative(source: str) -> Optional[str]:
    """Swap the operands of the first subtract/divide/matmul call."""
    tree = _parse(source)
    for name in ("sub", "div", "pow", "matmul"):
        for call in _kernel_calls(tree, name):
            if len(call.args) == 2:
                call.args[0], call.args[1] = call.args[1], call.args[0]
                return _emit(tree)
    return None


def f32_accum_elision(source: str) -> Optional[str]:
    """Strip the first ``f32acc(x)`` widening — the contraction then
    accumulates in f16, the exact hazard PR-8 exists to prevent."""
    tree = _parse(source)

    class Strip(ast.NodeTransformer):
        def __init__(self) -> None:
            self.done = False

        def visit_Call(self, node: ast.Call):
            self.generic_visit(node)
            if (
                not self.done
                and isinstance(node.func, ast.Name)
                and node.func.id == "f32acc"
                and len(node.args) == 1
            ):
                self.done = True
                return node.args[0]
            return node

    stripper = Strip()
    tree = stripper.visit(tree)
    return _emit(tree) if stripper.done else None


@dataclass(frozen=True)
class Miscompile:
    """One seeded codegen bug: a source transform plus its verdict label."""

    name: str
    description: str
    #: Verdict label the report assigns when the validator rejects it.
    verdict: str
    transform: Callable[[str], Optional[str]]


MISCOMPILES: tuple[Miscompile, ...] = (
    Miscompile(
        "wrong_broadcast",
        "broadcast emitted with perturbed target dims",
        "wrong-broadcast",
        wrong_broadcast,
    ),
    Miscompile(
        "stale_buffer_reuse",
        "a buffer reused while its previous value is still live",
        "stale-reuse",
        stale_buffer_reuse,
    ),
    Miscompile(
        "dropped_convert",
        "a dtype conversion silently dropped",
        "dropped-convert",
        dropped_convert,
    ),
    Miscompile(
        "reordered_noncommutative",
        "operands of a non-commutative op swapped",
        "reordered-op",
        reordered_noncommutative,
    ),
    Miscompile(
        "f32_accum_elision",
        "f32-accumulation widening of an f16 contraction elided",
        "accum-elision",
        f32_accum_elision,
    ),
)
