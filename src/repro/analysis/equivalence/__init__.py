"""Translation validation for the flat-NumPy codegen (self-check sweep 10).

The pipeline this package certifies: ``repro.hlo.codegen`` emits one flat
Python step function per scheduled module; :mod:`validator` symbolically
executes both the HLO schedule and the emitted function's AST into one
hash-consed term DAG (:mod:`normalform`) and proves the two roots
identical, locating the first divergent value when they are not.  Only a
certified translation runs; :mod:`miscompiles` seeds the five classic
codegen bugs the proof must catch, :mod:`models` bundles the real corpus,
and :mod:`report` cross-checks every certificate dynamically (interpreted
≡ generated, bit for bit).
"""

from repro.analysis.equivalence.miscompiles import MISCOMPILES, Miscompile
from repro.analysis.equivalence.models import CORPUS, EquivalenceProgram
from repro.analysis.equivalence.normalform import TermTable
from repro.analysis.equivalence.report import (
    EquivalenceReport,
    analyze_all_equivalence_models,
    analyze_equivalence_model,
    analyze_equivalence_program,
)
from repro.analysis.equivalence.validator import (
    ValidationResult,
    validate_translation,
)

__all__ = [
    "CORPUS",
    "EquivalenceProgram",
    "EquivalenceReport",
    "MISCOMPILES",
    "Miscompile",
    "TermTable",
    "ValidationResult",
    "analyze_all_equivalence_models",
    "analyze_equivalence_model",
    "analyze_equivalence_program",
    "validate_translation",
]
