"""Drive the translation validator over a corpus program and cross-check it.

For every unique captured step trace: lower, (optionally) narrow with the
PR-8 naive policy, optimize, build the interpreted executable, emit the
flat-NumPy step function, and statically certify the translation — then
cross-check the certificate *dynamically* by running both halves on the
captured source data and comparing results bit for bit.  The contract:

* every clean program certifies on **every** trace with zero error
  diagnostics (no false positives);
* interpreted ≡ generated, bit-identical, on every certified trace;
* every seeded-miscompile entry has its untransformed source certify
  (the baseline) and its transformed source **rejected** with a located
  diagnostic carrying the expected verdict.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import Diagnostic, SourceLocation

from .miscompiles import MISCOMPILES, Miscompile
from .models import CORPUS, EquivalenceProgram, get_program
from .validator import ValidationResult, validate_translation

#: Diagnostic message prefix -> corpus verdict label.
_VERDICT_PREFIXES = (
    ("wrong-broadcast", "wrong-broadcast"),
    ("stale-reuse", "stale-reuse"),
    ("dropped-convert", "dropped-convert"),
    ("reordered-op", "reordered-op"),
    ("accum-elision", "accum-elision"),
)

_MISCOMPILE_BY_NAME = {m.name: m for m in MISCOMPILES}


def _verdict_of(diag: Diagnostic) -> Optional[str]:
    for prefix, label in _VERDICT_PREFIXES:
        if diag.message.startswith(prefix):
            return label
    return None


def _bit_identical(a, b) -> bool:
    """Nested bit-for-bit equality (tuples of arrays or single arrays)."""
    if isinstance(a, tuple) or isinstance(b, tuple):
        return (
            isinstance(a, tuple)
            and isinstance(b, tuple)
            and len(a) == len(b)
            and all(_bit_identical(x, y) for x, y in zip(a, b))
        )
    x, y = np.asarray(a), np.asarray(b)
    return x.dtype == y.dtype and x.shape == y.shape and x.tobytes() == y.tobytes()


@dataclass
class TraceEquivalenceCheck:
    """The validator's verdict for one unique trace of a program."""

    trace_key: str
    generated: object  # GeneratedStep
    #: Verdict for the source under test (the *transformed* source for
    #: miscompile entries).
    result: ValidationResult
    #: Dynamic cross-check outcome (clean entries only; the seeded-bug
    #: variants are never run — the proof alone must stop them).
    bit_identical: Optional[bool] = None
    #: Certificate for the untransformed source (miscompile entries only):
    #: the zero-false-positive baseline.
    baseline: Optional[ValidationResult] = None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def located(self) -> bool:
        """At least one error diagnostic names a source line."""
        return any(
            d.is_error and d.location is not None and d.location.line >= 1
            for d in self.diagnostics
        )


@dataclass
class EquivalenceReport:
    """Everything translation validation concluded about one corpus program."""

    program: EquivalenceProgram
    location: SourceLocation
    checks: list[TraceEquivalenceCheck] = field(default_factory=list)

    def diagnostics(self) -> list[Diagnostic]:
        return [d for c in self.checks for d in c.diagnostics]

    def verdicts(self) -> set[str]:
        found = {
            v
            for d in self.diagnostics()
            if d.is_error and (v := _verdict_of(d)) is not None
        }
        return found or {"clean"}

    @property
    def cross_check_ok(self) -> bool:
        """Static and dynamic halves agree on every trace."""
        if not self.checks:
            return False
        for c in self.checks:
            if self.program.miscompile is None:
                # Clean: certified, bit-identical, no errors at all.
                if not c.result.certified or c.bit_identical is not True:
                    return False
                if any(d.is_error for d in c.diagnostics):
                    return False
            else:
                # Seeded bug: baseline certifies, variant is rejected with
                # a located diagnostic.
                if c.baseline is None or not c.baseline.certified:
                    return False
                if c.result.certified or not c.located:
                    return False
        return True

    @property
    def certified_fraction(self) -> float:
        """Fraction of traces whose source-under-test certified."""
        if not self.checks:
            return 0.0
        good = sum(1 for c in self.checks if c.result.certified)
        return good / len(self.checks)

    def render(self) -> str:
        lines = [
            f"equivalence report: {self.program.name}"
            f" [{self.program.description}]",
            f"  verdicts: {', '.join(sorted(self.verdicts()))}"
            f" (expected {self.program.expect});"
            f" cross-check {'OK' if self.cross_check_ok else 'FAILED'}",
        ]
        for c in self.checks:
            bits = (
                "(not run)"
                if c.bit_identical is None
                else ("bit-identical" if c.bit_identical else "BITS DIFFER")
            )
            lines.append(
                f"  trace {c.trace_key}: "
                f"{'certified' if c.result.certified else 'REJECTED'} "
                f"({c.result.checked_values} values, "
                f"{c.result.term_count} terms, "
                f"{c.generated.line_count}-line step fn); dynamic {bits}"
            )
            if c.baseline is not None:
                lines.append(
                    f"    baseline {'certified' if c.baseline.certified else 'REJECTED'}"
                    f" ({c.baseline.checked_values} values)"
                )
            for d in c.diagnostics:
                lines.append(f"    {d}")
        return "\n".join(lines)


def _program_location(program: EquivalenceProgram) -> SourceLocation:
    fn = inspect.unwrap(program.build)
    code = fn.__code__
    return SourceLocation(code.co_filename, code.co_firstlineno)


def _lower_traced_module(record, program: EquivalenceProgram):
    """Trace nodes -> the scheduled module codegen sees, plus run args."""
    from repro.hlo.passes import optimize
    from repro.tensor.lazy_backend import _lower_to_hlo

    module, param_nodes = _lower_to_hlo(record.fragment.to_trace_nodes())
    if program.narrow is not None:
        from repro.analysis.precision.casts import apply_plan, naive_assignment

        # Precision plans are authored against the unfused module (PR-8).
        module = apply_plan(module, naive_assignment(module, program.narrow))
    module = optimize(module, fuse=True)
    args = [np.array(p.data, copy=True) for p in param_nodes]
    return module, args


def _check_trace(
    key: str, module, args, program: EquivalenceProgram, location: SourceLocation
) -> TraceEquivalenceCheck:
    from repro.hlo.codegen import compile_step, emit_module
    from repro.hlo.compiler import Executable

    generated = emit_module(module, key=key)
    result = validate_translation(
        module, generated.source, generated.consts, generated.filename
    )

    if program.miscompile is None:
        bit_identical: Optional[bool] = None
        diagnostics = list(result.diagnostics)
        if result.certified:
            interpreted = Executable(module)
            expected = interpreted.run(args)
            actual = compile_step(generated)(*args)
            bit_identical = _bit_identical(expected, actual)
            if not bit_identical:
                diagnostics.append(
                    Diagnostic(
                        severity="error",
                        message=(
                            "dynamic cross-check failed: certified codegen"
                            " produced different bits than the interpreter"
                        ),
                        location=location,
                    )
                )
        return TraceEquivalenceCheck(
            trace_key=key,
            generated=generated,
            result=result,
            bit_identical=bit_identical,
            diagnostics=diagnostics,
        )

    # Seeded miscompile: the pristine source is the baseline; the transform
    # must be caught by the static proof alone.
    bug: Miscompile = _MISCOMPILE_BY_NAME[program.miscompile]
    baseline = result
    diagnostics: list[Diagnostic] = []
    transformed = bug.transform(generated.source)
    if transformed is None:
        diagnostics.append(
            Diagnostic(
                severity="error",
                message=(
                    f"miscompile {bug.name} does not apply: its pattern is"
                    f" absent from the emitted source of trace {key}"
                ),
                location=location,
            )
        )
        return TraceEquivalenceCheck(
            trace_key=key,
            generated=generated,
            result=baseline,
            baseline=baseline,
            diagnostics=diagnostics,
        )
    variant = validate_translation(
        module,
        transformed,
        generated.consts,
        f"<miscompile:{bug.name}:{key}>",
    )
    for d in variant.errors:
        # Re-badge the divergence with the seeded bug's verdict label so the
        # report (and sweep 10) can pair catches with expectations.
        diagnostics.append(
            Diagnostic(
                severity=d.severity,
                message=f"{bug.verdict}: {d.message}",
                location=d.location,
            )
        )
    if variant.certified:
        diagnostics.append(
            Diagnostic(
                severity="error",
                message=(
                    f"seeded miscompile {bug.name} was NOT caught: the"
                    " validator certified a known-bad translation"
                ),
                location=location,
            )
        )
    return TraceEquivalenceCheck(
        trace_key=key,
        generated=generated,
        result=variant,
        baseline=baseline,
        diagnostics=diagnostics,
    )


def analyze_equivalence_program(program: EquivalenceProgram) -> EquivalenceReport:
    """Capture ``program``'s traces, certify each unique one, and pit the
    certificate against the dynamic oracle (or the seeded bug)."""
    from repro.analysis.tracing.canonical import canonicalize
    from repro.analysis.tracing.capture import capture_step_traces

    device, step_fn = program.build()
    capture = capture_step_traces(
        step_fn, steps=program.steps, device=device, keep_source_data=True
    )

    location = _program_location(program)
    report = EquivalenceReport(program=program, location=location)
    seen: set[str] = set()
    for record in capture.fragments:
        key = canonicalize(record.fragment.roots).digest
        if key in seen:
            continue
        seen.add(key)
        module, args = _lower_traced_module(record, program)
        report.checks.append(_check_trace(key, module, args, program, location))
    return report


def analyze_equivalence_model(name: str) -> EquivalenceReport:
    return analyze_equivalence_program(get_program(name))


def analyze_all_equivalence_models() -> list[EquivalenceReport]:
    return [analyze_equivalence_program(p) for p in CORPUS]
