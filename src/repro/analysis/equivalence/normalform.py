"""The common dataflow normal form both sides of the translation proof use.

A *term* is an immutable tuple ``(op, arg, arg, ...)`` where every arg is
either ``(TERM, id)`` — a reference to another interned term — or
``(LIT, value)`` — a frozen attribute literal.  :class:`TermTable`
hash-conses terms: structurally identical values get identical ids, which
is exactly alpha-renaming — variable names, instruction ids, and schedule
labels all vanish, leaving pure dataflow.

Op-algebra normalization happens at construction: the operands of the
commutative elementwise kernels are sorted by term id, so an operand swap
that cannot change the computed bits cannot fail the proof, while a swap
of a *non*-commutative op (subtract, divide, matmul) changes the term and
is caught.

Both the HLO side (:func:`validator.module_terms`) and the AST side
(:func:`validator.function_terms`) intern into one shared table; the
translation is certified iff the two root ids are equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hlo.codegen import freeze

TERM = "t"
LIT = "lit"

#: Kernels whose two array operands commute bit-for-bit under NumPy
#: (IEEE add/multiply are commutative; maximum/minimum propagate NaNs
#: symmetrically).  subtract/divide/power/matmul are *not* here — operand
#: order is semantic and a reorder must fail the proof.
COMMUTATIVE_KERNELS = frozenset({"add", "mul", "maximum", "minimum"})


@dataclass
class TermTable:
    """Hash-consing table: term tuple -> dense id (insertion order)."""

    _index: dict = field(default_factory=dict)
    _terms: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self._terms)

    def intern(self, term: tuple) -> int:
        tid = self._index.get(term)
        if tid is None:
            tid = len(self._terms)
            self._terms.append(term)
            self._index[term] = tid
        return tid

    def node(self, tid: int) -> tuple:
        return self._terms[tid]

    # -- constructors (the shared term algebra) ------------------------------

    def param(self, number: int) -> int:
        return self.intern(("param", (LIT, number)))

    def const(self, value) -> int:
        """A constant, keyed by its exact run-time representation: Python
        type, storage dtype, shape, and raw bytes."""
        arr = np.asarray(value)
        payload = (
            type(value).__name__,
            str(arr.dtype),
            arr.shape,
            arr.tobytes(),
        )
        return self.intern(("const", (LIT, payload)))

    def kernel(self, name: str, args: list[tuple]) -> int:
        """A kernel-table call; ``args`` mixes term refs and literals in
        positional order.  Commutative binary kernels sort their operands."""
        if (
            name in COMMUTATIVE_KERNELS
            and len(args) == 2
            and all(a[0] == TERM for a in args)
        ):
            args = sorted(args, key=lambda a: a[1])
        return self.intern(("kernel:" + name,) + tuple(args))

    def cast(self, dtype: str, tid: int) -> int:
        return self.intern(("cast", (LIT, dtype), (TERM, tid)))

    def f32acc(self, tid: int) -> int:
        return self.intern(("f32acc", (TERM, tid)))

    def astype_f32(self, tid: int) -> int:
        return self.intern(("astype32", (TERM, tid)))

    def narrow_reduce(self, tid: int, axes, keepdims, kind: str, dtype: str) -> int:
        return self.intern(
            (
                "narrow_reduce",
                (TERM, tid),
                (LIT, freeze(axes)),
                (LIT, bool(keepdims)),
                (LIT, kind),
                (LIT, dtype),
            )
        )

    def compare(self, direction: str, a: int, b: int) -> int:
        return self.intern(("cmp", (LIT, direction), (TERM, a), (TERM, b)))

    def logical_not(self, tid: int) -> int:
        return self.intern(("not", (TERM, tid)))

    def tuple_(self, tids: list[int]) -> int:
        return self.intern(("tuple",) + tuple((TERM, t) for t in tids))

    # -- rendering -----------------------------------------------------------

    def sketch(self, tid: int, depth: int = 3) -> str:
        """A short human-readable rendering for diagnostics."""
        op, *args = self.node(tid)
        if op == "param":
            return f"p{args[0][1]}"
        if op == "const":
            _, dtype, shape, _ = args[0][1]
            dims = "x".join(str(d) for d in shape) or "scalar"
            return f"const[{dims} {dtype}]"
        if depth == 0:
            return f"{op}(…)"
        parts = []
        for kind, payload in args:
            if kind == TERM:
                parts.append(self.sketch(payload, depth - 1))
            else:
                parts.append(repr(payload))
        name = op[len("kernel:"):] if op.startswith("kernel:") else op
        return f"{name}({', '.join(parts)})"
