"""The translation validator: prove emitted source ≡ its HLO module.

Two independent symbolic executions meet in one shared
:class:`~repro.analysis.equivalence.normalform.TermTable`:

* :func:`module_terms` walks the module schedule and builds, for every
  instruction, the term the *interpreted* backend computes — the result
  coercions of ``evaluate_instruction``, the f32-accumulation wrapping of
  f16 contraction operands, and the narrow-accumulator reduce semantics,
  all derived from the instructions' static dtypes.
* :func:`function_terms` parses the emitted source with :mod:`ast` and
  symbolically executes its assignments: variable names map to term ids,
  kernel-table calls map back to the term algebra, and buffer reuse is
  just rebinding — a read of a clobbered name yields the clobbering term,
  so a stale-reuse miscompile surfaces as a divergent consumer.

The translation is certified iff the two root terms are the *same id*
(hash-consing makes structural equality an integer compare).  On failure
the validator pairs the module's expected value sequence with the
function's assignment sequence and reports the first divergent value with
a located diagnostic into the emitted source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import Diagnostic, SourceLocation
from repro.hlo.codegen import _REDUCE_KERNELS, _hoisted_constant, freeze
from repro.hlo.compiler import _BINARY_KERNELS, _UNARY_KERNELS
from repro.hlo.dtypes import np_dtype_of
from repro.hlo.ir import (
    BF16,
    F16,
    F64,
    NARROW_DTYPES,
    HloInstruction,
    HloModule,
)
from repro.analysis.equivalence.normalform import LIT, TERM, TermTable

_COERCED_DTYPES = (F16, BF16, F64)


@dataclass(frozen=True)
class ExpectedValue:
    """One value the schedule computes: its label and its semantic term."""

    label: str
    term: int


# ---------------------------------------------------------------------------
# HLO side: the schedule's semantics as terms.
# ---------------------------------------------------------------------------


def _raw_term(inst: HloInstruction, args: list[int], table: TermTable) -> int:
    op = inst.opcode
    at = inst.attrs
    t = [(TERM, a) for a in args]
    if op == "convert":
        return table.cast(at["new_dtype"], args[0])
    if op in _UNARY_KERNELS:
        return table.kernel(_UNARY_KERNELS[op], t)
    if op in _BINARY_KERNELS:
        return table.kernel(_BINARY_KERNELS[op], t)
    if op == "compare":
        return table.compare(at["direction"], args[0], args[1])
    if op == "not":
        return table.logical_not(args[0])
    if op == "select":
        return table.kernel("select", t)
    if op == "broadcast":
        return table.kernel("broadcast_to", t + [(LIT, freeze(at["dims"]))])
    if op == "reshape":
        return table.kernel("reshape", t + [(LIT, freeze(at["dims"]))])
    if op == "transpose":
        return table.kernel("transpose", t + [(LIT, freeze(at["perm"]))])
    if op == "pad":
        return table.kernel("pad", t + [(LIT, freeze(at["paddings"]))])
    if op == "slice":
        return table.kernel(
            "slice", t + [(LIT, freeze(at["starts"])), (LIT, freeze(at["sizes"]))]
        )
    if op == "concatenate":
        return table.kernel("concat", t + [(LIT, freeze(at["axis"]))])
    if op == "dot":
        wrapped = [
            (TERM, table.f32acc(a) if o.shape.dtype == F16 else a)
            for o, a in zip(inst.operands, args)
        ]
        return table.kernel("matmul", wrapped)
    if op == "convolution":
        wrapped = [
            (TERM, table.f32acc(a) if o.shape.dtype == F16 else a)
            for o, a in zip(inst.operands, args)
        ]
        return table.kernel(
            "conv2d",
            wrapped + [(LIT, freeze(at["stride"])), (LIT, freeze(at["padding"]))],
        )
    if op == "conv_grad_input":
        return table.kernel(
            "conv2d_grad_input",
            t
            + [
                (LIT, freeze(at["input_dims"])),
                (LIT, freeze(at["stride"])),
                (LIT, freeze(at["padding"])),
            ],
        )
    if op == "conv_grad_filter":
        return table.kernel(
            "conv2d_grad_filter",
            t
            + [
                (LIT, freeze(at["filter_dims"])),
                (LIT, freeze(at["stride"])),
                (LIT, freeze(at["padding"])),
            ],
        )
    if op == "reduce":
        kind = at["kind"]
        x = args[0]
        if at.get("accum") == "f32":
            if np_dtype_of(inst.operands[0].shape.dtype) != np.float32:
                x = table.astype_f32(x)
        elif inst.shape.dtype in NARROW_DTYPES and kind in ("sum", "mean"):
            return table.narrow_reduce(
                args[0], at["axes"], at["keepdims"], kind, inst.shape.dtype
            )
        return table.kernel(
            _REDUCE_KERNELS[kind],
            [(TERM, x), (LIT, freeze(at["axes"])), (LIT, bool(at["keepdims"]))],
        )
    if op == "avg_pool":
        return table.kernel(
            "avg_pool2d",
            t + [(LIT, freeze(at["pool"])), (LIT, freeze(at["stride"]))],
        )
    if op == "avg_pool_grad":
        return table.kernel(
            "avg_pool2d_grad",
            t
            + [
                (LIT, freeze(at["input_dims"])),
                (LIT, freeze(at["pool"])),
                (LIT, freeze(at["stride"])),
            ],
        )
    if op == "max_pool":
        return table.kernel(
            "max_pool2d",
            t + [(LIT, freeze(at["pool"])), (LIT, freeze(at["stride"]))],
        )
    if op == "max_pool_grad":
        return table.kernel(
            "max_pool2d_grad",
            t + [(LIT, freeze(at["pool"])), (LIT, freeze(at["stride"]))],
        )
    if op == "one_hot":
        return table.kernel("one_hot", t + [(LIT, freeze(at["depth"]))])
    if op == "iota":
        return table.kernel("iota", [(LIT, freeze(at["n"]))])
    if op == "softmax_ce":
        return table.kernel("softmax_cross_entropy", t)
    if op == "softmax_ce_grad":
        return table.kernel("softmax_cross_entropy_grad", t)
    raise ValueError(f"no semantic lowering for opcode {op!r}")


def _instruction_term(inst: HloInstruction, args: list[int], table: TermTable) -> int:
    raw = _raw_term(inst, args, table)
    dt = inst.shape.dtype
    if inst.opcode != "convert" and dt in _COERCED_DTYPES:
        return table.cast(dt, raw)
    return raw


def module_terms(
    module: HloModule, table: TermTable
) -> tuple[int, list[ExpectedValue]]:
    """The module's root term plus the expected value sequence, in the
    exact order the generator emits assignments (fusions inlined)."""
    env: dict[int, int] = {}
    expected: list[ExpectedValue] = []
    root = module.entry.root

    def fusion_terms(fusion: HloInstruction, ext: list[int]) -> int:
        inner = fusion.fused_computation
        inner_env: dict[int, int] = {}
        inner_root = inner.root
        for inst in inner.post_order():
            if inst.opcode == "parameter":
                inner_env[inst.id] = ext[inst.parameter_number]
                continue
            if inst.opcode == "constant":
                inner_env[inst.id] = table.const(_hoisted_constant(inst))
                continue
            term = _instruction_term(
                inst, [inner_env[o.id] for o in inst.operands], table
            )
            inner_env[inst.id] = term
            label = (
                f"%{fusion.name}"
                if inst is inner_root
                else f"%{fusion.name}.{inst.name}"
            )
            expected.append(ExpectedValue(label, term))
        if inner_root.opcode in ("parameter", "constant"):
            expected.append(ExpectedValue(f"%{fusion.name}", inner_env[inner_root.id]))
        return inner_env[inner_root.id]

    for inst in module.schedule():
        op = inst.opcode
        if op == "parameter":
            env[inst.id] = table.param(inst.parameter_number)
            continue
        if op == "constant":
            env[inst.id] = table.const(_hoisted_constant(inst))
            continue
        if op == "tuple":
            env[inst.id] = table.tuple_([env[o.id] for o in inst.operands])
            if inst is not root:
                expected.append(ExpectedValue(f"%{inst.name}", env[inst.id]))
            continue
        if op == "fusion":
            env[inst.id] = fusion_terms(inst, [env[o.id] for o in inst.operands])
            continue
        env[inst.id] = _instruction_term(
            inst, [env[o.id] for o in inst.operands], table
        )
        expected.append(ExpectedValue(f"%{inst.name}", env[inst.id]))
    return env[root.id], expected


# ---------------------------------------------------------------------------
# AST side: symbolic execution of the emitted function.
# ---------------------------------------------------------------------------


class _Reject(Exception):
    """An emitted-source construct outside the certified grammar."""

    def __init__(self, message: str, node: ast.AST) -> None:
        super().__init__(message)
        self.message = message
        self.lineno = getattr(node, "lineno", 0)
        self.col = getattr(node, "col_offset", 0)


@dataclass
class FunctionExec:
    """The result of symbolically executing one emitted step function."""

    assignments: list[tuple[int, str, int]] = field(default_factory=list)
    ret_term: Optional[int] = None
    ret_lineno: int = 0
    errors: list[Diagnostic] = field(default_factory=list)


def _literal(node: ast.AST):
    return freeze(ast.literal_eval(node))


class _SymbolicEvaluator:
    def __init__(self, consts: tuple, env: dict[str, int], table: TermTable) -> None:
        self.consts = consts
        self.env = env
        self.table = table

    def eval(self, node: ast.AST) -> int:
        if isinstance(node, ast.Name):
            term = self.env.get(node.id)
            if term is None:
                raise _Reject(f"read of undefined value {node.id!r}", node)
            return term
        if isinstance(node, ast.Tuple):
            return self.table.tuple_([self.eval(e) for e in node.elts])
        if isinstance(node, ast.Subscript):
            return self._const(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        raise _Reject(
            f"unsupported expression {ast.dump(node)[:60]}", node
        )

    def _const(self, node: ast.Subscript) -> int:
        if not (isinstance(node.value, ast.Name) and node.value.id == "C"):
            raise _Reject("only the constant pool C[...] may be subscripted", node)
        try:
            index = ast.literal_eval(node.slice)
        except ValueError:
            raise _Reject("constant pool index must be a literal", node) from None
        if not isinstance(index, int) or not 0 <= index < len(self.consts):
            raise _Reject(f"constant pool index {index!r} out of range", node)
        return self.table.const(self.consts[index])

    def _call_args(self, node: ast.Call) -> list[tuple]:
        encoded: list[tuple] = []
        for arg in node.args:
            try:
                encoded.append((LIT, _literal(arg)))
            except ValueError:
                encoded.append((TERM, self.eval(arg)))
        return encoded

    def _call(self, node: ast.Call) -> int:
        func = node.func
        if node.keywords:
            raise _Reject("keyword arguments are outside the grammar", node)
        # K['name'](...) / CMP['dir'](...)
        if isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
            try:
                selector = ast.literal_eval(func.slice)
            except ValueError:
                raise _Reject("kernel selector must be a literal", node) from None
            if func.value.id == "K":
                return self.table.kernel(selector, self._call_args(node))
            if func.value.id == "CMP":
                if len(node.args) != 2:
                    raise _Reject("compare takes two operands", node)
                return self.table.compare(
                    selector, self.eval(node.args[0]), self.eval(node.args[1])
                )
            raise _Reject(f"unknown call table {func.value.id!r}", node)
        if isinstance(func, ast.Name):
            if func.id == "cast":
                if len(node.args) != 2:
                    raise _Reject("cast takes (value, dtype)", node)
                return self.table.cast(
                    _literal(node.args[1]), self.eval(node.args[0])
                )
            if func.id == "f32acc":
                if len(node.args) != 1:
                    raise _Reject("f32acc takes one operand", node)
                return self.table.f32acc(self.eval(node.args[0]))
            if func.id == "narrow_reduce":
                if len(node.args) != 5:
                    raise _Reject(
                        "narrow_reduce takes (x, axes, keepdims, kind, dtype)", node
                    )
                return self.table.narrow_reduce(
                    self.eval(node.args[0]),
                    _literal(node.args[1]),
                    _literal(node.args[2]),
                    _literal(node.args[3]),
                    _literal(node.args[4]),
                )
            raise _Reject(f"unknown helper {func.id!r}", node)
        if isinstance(func, ast.Attribute):
            # np.logical_not(x)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "np"
                and func.attr == "logical_not"
                and len(node.args) == 1
            ):
                return self.table.logical_not(self.eval(node.args[0]))
            # x.astype(np.float32)
            if func.attr == "astype" and len(node.args) == 1:
                arg = node.args[0]
                if (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "np"
                    and arg.attr == "float32"
                ):
                    return self.table.astype_f32(self.eval(func.value))
                raise _Reject("only .astype(np.float32) is in the grammar", node)
        raise _Reject(f"unsupported call {ast.dump(func)[:60]}", func)


def function_terms(
    source: str,
    consts: tuple,
    n_params: int,
    table: TermTable,
    filename: str = "<codegen>",
) -> FunctionExec:
    """Symbolically execute the emitted function into the shared table."""
    execd = FunctionExec()

    def error(message: str, lineno: int, col: int = 0) -> None:
        execd.errors.append(
            Diagnostic("error", message, SourceLocation(filename, lineno, col))
        )

    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        error(f"emitted source does not parse: {exc.msg}", exc.lineno or 0)
        return execd
    functions = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
    if len(functions) != 1:
        error("emitted source must define exactly one function", 1)
        return execd
    fn = functions[0]
    params = [a.arg for a in fn.args.args]
    if params != [f"p{i}" for i in range(n_params)]:
        error(
            f"function signature {params} does not match the module's "
            f"{n_params} parameters",
            fn.lineno,
        )
        return execd
    env = {f"p{i}": table.param(i) for i in range(n_params)}
    evaluator = _SymbolicEvaluator(consts, env, table)
    for stmt in fn.body:
        try:
            if isinstance(stmt, ast.Assign):
                if len(stmt.targets) != 1 or not isinstance(
                    stmt.targets[0], ast.Name
                ):
                    raise _Reject("only single-name assignments allowed", stmt)
                term = evaluator.eval(stmt.value)
                target = stmt.targets[0].id
                env[target] = term
                execd.assignments.append((stmt.lineno, target, term))
            elif isinstance(stmt, ast.Return):
                if stmt.value is None:
                    raise _Reject("step function must return a value", stmt)
                execd.ret_term = evaluator.eval(stmt.value)
                execd.ret_lineno = stmt.lineno
            else:
                raise _Reject(
                    f"statement {type(stmt).__name__} is outside the grammar", stmt
                )
        except _Reject as reject:
            error(reject.message, reject.lineno, reject.col)
            return execd
    if execd.ret_term is None:
        error("emitted function never returns", fn.lineno)
    return execd


# ---------------------------------------------------------------------------
# The certificate.
# ---------------------------------------------------------------------------


@dataclass
class ValidationResult:
    """The verdict of one translation-validation run."""

    certified: bool
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Values proven (every emitted assignment plus the root).
    checked_values: int = 0
    #: Distinct terms interned across both sides.
    term_count: int = 0
    #: Label of the first divergent value, when rejected.
    divergent_value: Optional[str] = None

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]


def validate_translation(
    module: HloModule,
    source: str,
    consts: tuple,
    filename: str = "<codegen>",
) -> ValidationResult:
    """Certify ``source`` (with constant pool ``consts``) against ``module``."""
    table = TermTable()
    root_term, expected = module_terms(module, table)
    execd = function_terms(
        source, consts, len(module.entry.parameters), table, filename
    )
    diagnostics = list(execd.errors)
    divergent: Optional[str] = None
    certified = not diagnostics and execd.ret_term == root_term
    if not certified and not diagnostics:
        # Locate the first divergent value: the i-th assignment must
        # compute the i-th scheduled value's term.
        for i in range(min(len(expected), len(execd.assignments))):
            lineno, _, term = execd.assignments[i]
            if term != expected[i].term:
                divergent = expected[i].label
                diagnostics.append(
                    Diagnostic(
                        "error",
                        f"codegen diverges at {expected[i].label}: the emitted "
                        f"line computes {table.sketch(term)} where the schedule "
                        f"requires {table.sketch(expected[i].term)}",
                        SourceLocation(filename, lineno, 0),
                    )
                )
                break
        if divergent is None and len(execd.assignments) != len(expected):
            n = min(len(expected), len(execd.assignments))
            divergent = (
                expected[n].label if n < len(expected) else "<extra assignment>"
            )
            lineno = (
                execd.assignments[n][0]
                if n < len(execd.assignments)
                else execd.ret_lineno
            )
            diagnostics.append(
                Diagnostic(
                    "error",
                    f"codegen emits {len(execd.assignments)} values where the "
                    f"schedule computes {len(expected)}; first unmatched: "
                    f"{divergent}",
                    SourceLocation(filename, lineno, 0),
                )
            )
        if divergent is None:
            divergent = "<root>"
            diagnostics.append(
                Diagnostic(
                    "error",
                    "codegen diverges at the root value: the function returns "
                    f"{table.sketch(execd.ret_term) if execd.ret_term is not None else 'nothing'} "
                    f"but the module root is {table.sketch(root_term)}",
                    SourceLocation(filename, execd.ret_lineno, 0),
                )
            )
    return ValidationResult(
        certified=certified,
        diagnostics=diagnostics,
        checked_values=len(expected) + 1,
        term_count=len(table),
        divergent_value=divergent,
    )
