"""Static mutable-value-semantics checking over SIL (the ownership layer).

Four cooperating analyses, mirroring what the Swift compiler does for the
paper's mutable-value-semantics programming model:

* :mod:`~repro.analysis.ownership.aliasing` — intraprocedural may-alias and
  escape analysis over abstract storage roots;
* :mod:`~repro.analysis.ownership.borrow` — the static borrow checker:
  proves the law of exclusivity over formal ``begin_access`` scopes, or
  reports exactly where the dynamic ``BorrowError`` check is still needed;
* :mod:`~repro.analysis.ownership.copies` — copy-materialization inference:
  labels every mutation site in-place / must-copy / may-copy, predicting
  the deep copies the COW runtime will observe;
* :mod:`~repro.analysis.ownership.pullback_cost` — classifies synthesized
  pullbacks O(1) vs O(n) under the mutable-value-semantics and functional
  cotangent styles of Appendix B.

:func:`analyze_ownership` runs all four; :func:`check_ownership` raises on
certain exclusivity violations the way ``check_differentiability`` does for
AD errors.
"""

from __future__ import annotations

from repro.analysis.ownership.aliasing import AliasInfo, analyze_aliases
from repro.analysis.ownership.annotate import (
    OwnershipReport,
    analyze_ownership,
    check_ownership,
)
from repro.analysis.ownership.borrow import BorrowReport, check_exclusivity
from repro.analysis.ownership.copies import CopyInfo, infer_copies
from repro.analysis.ownership.pullback_cost import (
    STYLES,
    PullbackCostReport,
    analyze_pullback_cost,
)

__all__ = [
    "AliasInfo",
    "BorrowReport",
    "CopyInfo",
    "OwnershipReport",
    "PullbackCostReport",
    "STYLES",
    "analyze_aliases",
    "analyze_ownership",
    "analyze_pullback_cost",
    "check_exclusivity",
    "check_ownership",
    "infer_copies",
]
