"""Copy-materialization inference (ownership step 3).

Predicts, per mutation site, whether the copy-on-write runtime
(:mod:`repro.valsem.cow`) will materialize a deep copy when the store
executes:

* ``in-place``  — the storage is provably unique: no copy, ever;
* ``must-copy`` — the storage is certainly shared (e.g. the first write
  after a ``.copy()``): the COW runtime *will* deep-copy here;
* ``may-copy``  — sharing depends on the path taken (or on storage the
  function cannot see): a runtime uniqueness check decides.

The abstract state maps each storage root (from
:mod:`repro.analysis.ownership.aliasing`) to a sharing level — unique /
maybe-shared / certainly-shared — plus the set of partner roots it may
share with.  ``value_copy`` (the lowering of ``.copy()``) makes its result
*certainly* shared with its source; a mutation through a single known root
performs a strong update back to unique and removes the root from every
partner set (COW un-shares on first write).  Sharing with storage outside
the function (mutable constants, opaque-call results) is modeled with a
distinguished ``EXTERNAL`` partner that no mutation can remove.

Entry assumption, stated once and relied on by the tests: **parameters are
uniquely referenced at entry** — the caller passes value-semantic values it
owns.  The dynamic cross-check (``CowStats`` under ``copy_counting``)
validates the prediction under exactly that calling convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.ownership.aliasing import (
    AGGREGATION_PRIMS,
    AliasInfo,
    PROJECTION_PRIMS,
    analyze_aliases,
)
from repro.sil import ir
from repro.sil.primitives import Primitive

#: Pseudo-partner for sharing with storage the function cannot observe.
EXTERNAL = ("external",)

#: Sharing levels.
UNIQUE, MAYBE_SHARED, CERTAINLY_SHARED = 0, 1, 2

_LABELS = {UNIQUE: "in-place", MAYBE_SHARED: "may-copy", CERTAINLY_SHARED: "must-copy"}

#: root -> (level, partners)
_State = dict


@dataclass
class CopyInfo:
    """Per-mutation-site copy predictions for one function."""

    #: ``id(AccessStoreInst)`` -> "in-place" | "must-copy" | "may-copy".
    labels: dict[int, str] = field(default_factory=dict)
    #: printable per-instruction notes (stores and value_copy sites).
    notes: dict[int, str] = field(default_factory=dict)
    mutation_sites: int = 0
    in_place: int = 0
    must_copy: int = 0
    may_copy: int = 0
    logical_copy_sites: int = 0

    def predicted_deep_copies(self) -> tuple[int, int]:
        """(min, max) deep copies for one straight-line execution in which
        every labeled site runs exactly once."""
        return self.must_copy, self.must_copy + self.may_copy


def _default_state(root) -> tuple[int, frozenset]:
    kind = root[0]
    if kind == "param":
        return (UNIQUE, frozenset())  # entry assumption: caller-owned, unique
    if kind == "const":
        return (MAYBE_SHARED, frozenset({EXTERNAL}))
    return (UNIQUE, frozenset())


def _lookup(state: _State, root) -> tuple[int, frozenset]:
    got = state.get(root)
    return got if got is not None else _default_state(root)


def _join_states(a: _State, b: _State) -> _State:
    out: _State = {}
    for root in a.keys() | b.keys():
        la, pa = _lookup(a, root)
        lb, pb = _lookup(b, root)
        level = la if la == lb else MAYBE_SHARED
        out[root] = (level, pa | pb)
    return out


def infer_copies(func: ir.Function, aliases: Optional[AliasInfo] = None) -> CopyInfo:
    """Infer a copy-materialization label for every mutation site."""
    info = CopyInfo()
    aliases = aliases if aliases is not None else analyze_aliases(func)
    blocks = func.reachable_blocks()

    in_states: dict[int, _State] = {id(func.entry): {}}
    worklist = [func.entry]
    while worklist:
        block = worklist.pop()
        out = _transfer_block(block, dict(in_states[id(block)]), aliases, None)
        for succ in _successors(block):
            prev = in_states.get(id(succ))
            new = dict(out) if prev is None else _join_states(prev, out)
            if prev is None or new != prev:
                in_states[id(succ)] = new
                worklist.append(succ)

    # Converged: one labeling sweep per block from its fixpoint in-state.
    for block in blocks:
        _transfer_block(block, dict(in_states.get(id(block), {})), aliases, info)
    return info


def _transfer_block(
    block: ir.Block, state: _State, aliases: AliasInfo, info: Optional[CopyInfo]
) -> _State:
    for inst in block.instructions:
        if _is_value_copy(inst):
            _transfer_value_copy(inst, state, aliases, info)
        elif isinstance(inst, ir.ApplyInst):
            _transfer_opaque_apply(inst, state, aliases)
        elif isinstance(inst, ir.AccessStoreInst):
            _transfer_store(inst, state, aliases, info)
    return state


def _is_value_copy(inst: ir.Instruction) -> bool:
    return (
        isinstance(inst, ir.ApplyInst)
        and not inst.is_indirect
        and isinstance(inst.callee.target, Primitive)
        and inst.callee.target.name == "value_copy"
    )


def _transfer_value_copy(
    inst: ir.ApplyInst, state: _State, aliases: AliasInfo, info: Optional[CopyInfo]
) -> None:
    result = inst.results[0]
    fresh = ("fresh", result.id)
    sources = aliases.roots_of(inst.args[0]) if inst.args else frozenset()
    if not sources:
        state[fresh] = (UNIQUE, frozenset())
    else:
        # The copy certainly shares with whichever storage the source was.
        state[fresh] = (CERTAINLY_SHARED, frozenset(sources))
        certain = len(sources) == 1
        for src in sources:
            level, partners = _lookup(state, src)
            new_level = CERTAINLY_SHARED if certain else max(level, MAYBE_SHARED)
            state[src] = (max(level, new_level), partners | {fresh})
    if info is not None:
        info.logical_copy_sites += 1
        info.notes[id(inst)] = "logical copy: O(1), shares storage until mutated"


def _transfer_opaque_apply(
    inst: ir.ApplyInst, state: _State, aliases: AliasInfo
) -> None:
    """An opaque callee may retain references to its arguments."""
    if not inst.is_indirect:
        target = inst.callee.target
        if isinstance(target, Primitive) and (
            target.pure
            or target.name in PROJECTION_PRIMS
            or target.name in AGGREGATION_PRIMS
        ):
            return
        if isinstance(target, ir.Function):
            # Lowered callees are value-semantic: they may mutate through
            # their own formal accesses but do not capture references.
            return
    for arg in inst.args:
        for root in aliases.roots_of(arg):
            level, partners = _lookup(state, root)
            state[root] = (max(level, MAYBE_SHARED), partners | {EXTERNAL})


def _transfer_store(
    inst: ir.AccessStoreInst, state: _State, aliases: AliasInfo, info: Optional[CopyInfo]
) -> None:
    begin = inst.token.producer
    if not isinstance(begin, ir.BeginAccessInst):
        return
    roots = aliases.roots_of(begin.base)

    if not roots:
        label = "may-copy"  # mutation of storage the analysis cannot see
    else:
        levels = [_lookup(state, r)[0] for r in roots]
        if all(level == UNIQUE for level in levels):
            label = "in-place"
        elif len(roots) == 1 and levels[0] == CERTAINLY_SHARED:
            label = "must-copy"
        else:
            label = "may-copy"

    if info is not None:
        info.mutation_sites += 1
        info.labels[id(inst)] = label
        setattr(info, label.replace("-", "_"), getattr(info, label.replace("-", "_")) + 1)
        info.notes[id(inst)] = label

    # COW un-shares on the first write: a strong update restores uniqueness.
    if len(roots) == 1:
        (mutated,) = roots
        state[mutated] = (UNIQUE, frozenset())
        for other, (level, partners) in list(state.items()):
            if other != mutated and mutated in partners:
                partners = partners - {mutated}
                if not partners:
                    level = UNIQUE
                elif level == CERTAINLY_SHARED:
                    level = MAYBE_SHARED  # the certain partner may be gone
                state[other] = (level, partners)
    else:
        for root in roots:
            level, partners = _lookup(state, root)
            if level == CERTAINLY_SHARED:
                state[root] = (MAYBE_SHARED, partners)


def _successors(block: ir.Block) -> list[ir.Block]:
    term = block.terminator
    if isinstance(term, ir.BrInst):
        return [term.dest]
    if isinstance(term, ir.CondBrInst):
        return [term.true_dest, term.false_dest]
    return []
