"""Static borrow checking of formal access scopes (ownership step 2).

Proves the law of exclusivity over SIL ``begin_access``/``end_access``
scopes: while a ``[modify]`` access to a location is open, no other access
to the same location may begin.  The runtime enforces the same law
dynamically (:class:`repro.valsem.inout.InoutRef` raises ``BorrowError``);
this checker flags the violation *before execution* — and its verdicts are
cross-checked against the dynamic enforcement in the test suite.

The analysis is a forward **may-be-open** dataflow: the state at each
program point is the set of access tokens that may be open on *some* path
reaching it (union at joins).  When a new access begins, it is compared
against every may-open access:

* both accesses ``[read]``                        → no conflict;
* different ``key_kind`` (attr vs item)           → distinct locations;
* keys definitely unequal (distinct literals)     → distinct locations;
* bases cannot alias (disjoint root sets)         → distinct storage;
* bases definitely alias and keys definitely equal → **error** — the
  program traps with ``BorrowError`` on every execution of this point;
* otherwise                                       → **warning** — a dynamic
  exclusivity check is required (may-alias base or unprovable key).

Diagnostics carry both access sites' source locations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.ownership.aliasing import AliasInfo, analyze_aliases
from repro.errors import Diagnostic
from repro.sil import ir


@dataclass
class BorrowReport:
    """Result of static exclusivity checking for one function."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: per-begin_access note keyed by ``id(inst)`` ("exclusive", "conflict
    #: with %N", "may conflict with %N").
    notes: dict[int, str] = field(default_factory=dict)
    accesses_checked: int = 0

    @property
    def ok(self) -> bool:
        return not any(d.is_error for d in self.diagnostics)


def _keys_definitely_equal(a: ir.BeginAccessInst, b: ir.BeginAccessInst) -> bool:
    if a.key.id == b.key.id:
        return True
    pa, pb = a.key.producer, b.key.producer
    if isinstance(pa, ir.ConstInst) and isinstance(pb, ir.ConstInst):
        try:
            return bool(pa.literal == pb.literal)
        except Exception:
            return False
    return False


def _keys_definitely_unequal(a: ir.BeginAccessInst, b: ir.BeginAccessInst) -> bool:
    pa, pb = a.key.producer, b.key.producer
    if isinstance(pa, ir.ConstInst) and isinstance(pb, ir.ConstInst):
        try:
            return bool(pa.literal != pb.literal)
        except Exception:
            return False
    return False


def _bases_definitely_alias(a: ir.BeginAccessInst, b: ir.BeginAccessInst) -> bool:
    return a.base.id == b.base.id


def check_exclusivity(
    func: ir.Function, aliases: Optional[AliasInfo] = None
) -> BorrowReport:
    """Statically check every formal access scope in ``func``."""
    report = BorrowReport()
    aliases = aliases if aliases is not None else analyze_aliases(func)
    blocks = func.reachable_blocks()

    begins: dict[int, ir.BeginAccessInst] = {}
    for block in blocks:
        for inst in block.instructions:
            if isinstance(inst, ir.BeginAccessInst):
                begins[inst.results[0].id] = inst
    report.accesses_checked = len(begins)
    if not begins:
        return report

    # Forward may-be-open fixpoint (union join).  Conflicts are collected as
    # unordered pairs so fixpoint revisits don't duplicate diagnostics.
    state: dict[int, set[int]] = {id(func.entry): set()}
    conflicts: dict[frozenset, str] = {}
    worklist = [func.entry]
    while worklist:
        block = worklist.pop()
        open_now = set(state.get(id(block), set()))
        for inst in block.instructions:
            if isinstance(inst, ir.BeginAccessInst):
                for open_id in sorted(open_now):
                    verdict = _classify(begins[open_id], inst, aliases)
                    if verdict is not None:
                        pair = frozenset((open_id, inst.results[0].id))
                        conflicts[pair] = verdict
                open_now.add(inst.results[0].id)
            elif isinstance(inst, ir.EndAccessInst):
                open_now.discard(inst.token.id)
        for succ in _successors(block):
            prev = state.get(id(succ))
            new = set(open_now) if prev is None else prev | open_now
            if prev is None or new != prev:
                state[id(succ)] = new
                worklist.append(succ)

    for pair, verdict in sorted(
        conflicts.items(), key=lambda kv: sorted(kv[0])
    ):
        first_id, second_id = sorted(pair)
        first, second = begins[first_id], begins[second_id]
        if verdict == "error":
            message = (
                f"@{func.name}: overlapping exclusive accesses to the same "
                f"location: {second} conflicts with the enclosing {first}; "
                "this program traps with BorrowError at runtime"
            )
            severity = "error"
            note = f"conflict with {first.results[0]!r}"
        else:
            message = (
                f"@{func.name}: potentially overlapping accesses: {second} "
                f"may conflict with the enclosing {first}; a dynamic "
                "exclusivity check is required"
            )
            severity = "warning"
            note = f"may conflict with {first.results[0]!r}"
        report.diagnostics.append(Diagnostic(severity, message, second.loc))
        report.notes[id(second)] = note

    for begin in begins.values():
        report.notes.setdefault(
            id(begin),
            "exclusive" if begin.kind == "modify" else "shared read",
        )
    return report


def _classify(
    held: ir.BeginAccessInst, new: ir.BeginAccessInst, aliases: AliasInfo
) -> Optional[str]:
    """Classify a (held, new) access pair: None | "warning" | "error"."""
    if held.kind == "read" and new.kind == "read":
        return None
    if held.key_kind != new.key_kind:
        return None
    if _keys_definitely_unequal(held, new):
        return None
    if not aliases.may_alias(held.base, new.base):
        return None
    if _bases_definitely_alias(held, new) and _keys_definitely_equal(held, new):
        return "error"
    return "warning"


def _successors(block: ir.Block) -> list[ir.Block]:
    term = block.terminator
    if isinstance(term, ir.BrInst):
        return [term.dest]
    if isinstance(term, ir.CondBrInst):
        return [term.true_dest, term.false_dest]
    return []
