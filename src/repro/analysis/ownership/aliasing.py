"""Intraprocedural alias and escape analysis over SIL (ownership step 1).

Every SSA value is mapped to a set of abstract **storage roots** — the
places whose memory the value may share.  Roots are introduced by function
parameters, mutable constants, and instructions that create fresh storage;
projections (``index_get``/``slice_get``/``tuple_extract``/
``struct_extract``) propagate their operand's roots because in Python
runtime semantics an interior read of an aggregate may return a shared
sub-object.

Two values *may alias* iff their root sets intersect.  The analysis is a
forward fixpoint across branch edges (block arguments join by union), so a
value flowing around a loop keeps every root it may have picked up on any
path.

Escape analysis rides along: a root **escapes** when a value carrying it is
passed to an opaque callee (indirect apply or a non-whitelisted impure
primitive) or returned.  The borrow checker treats non-escaping roots as
fully visible: every mutation of them goes through a formal access in the
function body.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sil import ir
from repro.sil.primitives import Primitive

#: Primitives whose result may share storage with their first operand.
PROJECTION_PRIMS = {"index_get", "slice_get"}

#: Primitives whose result aggregates its operands: fresh outer storage
#: whose interior may share with every argument.
AGGREGATION_PRIMS = {"list_make", "tuple_make"}

#: Primitives producing storage that is *logically* fresh.  ``value_copy``
#: belongs here even though a COW logical copy physically shares storage
#: with its source: the pair is logically independent (exclusivity keys on
#: the owner, and a mutation of either side deep-copies first), so the
#: borrow checker must not see them as aliases.  The physical-sharing fact
#: is tracked separately by the copy-materialization inference.
FRESH_PRIMS = {"value_copy"}

#: Literal types that are immutable and therefore never storage roots.
_IMMUTABLE_LITERALS = (
    type(None),
    bool,
    int,
    float,
    complex,
    str,
    bytes,
    range,
    frozenset,
)


def _literal_is_storage(literal: object) -> bool:
    if isinstance(literal, _IMMUTABLE_LITERALS):
        return False
    if isinstance(literal, tuple):
        return any(_literal_is_storage(e) for e in literal)
    if callable(literal):
        return False
    return True


@dataclass
class AliasInfo:
    """Result of alias/escape analysis for one function."""

    #: value id -> abstract storage roots (frozenset of root tokens).
    roots: dict[int, frozenset] = field(default_factory=dict)
    #: root tokens that may be reachable from outside the function.
    escaped_roots: set = field(default_factory=set)
    #: value ids whose storage is freshly allocated inside the function.
    fresh: set[int] = field(default_factory=set)

    def roots_of(self, value: ir.Value) -> frozenset:
        return self.roots.get(value.id, frozenset())

    def may_alias(self, a: ir.Value, b: ir.Value) -> bool:
        """May ``a`` and ``b`` share storage?"""
        if a.id == b.id:
            return True
        return bool(self.roots_of(a) & self.roots_of(b))

    def escapes(self, value: ir.Value) -> bool:
        return bool(self.roots_of(value) & self.escaped_roots)


def _apply_roots(
    inst: ir.ApplyInst, roots: dict[int, frozenset], info: AliasInfo
) -> frozenset:
    fresh_root = ("fresh", inst.results[0].id)
    if inst.is_indirect:
        # Opaque callee: the result may alias any argument (or the callee
        # object itself), and every argument escapes.
        arg_roots: set = {fresh_root}
        for arg in inst.args:
            arg_roots |= roots.get(arg.id, frozenset())
            info.escaped_roots |= roots.get(arg.id, frozenset())
        return frozenset(arg_roots)

    target = inst.callee.target
    if isinstance(target, Primitive):
        if target.name in PROJECTION_PRIMS:
            base = inst.args[0] if inst.args else None
            return roots.get(base.id, frozenset()) if base else frozenset()
        if target.name in FRESH_PRIMS:
            info.fresh.add(inst.results[0].id)
            return frozenset({fresh_root})
        if target.name in AGGREGATION_PRIMS:
            info.fresh.add(inst.results[0].id)
            agg: set = {fresh_root}
            for arg in inst.args:
                agg |= roots.get(arg.id, frozenset())
            return frozenset(agg)
        if target.pure:
            # Pure computation builds a new value from its operands.
            info.fresh.add(inst.results[0].id)
            return frozenset({fresh_root})
        # Impure unknown primitive: conservative, like an opaque call.
        arg_roots = {fresh_root}
        for arg in inst.args:
            arg_roots |= roots.get(arg.id, frozenset())
            info.escaped_roots |= roots.get(arg.id, frozenset())
        return frozenset(arg_roots)

    if isinstance(target, ir.Function):
        # A lowered callee is value-semantic but uninspected here: its result
        # may alias any argument (it may return one of them).
        arg_roots = {fresh_root}
        for arg in inst.args:
            arg_roots |= roots.get(arg.id, frozenset())
        return frozenset(arg_roots)

    # Opaque direct callee object.
    arg_roots = {fresh_root}
    for arg in inst.args:
        arg_roots |= roots.get(arg.id, frozenset())
        info.escaped_roots |= roots.get(arg.id, frozenset())
    return frozenset(arg_roots)


def analyze_aliases(func: ir.Function) -> AliasInfo:
    """Compute may-alias root sets and escape facts for ``func``."""
    info = AliasInfo()
    roots = info.roots
    blocks = func.reachable_blocks()

    for i, param in enumerate(func.params):
        roots[param.id] = frozenset({("param", i)})

    changed = True
    while changed:
        changed = False
        for block in blocks:
            for inst in block.instructions:
                if inst.is_terminator:
                    for dest, args in _edges(inst):
                        for param, arg in zip(dest.args, args):
                            merged = roots.get(param.id, frozenset()) | roots.get(
                                arg.id, frozenset()
                            )
                            if merged != roots.get(param.id, frozenset()):
                                roots[param.id] = merged
                                changed = True
                    continue
                if isinstance(inst, ir.AccessStoreInst):
                    # Storing an aggregate into a container makes the
                    # container's interior share with the stored value.
                    begin = inst.token.producer
                    if isinstance(begin, ir.BeginAccessInst):
                        base_roots = roots.get(begin.base.id, frozenset())
                        merged = base_roots | roots.get(inst.value.id, frozenset())
                        if merged != base_roots:
                            roots[begin.base.id] = merged
                            changed = True
                    continue
                new = _instruction_roots(inst, roots, info)
                for res in inst.results:
                    if new != roots.get(res.id, frozenset()):
                        roots[res.id] = roots.get(res.id, frozenset()) | new
                        changed = True

    for block in blocks:
        term = block.terminator
        if isinstance(term, ir.ReturnInst):
            info.escaped_roots |= roots.get(term.value.id, frozenset())
    return info


def _instruction_roots(
    inst: ir.Instruction, roots: dict[int, frozenset], info: AliasInfo
) -> frozenset:
    if isinstance(inst, ir.ConstInst):
        if _literal_is_storage(inst.literal):
            # Mutable storage baked into the function body may be shared
            # across calls; give it a stable per-instruction root.
            return frozenset({("const", inst.results[0].id)})
        return frozenset()
    if isinstance(inst, ir.ApplyInst):
        return _apply_roots(inst, roots, info)
    if isinstance(inst, ir.TupleInst):
        merged: set = set()
        for op in inst.operands:
            merged |= roots.get(op.id, frozenset())
        return frozenset(merged)
    if isinstance(inst, (ir.TupleExtractInst, ir.StructExtractInst)):
        return roots.get(inst.operands[0].id, frozenset())
    if isinstance(inst, ir.BeginAccessInst):
        # The token is not itself storage; borrow checking resolves it back
        # to its base via ``Value.producer``.
        return frozenset()
    if isinstance(inst, ir.AccessLoadInst):
        begin = inst.token.producer
        if isinstance(begin, ir.BeginAccessInst):
            return roots.get(begin.base.id, frozenset())
        return frozenset()
    if isinstance(inst, (ir.AccessStoreInst, ir.EndAccessInst)):
        return frozenset()
    return frozenset()


def _edges(term: ir.Instruction):
    if isinstance(term, ir.BrInst):
        return [(term.dest, list(term.operands))]
    if isinstance(term, ir.CondBrInst):
        return [
            (term.true_dest, list(term.true_args)),
            (term.false_dest, list(term.false_args)),
        ]
    return []
