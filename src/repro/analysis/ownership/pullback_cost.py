"""Pullback cost analysis (ownership step 4, Appendix B of the paper).

Classifies the asymptotic cost of the pullback that derivative synthesis
(:mod:`repro.core.synthesis`) would attach to each active apply site, under
one of two cotangent representations:

* ``"mvs"`` — the mutable-value-semantics formulation the reproduction
  actually uses: adjoints accumulate sparsely into per-value slots, so the
  pullback of ``index_get`` touches exactly one element — **O(1)**;
* ``"functional"`` — the naive purely-functional formulation of Appendix B
  (cf. ``subscript_with_functional_pullback`` in
  :mod:`repro.core.pullback_styles`): every subscript pullback materializes
  a dense zero cotangent array and writes one slot — **O(n)** in the array
  length, per subscript.

The analyzer is static — it never executes the function.  A site is only
classified when it is *active* (varied w.r.t. ``wrt`` and useful to the
result); inactive applies get no pullback and therefore no cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.activity import analyze_activity
from repro.sil import ir
from repro.sil.primitives import Primitive

STYLES = ("mvs", "functional")


@dataclass
class PullbackCostReport:
    """Per-site pullback cost classification for one (function, wrt, style)."""

    style: str = "mvs"
    #: ``id(inst)`` -> (cost class, reason).
    sites: dict[int, tuple[str, str]] = field(default_factory=dict)
    #: printable per-instruction notes for the annotating printer.
    notes: dict[int, str] = field(default_factory=dict)
    active_sites: int = 0

    @property
    def overall(self) -> str:
        """O(n) as soon as any single pullback is O(n), else O(1) per site."""
        return (
            "O(n)"
            if any(cost == "O(n)" for cost, _ in self.sites.values())
            else "O(1)"
        )


def _classify(prim: Primitive, style: str) -> tuple[str, str]:
    if prim.name == "index_get":
        if style == "mvs":
            return (
                "O(1)",
                "adjoint accumulates sparsely into the subscript's slot",
            )
        return (
            "O(n)",
            "functional pullback materializes a dense zero cotangent array",
        )
    if prim.name == "slice_get":
        if style == "mvs":
            return ("O(k)", "adjoint writes only the k sliced elements")
        return (
            "O(n)",
            "functional pullback materializes a dense zero cotangent array",
        )
    return ("O(1)", "pullback work proportional to the primal operation")


def analyze_pullback_cost(
    func: ir.Function,
    wrt: Optional[Sequence[int]] = None,
    style: str = "mvs",
) -> PullbackCostReport:
    """Classify the pullback cost of every active apply site in ``func``."""
    if style not in STYLES:
        raise ValueError(f"unknown pullback style {style!r}; expected {STYLES}")
    wrt_t = tuple(wrt) if wrt is not None else tuple(range(len(func.params)))
    activity = analyze_activity(func, wrt_t)
    report = PullbackCostReport(style=style)

    for block in func.reachable_blocks():
        for inst in block.instructions:
            if not isinstance(inst, ir.ApplyInst) or inst.is_indirect:
                continue
            target = inst.callee.target
            if not isinstance(target, Primitive):
                continue
            if not activity.is_active(inst):
                continue
            cost, reason = _classify(target, style)
            report.sites[id(inst)] = (cost, reason)
            report.notes[id(inst)] = f"pullback {cost}: {reason}"
            report.active_sites += 1
    return report
