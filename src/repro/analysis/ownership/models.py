"""Lowerable model corpus for the ownership analyses.

The real optimizers in :mod:`repro.optim.optimizers` walk parameter trees
with higher-order ``tree_map`` lambdas, which is outside the lowered SIL
subset.  This module provides semantically equivalent **flat** update loops
written in the subset (subscript loads/stores over a parameter array), so
the static analyses can be exercised — and cross-checked against the real
runtime — on exactly the mutation pattern the paper's Section 4.3 cares
about: optimizer updates that must materialize **zero** parameter copies.

It also hosts the seeded exclusivity-violation suite: small programs whose
formal access scopes overlap.  Each entry records the verdict the static
borrow checker must produce (``"error"`` for certain violations that trap
with ``BorrowError`` on every run, ``"warning"`` for may-conflicts that
need the dynamic check), so the self-check can assert the checker flags
every one of them — with zero false positives on the clean corpus.
"""

from __future__ import annotations

import math

from repro.valsem.inout import borrow_attr, borrow_item

# ---------------------------------------------------------------------------
# Clean corpus: optimizer update loops (all stores must be in-place).
# ---------------------------------------------------------------------------


def sgd_update(params, grads, lr):
    n = len(params)
    i = 0
    while i < n:
        params[i] = params[i] - grads[i] * lr
        i = i + 1
    return params


def momentum_update(params, velocity, grads, lr, beta):
    n = len(params)
    i = 0
    while i < n:
        velocity[i] = velocity[i] * beta + grads[i]
        params[i] = params[i] - velocity[i] * lr
        i = i + 1
    return params


def adam_update(params, m, v, grads, lr, beta1, beta2, eps):
    n = len(params)
    i = 0
    while i < n:
        g = grads[i]
        m[i] = m[i] * beta1 + g * (1.0 - beta1)
        v[i] = v[i] * beta2 + g * g * (1.0 - beta2)
        params[i] = params[i] - lr * m[i] / (math.sqrt(v[i]) + eps)
        i = i + 1
    return params


def rmsprop_update(params, sq, grads, lr, rho, eps):
    n = len(params)
    i = 0
    while i < n:
        g = grads[i]
        sq[i] = sq[i] * rho + g * g * (1.0 - rho)
        params[i] = params[i] - lr * g / (math.sqrt(sq[i]) + eps)
        i = i + 1
    return params


#: The update loops the CI ownership sweep runs (3 optimizers + momentum).
OPTIMIZER_MODELS = {
    "sgd_update": sgd_update,
    "momentum_update": momentum_update,
    "adam_update": adam_update,
    "rmsprop_update": rmsprop_update,
}


# ---------------------------------------------------------------------------
# Clean corpus: borrow scopes that must NOT be flagged (negative controls).
# ---------------------------------------------------------------------------


def disjoint_keys_ok(xs):
    with borrow_item(xs, 0) as ref:
        xs[1] = 2.0  # distinct constant key: provably disjoint location
        ref.set(1.0)
    return xs[0]


def copy_isolates_ok(xs, i):
    ys = xs.copy()
    with borrow_item(xs, i) as ref:
        ys[i] = 3.0  # distinct owner: logical copies never conflict
        ref.set(1.0)
    return ys[i] + xs[i]


CLEAN_SUITE = [
    sgd_update,
    momentum_update,
    adam_update,
    rmsprop_update,
    disjoint_keys_ok,
    copy_isolates_ok,
]


# ---------------------------------------------------------------------------
# Copy-materialization exemplars.
# ---------------------------------------------------------------------------


def copy_then_write(xs):
    ys = xs.copy()
    ys[0] = 1.0  # must-copy: first write after the logical copy
    ys[1] = 2.0  # in-place: the deep copy above restored uniqueness
    return ys


def array_subscript(values, a, b):
    # ``my_op`` of Appendix B: two subscript reads feeding an add.
    return values[a] + values[b]


# ---------------------------------------------------------------------------
# Seeded exclusivity-violation suite.
# ---------------------------------------------------------------------------


class TinyModel:
    """Minimal attribute-holding value for attr-borrow programs."""

    def __init__(self, weight=0.0, bias=0.0):
        self.weight = weight
        self.bias = bias


def double_borrow_same_item(xs, i):
    with borrow_item(xs, i) as outer:
        with borrow_item(xs, i) as inner:  # certain overlap: same owner+key
            inner.set(1.0)
        outer.set(2.0)
    return xs[i]


def write_under_attr_borrow(model):
    with borrow_attr(model, "weight") as ref:
        model.weight = 0.0  # second modify access to the borrowed attribute
        ref.set(1.0)
    return model.weight


def aug_assign_under_borrow(xs, i):
    with borrow_item(xs, i) as ref:
        xs[i] += 1.0  # read-modify-write opens a second modify access
        ref.set(0.0)
    return xs[i]


def aliased_writes_may_conflict(xs, i, j):
    with borrow_item(xs, i) as ref:
        xs[j] = 0.0  # conflicts iff i == j: needs the dynamic check
        ref.set(1.0)
    return xs[i]


#: (function, verdict the static borrow checker must produce).
VIOLATION_SUITE = [
    (double_borrow_same_item, "error"),
    (write_under_attr_borrow, "error"),
    (aug_assign_under_borrow, "error"),
    (aliased_writes_may_conflict, "warning"),
]
