"""Batched ownership diagnostics and per-instruction SIL annotation.

Ties the three ownership analyses together the way :mod:`repro.core.lint`
ties activity analysis to diagnostics: run everything, collect one batch of
:class:`~repro.errors.Diagnostic`, and render the verdicts inline in the
printed SIL via the printer's annotation hook::

    %5 = begin_access [modify] %0#xs, item %1#i   // exclusive
    access_store %5, %4                           // in-place
    %8 = apply @index_get(%0#xs, %1#i)            // pullback O(1): ...

``python -m repro.analysis --ownership <fn>`` prints exactly this form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.ownership.aliasing import AliasInfo, analyze_aliases
from repro.analysis.ownership.borrow import BorrowReport, check_exclusivity
from repro.analysis.ownership.copies import CopyInfo, infer_copies
from repro.analysis.ownership.pullback_cost import (
    PullbackCostReport,
    analyze_pullback_cost,
)
from repro.errors import Diagnostic, VerificationError, render_diagnostics
from repro.sil import ir
from repro.sil.printer import Annotations, print_function


@dataclass
class OwnershipReport:
    """Everything the ownership analyses know about one function."""

    func: ir.Function
    aliases: AliasInfo
    borrow: BorrowReport
    copies: CopyInfo
    cost: PullbackCostReport

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return list(self.borrow.diagnostics)

    @property
    def ok(self) -> bool:
        return self.borrow.ok

    def annotations(self) -> Annotations:
        notes: Annotations = {}
        notes.update(self.cost.notes)
        notes.update(self.copies.notes)
        notes.update(self.borrow.notes)
        return notes

    def render(self) -> str:
        """Annotated SIL listing followed by the diagnostic batch."""
        parts = [print_function(self.func, self.annotations())]
        if self.diagnostics:
            parts.append(render_diagnostics(self.diagnostics))
        summary = (
            f"// {self.borrow.accesses_checked} access(es), "
            f"{self.copies.mutation_sites} mutation site(s): "
            f"{self.copies.in_place} in-place, "
            f"{self.copies.must_copy} must-copy, "
            f"{self.copies.may_copy} may-copy; "
            f"pullback {self.cost.overall} ({self.cost.style} style)"
        )
        parts.append(summary)
        return "\n".join(parts)


def analyze_ownership(
    func: ir.Function,
    wrt: Optional[Sequence[int]] = None,
    style: str = "mvs",
) -> OwnershipReport:
    """Run alias, borrow, copy, and pullback-cost analysis over ``func``."""
    aliases = analyze_aliases(func)
    return OwnershipReport(
        func=func,
        aliases=aliases,
        borrow=check_exclusivity(func, aliases),
        copies=infer_copies(func, aliases),
        cost=analyze_pullback_cost(func, wrt, style),
    )


def check_ownership(func: ir.Function) -> list[Diagnostic]:
    """Raise :class:`VerificationError` carrying every certain exclusivity
    violation; return the full diagnostic batch (warnings included)
    otherwise — the same contract as ``check_differentiability``."""
    report = analyze_ownership(func)
    errors = [d for d in report.diagnostics if d.is_error]
    if errors:
        raise VerificationError(
            f"@{func.name}: {len(errors)} exclusivity violation(s):\n"
            + render_diagnostics(errors)
        )
    return report.diagnostics
