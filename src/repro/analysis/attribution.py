"""Per-pass invariant attribution (``verify_each`` mode).

When enabled, the SIL pipeline (:mod:`repro.sil.passes.pipeline`) and the
HLO pipeline (:mod:`repro.hlo.passes`) re-verify the IR after *every* pass
iteration.  On failure the error names the offending pass and carries the
printed IR from immediately before and after it, so a bug introduced by a
rewrite is attributed to the rewrite — not to whichever downstream consumer
happens to trip over it first.

The mode can be requested per call (the ``verify_each`` keyword) or
globally (:func:`set_verify_each`, used by the CLIs' ``--verify`` flags and
the analysis self-check).  This module is deliberately import-light (only
``repro.errors``) because both pass pipelines import it at module load.
"""

from __future__ import annotations

from contextlib import contextmanager

_VERIFY_EACH = False


def set_verify_each(enabled: bool) -> None:
    """Globally enable/disable per-pass verification."""
    global _VERIFY_EACH
    _VERIFY_EACH = bool(enabled)


def verify_each_enabled(explicit: bool | None = None) -> bool:
    """Resolve a per-call ``verify_each`` argument against the global mode."""
    return _VERIFY_EACH if explicit is None else bool(explicit)


@contextmanager
def verify_each():
    """Context manager form: per-pass verification inside the block."""
    global _VERIFY_EACH
    prior = _VERIFY_EACH
    _VERIFY_EACH = True
    try:
        yield
    finally:
        _VERIFY_EACH = prior


def attribute_failure(
    pass_name: str, unit_name: str, error: Exception, before: str, after: str
) -> str:
    """Format a per-pass verification failure with before/after IR dumps."""
    return (
        f"pass {pass_name!r} broke invariants of {unit_name}: {error}\n"
        f"--- IR before {pass_name} ---\n{before}\n"
        f"--- IR after {pass_name} ---\n{after}"
    )
