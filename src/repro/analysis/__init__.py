"""Cross-layer static analysis: verifiers, linters, and per-pass checking.

The subsystem spans the three IR layers of the reproduction:

* **SIL** — structural SSA verification (:func:`repro.sil.verify.verify`)
  plus typed checking of operand/result arity and dtypes
  (:func:`repro.sil.typecheck.typecheck` / ``verify_typed``);
* **HLO** — whole-module verification re-running shape inference and
  checking DAG/fusion well-formedness (:func:`repro.hlo.verify.verify_module`);
* **AD core** — the differentiability linter collecting batched
  pre-synthesis diagnostics (:func:`repro.core.lint.lint_function` /
  ``check_differentiability``);
* **per-pass attribution** — ``verify_each`` mode for both pass pipelines
  (:mod:`repro.analysis.attribution`), naming the offending pass on failure;
* **ownership** — static mutable-value-semantics checking
  (:mod:`repro.analysis.ownership`): alias/escape analysis, the borrow
  checker proving the law of exclusivity over formal access scopes,
  copy-materialization inference, and the Appendix-B pullback cost
  analyzer;
* **tracing** — static trace-stability analysis for LazyTensor
  (:mod:`repro.analysis.tracing`): cache-key canonicalization with an
  executable-equivalence checker, the retrace-storm detector with
  promote-to-input fix-its, the unrolling/barrier analyzer, and forward
  shape/dtype inference over TraceNode DAGs before lowering;
* **derivatives** — static derivative-correctness verification
  (:mod:`repro.analysis.derivatives`): pullback linearity by abstract
  interpretation, JVP/VJP transpose consistency (⟨Jv, w⟩ = ⟨v, Jᵀw⟩),
  pullback-record typing against tangent spaces, and the cotangent
  liveness analysis behind ``vjp_plan(..., prune_captures=True)`` — all
  cross-checked against seeded numeric probes;
* **concurrency** — static concurrency-safety analysis for the parallel
  engine (:mod:`repro.analysis.concurrency`): the shared-state inventory
  with its ``guarded_by`` registry, lockset race detection over Python
  ASTs, the lock-order deadlock graph cross-checked against the
  instrumented-lock dynamic witness, and replica-merge determinism
  verification;
* **memory** — static memory planning for HLO
  (:mod:`repro.analysis.memory`): instruction-level liveness over module
  schedules, interval-coloring buffer assignment with safe in-place
  donations, peak-memory certification with per-pass attribution
  (cross-checked against the runtime tracker: sound everywhere, exact on
  straight-line traces), and over-budget diagnostics with
  recompute-or-spill fix-its.

``python -m repro.analysis --self-check`` runs every verifier over every
registered primitive's synthesized JVP/VJP and over the HLO modules the
LeNet-5 trace benchmark produces; ``--ownership <fn>`` prints one
function's SIL with per-instruction ownership annotations;
``--trace <program|all>`` proves cache behavior for a step program from
the seeded trace corpus and cross-checks it against the runtime;
``--derivatives <model|all>`` runs the derivative verifier over the
seeded derivative corpus (or any ``module:function``);
``--concurrency <runtime|corpus|model|all>`` runs the concurrency-safety
analysis over the real parallel engine and/or the seeded hazard corpus;
``--memory <program|all>`` certifies peak memory for a step program from
the seeded memory corpus and cross-checks it against the runtime tracker.

This ``__init__`` resolves its re-exports lazily: the pass pipelines import
:mod:`repro.analysis.attribution` at module load, and an eager init here
would cycle back into ``repro.sil``/``repro.hlo``.
"""

from __future__ import annotations

from repro.analysis.attribution import (  # noqa: F401  (import-light)
    attribute_failure,
    set_verify_each,
    verify_each,
    verify_each_enabled,
)

_LAZY = {
    "typecheck": ("repro.sil.typecheck", "typecheck"),
    "verify_typed": ("repro.sil.typecheck", "verify_typed"),
    "verify_sil": ("repro.sil.verify", "verify"),
    "verify_module": ("repro.hlo.verify", "verify_module"),
    "verify_computation": ("repro.hlo.verify", "verify_computation"),
    "lint_function": ("repro.core.lint", "lint_function"),
    "check_differentiability": ("repro.core.lint", "check_differentiability"),
    "self_check": ("repro.analysis.selfcheck", "self_check"),
    "SelfCheckReport": ("repro.analysis.selfcheck", "SelfCheckReport"),
    "analyze_aliases": ("repro.analysis.ownership", "analyze_aliases"),
    "analyze_ownership": ("repro.analysis.ownership", "analyze_ownership"),
    "analyze_pullback_cost": ("repro.analysis.ownership", "analyze_pullback_cost"),
    "check_exclusivity": ("repro.analysis.ownership", "check_exclusivity"),
    "check_ownership": ("repro.analysis.ownership", "check_ownership"),
    "infer_copies": ("repro.analysis.ownership", "infer_copies"),
    "OwnershipReport": ("repro.analysis.ownership", "OwnershipReport"),
    "analyze_stability": ("repro.analysis.tracing", "analyze_stability"),
    "analyze_growth": ("repro.analysis.tracing", "analyze_growth"),
    "analyze_step_program": ("repro.analysis.tracing", "analyze_step_program"),
    "analyze_trace_program": ("repro.analysis.tracing", "analyze_trace_program"),
    "canonicalize": ("repro.analysis.tracing", "canonicalize"),
    "cache_key": ("repro.analysis.tracing", "cache_key"),
    "capture_step_traces": ("repro.analysis.tracing", "capture_step_traces"),
    "check_trace": ("repro.analysis.tracing", "check_trace"),
    "infer_trace_shapes": ("repro.analysis.tracing", "infer_trace_shapes"),
    "traces_equivalent": ("repro.analysis.tracing", "traces_equivalent"),
    "CanonicalTrace": ("repro.analysis.tracing", "CanonicalTrace"),
    "TraceStabilityReport": ("repro.analysis.tracing", "TraceStabilityReport"),
    "analyze_capture_liveness": (
        "repro.analysis.derivatives",
        "analyze_capture_liveness",
    ),
    "analyze_derivative_model": (
        "repro.analysis.derivatives",
        "analyze_derivative_model",
    ),
    "check_pullback_linearity": (
        "repro.analysis.derivatives",
        "check_pullback_linearity",
    ),
    "check_record_typing": ("repro.analysis.derivatives", "check_record_typing"),
    "check_transpose": ("repro.analysis.derivatives", "check_transpose"),
    "prunable_instruction_ids": (
        "repro.analysis.derivatives",
        "prunable_instruction_ids",
    ),
    "verify_derivatives": ("repro.analysis.derivatives", "verify_derivatives"),
    "DerivativeReport": ("repro.analysis.derivatives", "DerivativeReport"),
    "analyze_runtime": ("repro.analysis.concurrency", "analyze_runtime"),
    "analyze_corpus": ("repro.analysis.concurrency", "analyze_corpus"),
    "analyze_locksets": ("repro.analysis.concurrency", "analyze_locksets"),
    "build_inventory": ("repro.analysis.concurrency", "build_inventory"),
    "build_lock_order": ("repro.analysis.concurrency", "build_lock_order"),
    "verify_merges": ("repro.analysis.concurrency", "verify_merges"),
    "ConcurrencyReport": ("repro.analysis.concurrency", "ConcurrencyReport"),
    "GuardRegistry": ("repro.analysis.concurrency", "GuardRegistry"),
    "analyze_liveness": ("repro.analysis.memory", "analyze_liveness"),
    "plan_buffers": ("repro.analysis.memory", "plan_buffers"),
    "validate_plan": ("repro.analysis.memory", "validate_plan"),
    "certify": ("repro.analysis.memory", "certify"),
    "certify_module": ("repro.analysis.memory", "certify_module"),
    "attribute_passes": ("repro.analysis.memory", "attribute_passes"),
    "analyze_memory_model": ("repro.analysis.memory", "analyze_memory_model"),
    "buffer_annotations": ("repro.analysis.memory", "buffer_annotations"),
    "MemoryPlan": ("repro.analysis.memory", "MemoryPlan"),
    "MemoryPlanReport": ("repro.analysis.memory", "MemoryPlanReport"),
    "PeakCertificate": ("repro.analysis.memory", "PeakCertificate"),
}

__all__ = [
    "attribute_failure",
    "set_verify_each",
    "verify_each",
    "verify_each_enabled",
    *_LAZY,
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
