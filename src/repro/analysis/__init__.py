"""Cross-layer static analysis: verifiers, linters, and per-pass checking.

The subsystem spans the three IR layers of the reproduction:

* **SIL** — structural SSA verification (:func:`repro.sil.verify.verify`)
  plus typed checking of operand/result arity and dtypes
  (:func:`repro.sil.typecheck.typecheck` / ``verify_typed``);
* **HLO** — whole-module verification re-running shape inference and
  checking DAG/fusion well-formedness (:func:`repro.hlo.verify.verify_module`);
* **AD core** — the differentiability linter collecting batched
  pre-synthesis diagnostics (:func:`repro.core.lint.lint_function` /
  ``check_differentiability``);
* **per-pass attribution** — ``verify_each`` mode for both pass pipelines
  (:mod:`repro.analysis.attribution`), naming the offending pass on failure.

``python -m repro.analysis --self-check`` runs every verifier over every
registered primitive's synthesized JVP/VJP and over the HLO modules the
LeNet-5 trace benchmark produces.

This ``__init__`` resolves its re-exports lazily: the pass pipelines import
:mod:`repro.analysis.attribution` at module load, and an eager init here
would cycle back into ``repro.sil``/``repro.hlo``.
"""

from __future__ import annotations

from repro.analysis.attribution import (  # noqa: F401  (import-light)
    attribute_failure,
    set_verify_each,
    verify_each,
    verify_each_enabled,
)

_LAZY = {
    "typecheck": ("repro.sil.typecheck", "typecheck"),
    "verify_typed": ("repro.sil.typecheck", "verify_typed"),
    "verify_sil": ("repro.sil.verify", "verify"),
    "verify_module": ("repro.hlo.verify", "verify_module"),
    "verify_computation": ("repro.hlo.verify", "verify_computation"),
    "lint_function": ("repro.core.lint", "lint_function"),
    "check_differentiability": ("repro.core.lint", "check_differentiability"),
    "self_check": ("repro.analysis.selfcheck", "self_check"),
    "SelfCheckReport": ("repro.analysis.selfcheck", "SelfCheckReport"),
}

__all__ = [
    "attribute_failure",
    "set_verify_each",
    "verify_each",
    "verify_each_enabled",
    *_LAZY,
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(__all__)
