"""Drive the memory planner over a corpus program and cross-check it.

For every captured step trace: lower, optimize (recording per-pass peak
attribution), run liveness + buffer assignment + validation + peak
certification + budget checking — then compare the certificate against
the dynamic oracle, the per-trace transient peak
:class:`repro.runtime.memory.TraceAttribution` recorded while the program
actually ran.  The contract:

* ``certified >= observed`` on **every** trace (soundness);
* ``certified == observed`` on straight-line traces (exactness);
* clean programs produce zero error diagnostics; seeded hazards produce
  exactly their expected verdict, located in the corpus source.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import Diagnostic, SourceLocation

from .bufferplan import MemoryPlan, plan_buffers, validate_plan
from .liveness import LivenessInfo, analyze_liveness
from .models import CORPUS, MemoryProgram, get_program
from .peak import PassAttribution, PeakCertificate, attribute_passes, certify
from .remat import RematCandidate, budget_diagnostics

#: Diagnostic message prefix -> corpus verdict label.
_VERDICT_PREFIXES = (
    ("tuple-aliasing", "tuple-aliasing"),
    ("unsafe in-place", "unsafe-in-place"),
    ("unsafe buffer reuse", "unsafe-reuse"),
    ("over budget", "over-budget"),
)


def _verdict_of(diag: Diagnostic) -> Optional[str]:
    for prefix, label in _VERDICT_PREFIXES:
        if diag.message.startswith(prefix):
            return label
    return None


@dataclass
class TraceMemoryCheck:
    """The planner's verdict for one unique trace of a program."""

    trace_key: str
    liveness: LivenessInfo
    plan: MemoryPlan
    certificate: PeakCertificate
    pass_attribution: PassAttribution
    observed_peak_bytes: Optional[int]
    diagnostics: list[Diagnostic] = field(default_factory=list)
    remat: list[RematCandidate] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        """certified >= observed (the bound held)."""
        return (
            self.observed_peak_bytes is not None
            and self.certificate.certified_peak_bytes
            >= self.observed_peak_bytes
        )

    @property
    def exact(self) -> bool:
        return (
            self.observed_peak_bytes is not None
            and self.certificate.certified_peak_bytes
            == self.observed_peak_bytes
        )


@dataclass
class MemoryPlanReport:
    """Everything the memory analysis concluded about one corpus program."""

    program: MemoryProgram
    location: SourceLocation
    checks: list[TraceMemoryCheck] = field(default_factory=list)

    def diagnostics(self) -> list[Diagnostic]:
        return [d for c in self.checks for d in c.diagnostics]

    def verdicts(self) -> set[str]:
        found = {
            v
            for d in self.diagnostics()
            if d.is_error and (v := _verdict_of(d)) is not None
        }
        return found or {"clean"}

    @property
    def cross_check_ok(self) -> bool:
        """Static and dynamic halves agree: every trace's bound held, was
        exact when the trace is straight-line, and the corpus declaration
        of straight-line-ness matches what liveness derived."""
        if not self.checks:
            return False
        for c in self.checks:
            if not c.sound:
                return False
            if c.liveness.straight_line != self.program.straight_line:
                return False
            if c.liveness.straight_line and not c.exact:
                return False
        return True

    @property
    def reuse_factor(self) -> float:
        factors = [c.certificate.reuse_factor for c in self.checks]
        return max(factors) if factors else 1.0

    def render(self) -> str:
        lines = [
            f"memory plan report: {self.program.name}"
            f" [{self.program.description}]",
            f"  verdicts: {', '.join(sorted(self.verdicts()))}"
            f" (expected {self.program.expect});"
            f" cross-check {'OK' if self.cross_check_ok else 'FAILED'}",
        ]
        for c in self.checks:
            observed = (
                f"{c.observed_peak_bytes} B"
                if c.observed_peak_bytes is not None
                else "(not observed)"
            )
            relation = "==" if c.exact else (">=" if c.sound else "<!")
            lines.append(
                f"  trace {c.trace_key}: certified "
                f"{c.certificate.certified_peak_bytes} B {relation} "
                f"observed {observed}; pool {c.certificate.planned_pool_bytes}"
                f" B of {c.certificate.naive_bytes} B no-reuse "
                f"(reuse {c.certificate.reuse_factor:.2f}x, "
                f"{c.plan.buffers_reused} values share buffers)"
            )
            for e in c.pass_attribution.effects:
                sign = "+" if e.delta > 0 else ""
                lines.append(
                    f"    pass {e.pass_name}: {sign}{e.delta} B"
                    f" -> {e.peak_after} B"
                )
            for d in c.diagnostics:
                lines.append(f"    {d}")
        return "\n".join(lines)


def _program_location(program: MemoryProgram) -> SourceLocation:
    fn = inspect.unwrap(program.build)
    code = fn.__code__
    return SourceLocation(code.co_filename, code.co_firstlineno)


def analyze_memory_program(program: MemoryProgram) -> MemoryPlanReport:
    """Run ``program`` under the dynamic oracle, then certify every unique
    trace it produced and cross-check the two."""
    from repro.analysis.tracing.canonical import canonicalize
    from repro.analysis.tracing.capture import capture_step_traces
    from repro.runtime import memory as runtime_memory
    from repro.tensor.lazy_backend import _lower_to_hlo

    device, step_fn = program.build()
    with runtime_memory.trace_attribution() as attribution:
        capture = capture_step_traces(step_fn, steps=program.steps, device=device)

    location = _program_location(program)
    report = MemoryPlanReport(program=program, location=location)
    seen: set[str] = set()
    for record in capture.fragments:
        key = canonicalize(record.fragment.roots).digest
        if key in seen:
            continue
        seen.add(key)
        module, _params = _lower_to_hlo(record.fragment.to_trace_nodes())
        pass_attribution = attribute_passes(module)
        liveness = analyze_liveness(module)
        plan = plan_buffers(liveness, trace_key=key)
        if program.corrupt is not None:
            plan = program.corrupt(liveness, plan)
        diagnostics = validate_plan(liveness, plan, location=location)
        certificate = certify(liveness, plan, trace_key=key)
        budget_diags, remat = budget_diagnostics(
            liveness, certificate, program.budget_bytes, location=location
        )
        diagnostics.extend(budget_diags)
        report.checks.append(
            TraceMemoryCheck(
                trace_key=key,
                liveness=liveness,
                plan=plan,
                certificate=certificate,
                pass_attribution=pass_attribution,
                observed_peak_bytes=attribution.peak_for(key),
                diagnostics=diagnostics,
                remat=remat,
            )
        )
    return report


def analyze_memory_model(name: str) -> MemoryPlanReport:
    return analyze_memory_program(get_program(name))


def analyze_all_memory_models() -> list[MemoryPlanReport]:
    return [analyze_memory_program(p) for p in CORPUS]


def buffer_annotations(module) -> dict[int, str]:
    """Per-instruction planner annotations for the IR printer."""
    liveness = analyze_liveness(module)
    plan = plan_buffers(liveness)
    notes: dict[int, str] = {}
    for inst in liveness.schedule:
        v = liveness.values[inst.id]
        if v.category == "resident":
            notes[inst.id] = "{resident}"
        elif v.category == "alias":
            roots = ", ".join(
                f"%{liveness.values[r].name}" for r in v.storage_roots
            )
            notes[inst.id] = f"{{alias of {roots}}}" if roots else "{alias}"
        else:
            a = plan.assignments[inst.id]
            start, end = liveness.intervals[inst.id]
            note = f"{{buf={a.buffer}, live=[{start}..{end}]"
            if a.donated_from is not None:
                donor = liveness.values[a.donated_from].name
                note += f", in-place of %{donor}"
            notes[inst.id] = note + "}"
    return notes
