"""Buffer assignment: color non-overlapping liveness intervals into a
reusable buffer pool, and validate any plan against the liveness facts.

The planner is a greedy linear scan over definition order with exact-size
free-list buckets (two values share a buffer only when their true,
alias-extended intervals are disjoint and their sizes match).  It also
detects safe in-place *donations*: an elementwise (or fused-elementwise)
op whose same-sized compute operand dies exactly at the op can write into
the operand's buffer.

:func:`validate_plan` is deliberately independent of the planner — it
re-derives safety from the liveness intervals alone, so it catches
corrupted or hand-built plans:

* **unsafe buffer reuse** — two values share a buffer while both live;
* **unsafe in-place** — a donation into a non-elementwise op, with a size
  mismatch, or while the donor is still live;
* **tuple aliasing** — a buffer still reachable through the module's
  output tuple is reused (the classic "freed my output" planner bug).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import Diagnostic, SourceLocation
from repro.hlo.ir import ELEMENTWISE

from .liveness import LivenessInfo, ValueInfo

#: Opcodes allowed to receive an in-place donation: they read each input
#: element exactly once to produce the matching output element, so writing
#: the output over a dying input is safe.  Fusions of elementwise ops
#: inherit the property.
DONATABLE_OPS = frozenset(ELEMENTWISE | {"fusion"})


@dataclass(frozen=True)
class BufferAssignment:
    """One planned value's slot in the buffer pool."""

    inst_id: int
    name: str
    buffer: int
    nbytes: int
    interval: tuple[int, int]
    donated_from: Optional[int] = None  # inst id of the in-place donor


@dataclass
class MemoryPlan:
    """A buffer assignment for one module (keyed by its trace cache key)."""

    module_name: str
    trace_key: Optional[str]
    assignments: dict[int, BufferAssignment] = field(default_factory=dict)
    buffer_sizes: dict[int, int] = field(default_factory=dict)
    interference_edges: int = 0

    @property
    def pool_bytes(self) -> int:
        return sum(self.buffer_sizes.values())

    @property
    def donations(self) -> dict[int, int]:
        return {
            a.inst_id: a.donated_from
            for a in self.assignments.values()
            if a.donated_from is not None
        }

    @property
    def buffers_reused(self) -> int:
        """Planned values that did not get a fresh buffer."""
        return len(self.assignments) - len(self.buffer_sizes)

    def buffer_of(self, inst_id: int) -> Optional[int]:
        a = self.assignments.get(inst_id)
        return None if a is None else a.buffer


def plan_buffers(
    liveness: LivenessInfo, trace_key: Optional[str] = None
) -> MemoryPlan:
    """Greedy linear-scan assignment over the true liveness intervals."""
    plan = MemoryPlan(liveness.module_name, trace_key)
    planned = sorted(liveness.planned_values, key=lambda v: v.position)
    # (release position, buffer id, size): a buffer frees once the
    # interval of its latest occupant ends.
    active: list[tuple[int, int, int]] = []
    release_at: dict[int, int] = {}
    free: dict[int, list[int]] = {}
    next_buffer = 0

    for v in planned:
        start, end = liveness.intervals[v.inst_id]
        while active and active[0][0] < start:
            released, buf, size = heapq.heappop(active)
            if release_at.get(buf) == released:  # not extended by donation
                free.setdefault(size, []).append(buf)
                del release_at[buf]

        donor = _donation_candidate(liveness, plan, v)
        if donor is not None:
            buf = plan.assignments[donor].buffer
        elif free.get(v.nbytes):
            buf = free[v.nbytes].pop()
        else:
            buf = next_buffer
            next_buffer += 1
            plan.buffer_sizes[buf] = v.nbytes
        plan.assignments[v.inst_id] = BufferAssignment(
            inst_id=v.inst_id,
            name=v.name,
            buffer=buf,
            nbytes=v.nbytes,
            interval=(start, end),
            donated_from=donor,
        )
        release_at[buf] = end
        heapq.heappush(active, (end, buf, v.nbytes))

    plan.interference_edges = _count_interference(liveness)
    return plan


def _donation_candidate(
    liveness: LivenessInfo, plan: MemoryPlan, v: ValueInfo
) -> Optional[int]:
    if v.opcode not in DONATABLE_OPS or v.category != "compute":
        return None
    inst = liveness.schedule[v.position]
    for op in inst.operands:
        donor = liveness.values.get(op.id)
        if donor is None or not donor.planned or donor.nbytes != v.nbytes:
            continue
        if op.id not in plan.assignments:
            continue
        # The donor's storage must truly die at this op: its alias-extended
        # interval ends here, and no other value shares its buffer later.
        if liveness.intervals[op.id][1] != v.position:
            continue
        if any(d == op.id for d in plan.donations.values()):
            continue  # already donated to a sibling at this position
        return op.id
    return None


def _count_interference(liveness: LivenessInfo) -> int:
    ids = sorted(liveness.intervals)
    edges = 0
    for i, a in enumerate(ids):
        sa, ea = liveness.intervals[a]
        for b in ids[i + 1 :]:
            sb, eb = liveness.intervals[b]
            if sa <= eb and sb <= ea:
                edges += 1
    return edges


# ---------------------------------------------------------------------------
# Validation (independent of the planner).
# ---------------------------------------------------------------------------


def _overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


def validate_plan(
    liveness: LivenessInfo,
    plan: MemoryPlan,
    location: Optional[SourceLocation] = None,
) -> list[Diagnostic]:
    """Check a plan against the liveness facts; return located errors."""
    loc = location or SourceLocation("<memory-plan>", 0)
    diags: list[Diagnostic] = []
    root_info = liveness.values[liveness.root_id]
    root_reaches = set(root_info.storage_roots)
    if root_info.planned:
        root_reaches.add(root_info.inst_id)

    by_buffer: dict[int, list[BufferAssignment]] = {}
    for a in plan.assignments.values():
        by_buffer.setdefault(a.buffer, []).append(a)

    for assignments in by_buffer.values():
        assignments.sort(key=lambda a: a.interval[0])
        for i, a in enumerate(assignments):
            for b in assignments[i + 1 :]:
                ia = liveness.intervals[a.inst_id]
                ib = liveness.intervals[b.inst_id]
                if not _overlap(ia, ib):
                    continue
                if b.donated_from == a.inst_id:
                    diags.extend(
                        _check_donation(liveness, a, b, ia, ib, loc)
                    )
                    continue
                if a.inst_id in root_reaches or b.inst_id in root_reaches:
                    victim, clobber = (
                        (a, b) if a.inst_id in root_reaches else (b, a)
                    )
                    diags.append(
                        Diagnostic(
                            "error",
                            f"tuple-aliasing: buffer {a.buffer} of "
                            f"%{victim.name} is reused by %{clobber.name} "
                            f"while the output tuple still aliases "
                            f"%{victim.name}'s storage (live "
                            f"[{liveness.intervals[victim.inst_id][0]}.."
                            f"{liveness.intervals[victim.inst_id][1]}])",
                            loc,
                        )
                    )
                    continue
                da = liveness.direct_intervals.get(a.inst_id, ia)
                db = liveness.direct_intervals.get(b.inst_id, ib)
                why = (
                    "their direct uses are disjoint but an alias "
                    "(view/tuple) extends the earlier value's storage"
                    if not _overlap(da, db)
                    else f"both live over [{max(ia[0], ib[0])}.."
                    f"{min(ia[1], ib[1])}]"
                )
                diags.append(
                    Diagnostic(
                        "error",
                        f"unsafe buffer reuse: %{a.name} and %{b.name} "
                        f"share buffer {a.buffer} while both are live "
                        f"({why})",
                        loc,
                    )
                )
    diags.extend(_check_donation_targets(liveness, plan, loc))
    return diags


def _check_donation(liveness, a, b, ia, ib, loc) -> list[Diagnostic]:
    """A declared donation a -> b: legal only for elementwise consumers of
    a same-sized donor dying exactly at the consumer's position."""
    diags: list[Diagnostic] = []
    consumer = liveness.values[b.inst_id]
    if consumer.opcode not in DONATABLE_OPS:
        diags.append(
            Diagnostic(
                "error",
                f"unsafe in-place: donation of %{a.name}'s buffer into "
                f"non-elementwise op %{b.name} ({consumer.opcode}) — the "
                f"op reads operand elements after writing output elements",
                loc,
            )
        )
    if a.nbytes != b.nbytes:
        diags.append(
            Diagnostic(
                "error",
                f"unsafe in-place: donation of %{a.name} "
                f"({a.nbytes} B) into %{b.name} ({b.nbytes} B) with "
                f"mismatched buffer sizes",
                loc,
            )
        )
    if ia[1] > ib[0]:
        diags.append(
            Diagnostic(
                "error",
                f"unsafe in-place: %{a.name} donates its buffer to "
                f"%{b.name} but stays live until position {ia[1]} "
                f"(donation requires death at position {ib[0]})",
                loc,
            )
        )
    return diags


def _check_donation_targets(liveness, plan, loc) -> list[Diagnostic]:
    """Donations must also actually share the donor's buffer."""
    diags: list[Diagnostic] = []
    for receiver, donor in plan.donations.items():
        da = plan.assignments.get(donor)
        db = plan.assignments.get(receiver)
        if da is None:
            diags.append(
                Diagnostic(
                    "error",
                    f"unsafe in-place: %{plan.assignments[receiver].name} "
                    f"declares a donation from an unplanned value "
                    f"(id {donor})",
                    loc,
                )
            )
        elif db is not None and da.buffer != db.buffer:
            diags.append(
                Diagnostic(
                    "error",
                    f"unsafe in-place: %{db.name} declares a donation "
                    f"from %{da.name} but occupies a different buffer "
                    f"({db.buffer} vs {da.buffer})",
                    loc,
                )
            )
    return diags


def force_donation(
    plan: MemoryPlan, receiver_id: int, donor_id: int
) -> MemoryPlan:
    """Corruption helper (self-check corpus): rewrite ``receiver`` to claim
    an in-place donation of ``donor``'s buffer, bypassing the safety
    checks the planner applies."""
    donor = plan.assignments[donor_id]
    receiver = plan.assignments[receiver_id]
    old_buffer = receiver.buffer
    plan.assignments[receiver_id] = replace(
        receiver, buffer=donor.buffer, donated_from=donor_id
    )
    if all(a.buffer != old_buffer for a in plan.assignments.values()):
        plan.buffer_sizes.pop(old_buffer, None)
    return plan


def force_shared_buffer(
    plan: MemoryPlan, first_id: int, second_id: int
) -> MemoryPlan:
    """Corruption helper: move ``second`` into ``first``'s buffer as a
    plain (non-donation) reuse, as a planner that freed tuple-aliased
    storage too early would."""
    first = plan.assignments[first_id]
    second = plan.assignments[second_id]
    old_buffer = second.buffer
    plan.assignments[second_id] = replace(second, buffer=first.buffer)
    if all(a.buffer != old_buffer for a in plan.assignments.values()):
        plan.buffer_sizes.pop(old_buffer, None)
    return plan
