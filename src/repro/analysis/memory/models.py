"""The seeded memory-planning corpus: step programs with known verdicts.

Mirrors the other analysis corpora (:mod:`repro.analysis.tracing.models`,
:mod:`repro.analysis.concurrency.models`): a clean suite the planner must
certify with **zero** diagnostics — and, on straight-line programs, with
a certified peak *exactly equal* to the dynamically observed one — plus
seeded hazards, each recording the verdict the validator must produce:

* ``over-budget`` — a trace whose certified peak exceeds its byte budget
  (the planner must also emit recompute-or-spill fix-its);
* ``unsafe-in-place`` — a corrupted plan donating a buffer into a
  non-elementwise op;
* ``tuple-aliasing`` — a corrupted plan reusing a buffer the output tuple
  still aliases.

Each program builds its own device; ``build`` returns
``(device, step_fn)``.  ``corrupt`` (hazards only) mutates the planner's
output the way the corresponding planner bug would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.tensor import LazyTensorBarrier, Tensor, lazy_device

from .bufferplan import MemoryPlan, force_donation, force_shared_buffer
from .liveness import LivenessInfo


@dataclass(frozen=True)
class MemoryProgram:
    """One corpus entry: a step program plus the expected memory verdict."""

    name: str
    description: str
    #: "clean" | "over-budget" | "unsafe-in-place" | "tuple-aliasing"
    expect: str
    steps: int
    #: True when the static model must match the dynamic tracker exactly
    #: (no may-alias ops, predicates, or scalar reductions in the trace).
    straight_line: bool
    build: Callable[[], tuple]
    budget_bytes: Optional[int] = None
    corrupt: Optional[Callable[[LivenessInfo, MemoryPlan], MemoryPlan]] = None


# ---------------------------------------------------------------------------
# Clean corpus.
# ---------------------------------------------------------------------------


def _build_mlp_chain_reuse():
    """Three equal-width dot/relu layers: the canonical buffer-reuse case
    (two pool buffers serve six values)."""
    device = lazy_device()
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((8, 16)).astype(np.float32), device)
    ws = [
        Tensor(rng.standard_normal((16, 16)).astype(np.float32), device)
        for _ in range(3)
    ]

    def step_fn(step: int) -> None:
        h = x
        for w in ws:
            h = (h @ w).relu()
        LazyTensorBarrier(device)

    return device, step_fn


def _build_affine_relu_fusion():
    """dot + bias + relu: the bias broadcast disappears into the fused
    elementwise kernel; the dot's buffer is donated to the fusion."""
    device = lazy_device()
    rng = np.random.default_rng(1)
    x = Tensor(rng.standard_normal((4, 6)).astype(np.float32), device)
    w = Tensor(rng.standard_normal((6, 3)).astype(np.float32), device)
    b = Tensor(np.zeros(3, np.float32), device)

    def step_fn(step: int) -> None:
        y = ((x @ w) + b).relu()  # noqa: F841  (materialized by the barrier)
        LazyTensorBarrier(device)

    return device, step_fn


def _build_diamond_tuple_outputs():
    """Two materialized outputs -> tuple root; the early output's storage
    must stay live through the whole schedule."""
    device = lazy_device()
    rng = np.random.default_rng(2)
    x = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w1 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w2 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        u = x @ w1
        v = (u * u) @ w2  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_sgd_fused_update():
    """A whole SGD update collapsing into one fusion over resident
    parameters: the planned pool is a single buffer."""
    device = lazy_device()
    state = {"w": Tensor(np.ones(32, np.float32), device)}

    def step_fn(step: int) -> None:
        state["w"] = state["w"] - state["w"] * 0.1
        LazyTensorBarrier(device)

    return device, step_fn


def _build_reshape_pipeline():
    """A reshape feeding a dot: may-alias, so the certificate is an upper
    bound (NumPy returns a view; the planner must also budget the copy)."""
    device = lazy_device()
    rng = np.random.default_rng(3)
    x = Tensor(rng.standard_normal((4, 4)).astype(np.float32), device)
    w = Tensor(rng.standard_normal((2, 4)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        y = x.reshaped((8, 2)) @ w  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_lenet_forward():
    """The Table 2/3 workload trace: a full LeNet forward (conv, pool,
    flatten-reshape, dense) certified end to end."""
    from repro.nn import LeNet

    device = lazy_device()
    model = LeNet.create(device, seed=0)
    rng = np.random.default_rng(4)
    xv = rng.standard_normal((2, 28, 28, 1)).astype(np.float32)

    def step_fn(step: int) -> None:
        logits = model(Tensor(xv, device))  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


# ---------------------------------------------------------------------------
# Seeded hazards.
# ---------------------------------------------------------------------------


def _build_held_activation_over_budget():
    """h1 is held across two more matmuls for a residual-style combine:
    three 16 KiB activations live at once, exceeding the 40 kB budget.
    The planner must flag it and suggest spilling %dot (h1)."""
    device = lazy_device()
    rng = np.random.default_rng(5)
    x = Tensor(rng.standard_normal((64, 64)).astype(np.float32), device)
    w1 = Tensor(rng.standard_normal((64, 64)).astype(np.float32), device)
    w2 = Tensor(rng.standard_normal((64, 64)).astype(np.float32), device)
    w3 = Tensor(rng.standard_normal((64, 64)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        h1 = x @ w1
        h2 = h1 @ w2
        h3 = h2 @ w3
        out = h1 * h3  # noqa: F841  (h1 carried across the peak)
        LazyTensorBarrier(device)

    return device, step_fn


def _build_inplace_victim():
    device = lazy_device()
    rng = np.random.default_rng(6)
    x = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w1 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w2 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        z = (x @ w1).relu() @ w2  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _corrupt_donate_into_dot(
    liveness: LivenessInfo, plan: MemoryPlan
) -> MemoryPlan:
    """The unsafe-in-place bug: a planner that donates a dying operand's
    buffer into a *dot* — which reads operand elements long after writing
    the first output elements."""
    for inst in liveness.schedule:
        if inst.opcode != "dot":
            continue
        for op in inst.operands:
            if op.id in plan.assignments and inst.id in plan.assignments:
                return force_donation(plan, inst.id, op.id)
    raise AssertionError("corpus program lost its dot(planned operand)")


def _build_tuple_alias_victim():
    device = lazy_device()
    rng = np.random.default_rng(7)
    x = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w1 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)
    w2 = Tensor(rng.standard_normal((8, 8)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        u = x @ w1
        z = u.relu() @ w2  # noqa: F841  (u and z both materialize)
        LazyTensorBarrier(device)

    return device, step_fn


def _corrupt_share_tuple_elements(
    liveness: LivenessInfo, plan: MemoryPlan
) -> MemoryPlan:
    """The tuple-aliasing bug: a planner that frees tuple-element storage
    at its last direct use and hands the buffer to a later value — here,
    collapsing two output-tuple elements into one buffer."""
    root = liveness.values[liveness.root_id]
    roots = [r for r in root.storage_roots if r in plan.assignments]
    if len(roots) < 2:
        raise AssertionError("corpus program lost its multi-element tuple")
    return force_shared_buffer(plan, roots[0], roots[1])


CORPUS: tuple[MemoryProgram, ...] = (
    MemoryProgram(
        name="mlp_chain_reuse",
        description="three equal-width dot/relu layers; pool of two buffers",
        expect="clean",
        steps=2,
        straight_line=True,
        build=_build_mlp_chain_reuse,
    ),
    MemoryProgram(
        name="affine_relu_fusion",
        description="dot + broadcast bias + relu fused; dot buffer donated",
        expect="clean",
        steps=2,
        straight_line=True,
        build=_build_affine_relu_fusion,
    ),
    MemoryProgram(
        name="diamond_tuple_outputs",
        description="two materialized outputs; tuple root extends liveness",
        expect="clean",
        steps=2,
        straight_line=True,
        build=_build_diamond_tuple_outputs,
    ),
    MemoryProgram(
        name="sgd_fused_update",
        description="whole update fuses over resident params; one buffer",
        expect="clean",
        steps=2,
        straight_line=True,
        build=_build_sgd_fused_update,
    ),
    MemoryProgram(
        name="reshape_pipeline",
        description="reshape feeding dot; may-alias makes the bound strict",
        expect="clean",
        steps=2,
        straight_line=False,
        build=_build_reshape_pipeline,
    ),
    MemoryProgram(
        name="lenet_forward",
        description="full LeNet forward (the Table 2/3 workload trace)",
        expect="clean",
        steps=1,
        straight_line=False,
        build=_build_lenet_forward,
    ),
    MemoryProgram(
        name="held_activation_over_budget",
        description="activation held across two matmuls blows a 40 kB budget",
        expect="over-budget",
        steps=1,
        straight_line=True,
        build=_build_held_activation_over_budget,
        budget_bytes=40_000,
    ),
    MemoryProgram(
        name="unsafe_inplace_plan",
        description="corrupted plan donates a buffer into a dot",
        expect="unsafe-in-place",
        steps=1,
        straight_line=True,
        build=_build_inplace_victim,
        corrupt=_corrupt_donate_into_dot,
    ),
    MemoryProgram(
        name="tuple_alias_plan",
        description="corrupted plan reuses a buffer the output tuple aliases",
        expect="tuple-aliasing",
        steps=1,
        straight_line=True,
        build=_build_tuple_alias_victim,
        corrupt=_corrupt_share_tuple_elements,
    ),
)


def get_program(name: str) -> MemoryProgram:
    for program in CORPUS:
        if program.name == name:
            return program
    known = ", ".join(p.name for p in CORPUS)
    raise KeyError(f"unknown memory program {name!r} (known: {known})")
