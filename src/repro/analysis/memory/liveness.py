"""Instruction-level liveness over HLO modules.

The planner's ground truth: for every value in a module's schedule (the
post-order ``Executable.run`` executes), compute the interval during which
its storage must exist.  Values fall into four categories:

``resident``
    Parameters and constants.  Their storage belongs to the caller (the
    argument buffers / the literal pool); it exists for the whole run and
    is counted separately as ``resident_bytes``, never planned.

``alias``
    Values the backend always executes as zero-copy views (``broadcast``
    via ``np.broadcast_to``) plus ``tuple``, which aliases *all* of its
    operands.  Zero plan bytes; they extend the liveness of the storage
    they view.

``may-alias``
    ``reshape``/``transpose``: NumPy returns a view when layout permits
    and a copy otherwise, and the planner cannot know which statically.
    Soundly handled both ways at once — reserve the output's bytes (the
    copy case) *and* extend the operand's storage lifetime (the view
    case).

``compute``
    Everything else: the op allocates a fresh owning buffer of
    ``shape.storage_bytes``.

Intervals are inclusive ``[def, last_use]`` positions in the schedule; an
instruction's operands and its result are simultaneously live at its
position (the executor frees operands only *after* storing the result).
Storage reachable from the root value stays live through the end of the
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hlo.ir import (
    BF16,
    F32,
    MAY_ALIAS_OPS,
    PRED,
    RESIDENT_OPS,
    VIEW_ALIAS_OPS,
    HloInstruction,
    HloModule,
)

RESIDENT = "resident"
ALIAS = "alias"
MAY_ALIAS = "may-alias"
COMPUTE = "compute"


@dataclass(frozen=True)
class ValueInfo:
    """Static facts about one value in the schedule."""

    inst_id: int
    name: str
    opcode: str
    category: str
    nbytes: int  # planned buffer bytes (0 for resident/alias values)
    position: int  # index in the schedule
    storage_roots: tuple[int, ...]  # planned values this value's storage reaches

    @property
    def planned(self) -> bool:
        return self.category in (COMPUTE, MAY_ALIAS)


@dataclass
class LivenessInfo:
    """Per-module liveness: schedule, categories, and storage intervals."""

    module_name: str
    schedule: list[HloInstruction]
    values: dict[int, ValueInfo]
    #: True storage intervals of planned values, alias-extended: a value
    #: stays live while any view/tuple that can reach its storage is used.
    intervals: dict[int, tuple[int, int]]
    #: Intervals from *direct* operand uses only (no alias extension).
    #: The validator compares these against ``intervals`` to tell an
    #: aliasing bug apart from a plain overlapping-interval bug.
    direct_intervals: dict[int, tuple[int, int]]
    resident_bytes: int
    #: Extra transient bytes at materialization: every predicate (bool)
    #: output is converted to f32 by ``_consume`` while the bool buffer is
    #: still live, so the certified bound must include the copies.
    output_conversion_bytes: int
    root_id: int

    @property
    def planned_values(self) -> list[ValueInfo]:
        return [v for v in self.values.values() if v.planned]

    @property
    def naive_bytes(self) -> int:
        """The no-reuse bound: every planned value gets its own buffer."""
        return sum(v.nbytes for v in self.planned_values)

    @property
    def straight_line(self) -> bool:
        """True when the static model is *exact*, not just an upper bound.

        Exactness requires that every planned value is a real owning NumPy
        buffer at run time: no may-alias ops (view-or-copy is dynamic), no
        predicate values anywhere (bool roots are converted on
        materialization), and no rank-0 compute values (full reductions
        return untracked NumPy scalars, not arrays).
        """
        for v in self.values.values():
            if v.category == MAY_ALIAS:
                return False
            inst = self.schedule[v.position]
            if inst.shape.dtype == PRED:
                return False
            if inst.shape.dtype == BF16:
                # bf16 is emulated in f32 storage: certified (hardware)
                # bytes are a lower layout, not what NumPy allocates.
                return False
            if v.category == COMPUTE and inst.shape.rank == 0:
                return False
        return self.output_conversion_bytes == 0

    def timeline(self) -> list[int]:
        """Planned live bytes at each schedule position, plus one final
        entry for materialization (end-live bytes + output conversions)."""
        n = len(self.schedule)
        deltas = [0] * (n + 1)
        for vid, (start, end) in self.intervals.items():
            deltas[start] += self.values[vid].nbytes
            if end + 1 <= n:
                deltas[end + 1] -= self.values[vid].nbytes
        line: list[int] = []
        running = 0
        for p in range(n):
            running += deltas[p]
            line.append(running)
        end_live = sum(
            self.values[vid].nbytes
            for vid, (_, end) in self.intervals.items()
            if end == n - 1
        )
        line.append(end_live + self.output_conversion_bytes)
        return line

    def live_at(self, position: int) -> list[int]:
        """ids of planned values whose interval covers ``position``."""
        return [
            vid
            for vid, (start, end) in self.intervals.items()
            if start <= position <= end
        ]


@dataclass
class _Builder:
    module: HloModule
    values: dict[int, ValueInfo] = field(default_factory=dict)

    def build(self) -> LivenessInfo:
        schedule = self.module.schedule()
        position = {inst.id: p for p, inst in enumerate(schedule)}
        resident_bytes = 0

        for p, inst in enumerate(schedule):
            category, nbytes = self._categorize(inst)
            roots = self._storage_roots(inst, category)
            if category == RESIDENT:
                resident_bytes += inst.shape.storage_bytes
            self.values[inst.id] = ValueInfo(
                inst_id=inst.id,
                name=inst.name,
                opcode=inst.opcode,
                category=category,
                nbytes=nbytes,
                position=p,
                storage_roots=roots,
            )

        last = len(schedule) - 1
        intervals: dict[int, tuple[int, int]] = {}
        direct: dict[int, tuple[int, int]] = {}
        for inst in schedule:
            v = self.values[inst.id]
            if v.planned:
                intervals[inst.id] = (v.position, v.position)
                direct[inst.id] = (v.position, v.position)
        for p, inst in enumerate(schedule):
            for op in inst.operands:
                if op.id in direct:
                    direct[op.id] = (direct[op.id][0], max(direct[op.id][1], p))
                for root in self.values[op.id].storage_roots:
                    lo, hi = intervals[root]
                    intervals[root] = (lo, max(hi, p))
        # Storage reachable from the root survives to the end of the run.
        root = self.module.entry.root
        root_info = self.values[root.id]
        for rid in root_info.storage_roots:
            intervals[rid] = (intervals[rid][0], last)
        if root.id in direct:
            direct[root.id] = (direct[root.id][0], last)

        return LivenessInfo(
            module_name=self.module.name,
            schedule=schedule,
            values=self.values,
            intervals=intervals,
            direct_intervals=direct,
            resident_bytes=resident_bytes,
            output_conversion_bytes=self._conversion_bytes(root),
            root_id=root.id,
        )

    def _categorize(self, inst: HloInstruction) -> tuple[str, int]:
        if inst.opcode in RESIDENT_OPS:
            return RESIDENT, 0
        if inst.opcode in VIEW_ALIAS_OPS or inst.opcode == "tuple":
            return ALIAS, 0
        if inst.opcode in MAY_ALIAS_OPS:
            return MAY_ALIAS, inst.shape.storage_bytes
        return COMPUTE, inst.shape.storage_bytes

    def _storage_roots(self, inst: HloInstruction, category: str) -> tuple[int, ...]:
        if category == RESIDENT:
            return ()
        if category == COMPUTE:
            return (inst.id,)
        # Aliases reach their operands' storage; may-alias values own a
        # (possible) buffer *and* may view operand 0.
        roots: list[int] = [inst.id] if category == MAY_ALIAS else []
        for op in inst.operands:
            for root in self.values[op.id].storage_roots:
                if root not in roots:
                    roots.append(root)
        return tuple(roots)

    def _conversion_bytes(self, root: HloInstruction) -> int:
        # Materialization converts every non-f32 output to an f32 array
        # (predicate masks and narrowed values alike): the converted copy
        # coexists with the source buffer at the peak.
        outputs = list(root.operands) if root.opcode == "tuple" else [root]
        return sum(
            o.shape.num_elements * 4 for o in outputs if o.shape.dtype != F32
        )


def analyze_liveness(module: HloModule) -> LivenessInfo:
    """Compute categories and storage intervals for ``module``'s schedule."""
    return _Builder(module).build()
