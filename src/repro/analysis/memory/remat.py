"""Budget checking with rematerialization/spill fix-its.

Given a certified peak and a byte budget, flag over-budget traces and
suggest what to do about them: the values *carried across* the peak
position (defined before it, last used after it) are the ones a scheduler
could recompute closer to their use (cheap elementwise producers) or
spill (expensive producers like dot/convolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import Diagnostic, SourceLocation
from repro.hlo.ir import ELEMENTWISE, VIEW_ALIAS_OPS

from .liveness import LivenessInfo
from .peak import PeakCertificate

#: Producers cheap enough that recomputing beats holding the buffer.
_RECOMPUTE_OPS = frozenset(ELEMENTWISE | VIEW_ALIAS_OPS | {"fusion"})

#: At most this many fix-its per over-budget trace (largest first).
_MAX_SUGGESTIONS = 3


@dataclass(frozen=True)
class RematCandidate:
    """A value carried across the peak, with the suggested remedy."""

    inst_id: int
    name: str
    opcode: str
    nbytes: int
    kind: str  # "recompute" | "spill"
    interval: tuple[int, int]


def remat_candidates(
    liveness: LivenessInfo, certificate: PeakCertificate
) -> list[RematCandidate]:
    """Values live across (not defined or last used at) the peak position."""
    p = certificate.peak_position
    out: list[RematCandidate] = []
    for vid in liveness.live_at(p):
        start, end = liveness.intervals[vid]
        if start >= p or end <= p:
            continue  # produced or consumed at the peak itself
        v = liveness.values[vid]
        kind = "recompute" if v.opcode in _RECOMPUTE_OPS else "spill"
        out.append(
            RematCandidate(
                inst_id=vid,
                name=v.name,
                opcode=v.opcode,
                nbytes=v.nbytes,
                kind=kind,
                interval=(start, end),
            )
        )
    out.sort(key=lambda c: (-c.nbytes, c.inst_id))
    return out


def budget_diagnostics(
    liveness: LivenessInfo,
    certificate: PeakCertificate,
    budget_bytes: Optional[int],
    location: Optional[SourceLocation] = None,
) -> tuple[list[Diagnostic], list[RematCandidate]]:
    """Error when the certified peak exceeds the budget, plus fix-its."""
    if budget_bytes is None or certificate.certified_peak_bytes <= budget_bytes:
        return [], []
    loc = location or SourceLocation("<memory-plan>", 0)
    over = certificate.certified_peak_bytes - budget_bytes
    diags = [
        Diagnostic(
            "error",
            f"over budget: certified peak {certificate.certified_peak_bytes} B"
            f" exceeds the {budget_bytes} B budget by {over} B"
            f" (peak at schedule position {certificate.peak_position})",
            loc,
        )
    ]
    candidates = remat_candidates(liveness, certificate)
    for c in candidates[:_MAX_SUGGESTIONS]:
        verb = (
            f"rematerialize %{c.name} ({c.opcode}) near its use"
            if c.kind == "recompute"
            else f"spill %{c.name} ({c.opcode}) and reload after the peak"
        )
        diags.append(
            Diagnostic(
                "warning",
                f"fix-it: {verb} instead of holding {c.nbytes} B across "
                f"positions [{c.interval[0]}..{c.interval[1]}]",
                loc,
            )
        )
    return diags, candidates
