"""Peak-memory certification.

Folds a module's liveness timeline into a static peak-bytes bound — the
*certificate* the dynamic :class:`repro.runtime.memory.TraceAttribution`
oracle is checked against: the certified peak is always >= the observed
transient peak, and exactly equal on straight-line traces.

Also provides pass-pipeline attribution: re-certifying after every HLO
pass application shows how DCE, CSE, and fusion move the bound (fusion in
particular collapses elementwise chains into single kernels, deleting the
intermediate buffers Table 3 pays for without fusion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hlo.ir import HloModule
from repro.hlo.passes import optimize

from .bufferplan import MemoryPlan, plan_buffers
from .liveness import LivenessInfo, analyze_liveness


@dataclass(frozen=True)
class PeakCertificate:
    """The static memory verdict for one module/trace."""

    module_name: str
    trace_key: Optional[str]
    #: Bytes of parameters + constants (live for the whole run, unplanned).
    resident_bytes: int
    #: No-reuse bound: one private buffer per planned value.
    naive_bytes: int
    #: The certified transient peak: max planned-live bytes over the
    #: schedule, including the materialization entry (end-live bytes plus
    #: predicate-output conversion copies).  Sound upper bound on what the
    #: dynamic tracker can observe; exact on straight-line traces.
    certified_peak_bytes: int
    #: Total bytes of the reuse plan's buffer pool.
    planned_pool_bytes: int
    output_conversion_bytes: int
    exact: bool  # straight-line: the bound is an equality
    timeline: tuple[int, ...]

    @property
    def reuse_factor(self) -> float:
        """How much smaller the planned pool is than the no-reuse bound."""
        if self.planned_pool_bytes <= 0:
            return 1.0
        return self.naive_bytes / self.planned_pool_bytes

    @property
    def peak_position(self) -> int:
        return max(range(len(self.timeline)), key=self.timeline.__getitem__)

    def render(self) -> str:
        kind = "exact" if self.exact else "upper bound"
        lines = [
            f"peak certificate for {self.module_name}"
            + (f" [trace {self.trace_key}]" if self.trace_key else ""),
            f"  certified peak : {self.certified_peak_bytes} B ({kind})"
            f" at position {self.peak_position}",
            f"  no-reuse bound : {self.naive_bytes} B",
            f"  planned pool   : {self.planned_pool_bytes} B"
            f" (reuse factor {self.reuse_factor:.2f}x)",
            f"  resident       : {self.resident_bytes} B",
        ]
        if self.output_conversion_bytes:
            lines.append(
                f"  output convert : {self.output_conversion_bytes} B"
            )
        return "\n".join(lines)


def certify(
    liveness: LivenessInfo,
    plan: Optional[MemoryPlan] = None,
    trace_key: Optional[str] = None,
) -> PeakCertificate:
    """Fold liveness (and a buffer plan) into a :class:`PeakCertificate`."""
    if plan is None:
        plan = plan_buffers(liveness, trace_key=trace_key)
    timeline = liveness.timeline()
    return PeakCertificate(
        module_name=liveness.module_name,
        trace_key=trace_key if trace_key is not None else plan.trace_key,
        resident_bytes=liveness.resident_bytes,
        naive_bytes=liveness.naive_bytes,
        certified_peak_bytes=max(timeline) if timeline else 0,
        planned_pool_bytes=plan.pool_bytes,
        output_conversion_bytes=liveness.output_conversion_bytes,
        exact=liveness.straight_line,
        timeline=tuple(timeline),
    )


def certify_module(
    module: HloModule, trace_key: Optional[str] = None
) -> PeakCertificate:
    liveness = analyze_liveness(module)
    return certify(liveness, plan_buffers(liveness, trace_key), trace_key)


# ---------------------------------------------------------------------------
# Pass-pipeline attribution.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PassEffect:
    """One pass application that changed the module, and where it moved
    the certified peak."""

    pass_name: str
    peak_before: int
    peak_after: int

    @property
    def delta(self) -> int:
        return self.peak_after - self.peak_before


@dataclass
class PassAttribution:
    """How each optimization pass moved the peak-memory bound."""

    module_name: str
    initial_peak: int
    final_peak: int
    effects: list[PassEffect] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"pass attribution for {self.module_name}: "
            f"{self.initial_peak} B -> {self.final_peak} B"
        ]
        for e in self.effects:
            sign = "+" if e.delta > 0 else ""
            lines.append(
                f"  after {e.pass_name:<18} {e.peak_after} B"
                f" ({sign}{e.delta} B)"
            )
        if not self.effects:
            lines.append("  (no pass changed the module)")
        return "\n".join(lines)


def attribute_passes(module: HloModule, fuse: bool = True) -> PassAttribution:
    """Run the standard ``optimize`` pipeline on ``module`` (in place),
    re-certifying the peak bound after every pass that changed it."""
    initial = certify_module(module).certified_peak_bytes
    attribution = PassAttribution(
        module_name=module.name, initial_peak=initial, final_peak=initial
    )
    current = [initial]

    def on_pass(name: str, mod: HloModule, changed: bool) -> None:
        if not changed:
            return
        peak = certify_module(mod).certified_peak_bytes
        attribution.effects.append(
            PassEffect(pass_name=name, peak_before=current[0], peak_after=peak)
        )
        current[0] = peak

    optimize(module, fuse=fuse, on_pass=on_pass)
    attribution.final_peak = current[0]
    return attribution
