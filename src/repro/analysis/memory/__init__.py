"""Static memory planning for HLO: liveness, buffer reuse, and
peak-memory certification.

The sixth analysis subsystem.  Given an optimized HLO module (and its
schedule — the exact order ``Executable.run`` evaluates), it computes
instruction-level liveness intervals (:mod:`.liveness`), colors
non-overlapping intervals into a reused buffer pool with safe in-place
donations (:mod:`.bufferplan`), folds the result into a static
peak-bytes certificate with per-pass attribution (:mod:`.peak`), and
flags over-budget traces with recompute-or-spill fix-its (:mod:`.remat`).

The dynamic half lives in :mod:`repro.runtime.memory`: inside a
``trace_attribution`` scope the executor tracks every owning
intermediate, and the seeded corpus (:mod:`.models`) requires
``certified >= observed`` everywhere and exact equality on straight-line
traces (:mod:`.report`).
"""

from .bufferplan import (
    BufferAssignment,
    MemoryPlan,
    plan_buffers,
    validate_plan,
)
from .liveness import LivenessInfo, ValueInfo, analyze_liveness
from .models import CORPUS, MemoryProgram, get_program
from .peak import (
    PassAttribution,
    PeakCertificate,
    attribute_passes,
    certify,
    certify_module,
)
from .remat import RematCandidate, budget_diagnostics, remat_candidates
from .report import (
    MemoryPlanReport,
    TraceMemoryCheck,
    analyze_all_memory_models,
    analyze_memory_model,
    analyze_memory_program,
    buffer_annotations,
)

__all__ = [
    "BufferAssignment",
    "MemoryPlan",
    "plan_buffers",
    "validate_plan",
    "LivenessInfo",
    "ValueInfo",
    "analyze_liveness",
    "CORPUS",
    "MemoryProgram",
    "get_program",
    "PassAttribution",
    "PeakCertificate",
    "attribute_passes",
    "certify",
    "certify_module",
    "RematCandidate",
    "budget_diagnostics",
    "remat_candidates",
    "MemoryPlanReport",
    "TraceMemoryCheck",
    "analyze_all_memory_models",
    "analyze_memory_model",
    "analyze_memory_program",
    "buffer_annotations",
]
