"""Merge-determinism verification for replica reductions.

When the parallel engine merges per-replica results — gradient
averaging, loss accumulation, pod step timing, stats aggregation — the
merged value must not depend on *which replica thread finished first*.
Floating-point addition is not associative, so a float accumulation is
only acceptable when its iteration order is pinned (replica-id order),
and a merge iterated in completion order is a nondeterminism bug even
though no lock is missing.

The static classifier inspects each registered merge function's AST and
decomposes it into **accumulation sites**:

* the accumulation *operation* — ``+=``/``-=``, ``np.add(..., out=)``
  and ``sum(...)`` are **order-sensitive** in floating point; ``max``/
  ``min`` are **order-insensitive** (associative *and* commutative);
* the *iteration source* feeding it — ``range(...)`` is index-ordered,
  ``as_completed(...)`` is completion-ordered, ``set(...)`` is
  unordered, and any other iterable is sequence-ordered (follows the
  replica-indexed input).

The verdict per site (and, taking the worst, per function):

=====================  ===========================  ====================
operation              iteration                    verdict
=====================  ===========================  ====================
insensitive (max/min)  any                          ``order-insensitive``
sensitive (float sum)  index-/sequence-ordered      ``replica-ordered``
sensitive (float sum)  completion-/unordered        ``order-sensitive``
=====================  ===========================  ====================

``order-sensitive`` is an error: the merged float depends on thread
scheduling.  ``replica-ordered`` is the documented contract of the
engine's merges (deterministic, bit-identical across runs, dependent
only on replica ids).

Each registered merge can also carry a **numeric probe** — run the real
function on adversarial values (``[1e8, 1.0, -1e8, 3.0]`` exposes f32
non-associativity) under repeated and permuted orders.  The probe's
observed (deterministic, order-sensitive) pair must agree with the
static verdict, giving the same static-vs-dynamic ``cross_check_ok``
discipline the lock-order graph uses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import Diagnostic, SourceLocation

from .inventory import load_module_ast

#: Adversarial f32 addends: summing left-to-right gives 3.0, any order
#: that pairs the 1e8s first gives 4.0.
PROBE_VALUES: Tuple[float, ...] = (1.0e8, 1.0, -1.0e8, 3.0)

_SENSITIVE_REDUCERS = frozenset({"sum"})
_INSENSITIVE_REDUCERS = frozenset({"max", "min"})
_SENSITIVE_NP_OPS = frozenset({"add", "subtract", "multiply"})

_VERDICT_RANK = {"order-insensitive": 0, "replica-ordered": 1, "order-sensitive": 2}


@dataclass(frozen=True)
class AccumulationSite:
    """One accumulation statement inside a merge function."""

    op: str  # e.g. "+=", "np.add", "sum", "max"
    sensitive: bool  # float-order-sensitive operation
    iteration: str  # index-ordered | sequence-ordered | completion-ordered | unordered
    verdict: str
    location: SourceLocation


@dataclass(frozen=True)
class ProbeResult:
    """What actually happened when the merge ran on adversarial floats."""

    deterministic: bool  # same inputs, same completion order -> same bits
    order_sensitive: bool  # reordering contributions changes the result


@dataclass(frozen=True)
class MergeSpec:
    """A registered merge function with its expected verdict and probe."""

    qualname: str
    expect: str
    probe: Optional[Callable[[], ProbeResult]] = None


@dataclass
class MergeFinding:
    qualname: str
    verdict: str
    expect: str
    sites: List[AccumulationSite]
    probe: Optional[ProbeResult]
    probe_consistent: Optional[bool]
    location: SourceLocation

    @property
    def ok(self) -> bool:
        return self.verdict == self.expect and self.probe_consistent is not False


@dataclass
class DeterminismReport:
    findings: List[MergeFinding] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def cross_check_ok(self) -> bool:
        return all(f.probe_consistent is not False for f in self.findings)

    @property
    def order_sensitive(self) -> List[MergeFinding]:
        return [f for f in self.findings if f.verdict == "order-sensitive"]

    def render(self) -> str:
        lines = [
            f"-- merge determinism: {len(self.findings)} merge(s), "
            f"{len(self.order_sensitive)} order-sensitive, "
            f"cross_check_ok={self.cross_check_ok} --"
        ]
        for f in self.findings:
            mark = "ok" if f.ok else "FAIL"
            probe = (
                "unprobed"
                if f.probe is None
                else f"probe(det={f.probe.deterministic}, "
                f"sens={f.probe.order_sensitive})"
            )
            lines.append(
                f"  [{mark:>4}] {f.qualname}: {f.verdict} "
                f"(expected {f.expect}, {probe})"
            )
            for s in f.sites:
                lines.append(
                    f"         {s.op} over {s.iteration} -> {s.verdict} "
                    f"(line {s.location.line})"
                )
        return "\n".join(lines)


def _iteration_kind(iter_expr: ast.expr) -> str:
    if isinstance(iter_expr, ast.Call):
        func = iter_expr.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if name == "range":
            return "index-ordered"
        if name == "as_completed":
            return "completion-ordered"
        if name in ("set", "frozenset"):
            return "unordered"
        if name in ("sorted", "enumerate", "zip", "reversed"):
            return "sequence-ordered"
        return "sequence-ordered"
    if isinstance(iter_expr, (ast.Set, ast.SetComp)):
        return "unordered"
    return "sequence-ordered"


def _site_verdict(sensitive: bool, iteration: str) -> str:
    if not sensitive:
        return "order-insensitive"
    if iteration in ("index-ordered", "sequence-ordered"):
        return "replica-ordered"
    return "order-sensitive"


class _MergeClassifier(ast.NodeVisitor):
    """Collect accumulation sites, tracking the innermost loop's order."""

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.loop_stack: List[str] = []
        self.sites: List[AccumulationSite] = []

    def _loc(self, node: ast.AST) -> SourceLocation:
        return SourceLocation(self.filename, getattr(node, "lineno", 0),
                              getattr(node, "col_offset", 0))

    def _iteration(self) -> str:
        return self.loop_stack[-1] if self.loop_stack else "sequence-ordered"

    def _emit(self, op: str, sensitive: bool, node: ast.AST,
              iteration: Optional[str] = None) -> None:
        it = iteration if iteration is not None else self._iteration()
        self.sites.append(
            AccumulationSite(op, sensitive, it, _site_verdict(sensitive, it),
                             self._loc(node))
        )

    def visit_For(self, node: ast.For) -> None:
        self.loop_stack.append(_iteration_kind(node.iter))
        self.visit(node.iter)
        for stmt in node.body:
            self.visit(stmt)
        self.loop_stack.pop()
        for stmt in node.orelse:
            self.visit(stmt)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def visit_While(self, node: ast.While) -> None:
        # A while-loop draining a queue.get() etc. is completion-ordered
        # by nature; without a recognizable source, stay conservative.
        self.loop_stack.append("completion-ordered")
        self.generic_visit(node)
        self.loop_stack.pop()

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            # Only accumulation in a loop reorders across replicas.
            if self.loop_stack:
                symbol = {ast.Add: "+=", ast.Sub: "-=", ast.Mult: "*="}[
                    type(node.op)
                ]
                self._emit(symbol, True, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        if isinstance(func, ast.Attribute) and name in _SENSITIVE_NP_OPS and any(
            kw.arg == "out" for kw in node.keywords
        ):
            # np.add(acc, x, out=acc): in-place accumulate.
            if self.loop_stack:
                self._emit(f"np.{name}", True, node)
        elif isinstance(func, ast.Name):
            if name in _SENSITIVE_REDUCERS and len(node.args) >= 1:
                self._emit(name, True, node,
                           iteration=self._reduction_order(node.args[0]))
            elif name in _INSENSITIVE_REDUCERS and node.args:
                self._emit(name, False, node,
                           iteration=self._reduction_order(node.args[0]))
        self.generic_visit(node)

    @staticmethod
    def _reduction_order(arg: ast.expr) -> str:
        # sum(set(...)) / max(as_completed(...)) classify by the argument.
        return _iteration_kind(arg) if isinstance(
            arg, (ast.Call, ast.Set, ast.SetComp)
        ) else "sequence-ordered"


def _find_function(tree: ast.Module, qualname_tail: str) -> Optional[ast.AST]:
    parts = qualname_tail.split(".")
    body: Sequence[ast.stmt] = tree.body
    node: Optional[ast.AST] = None
    for part in parts:
        node = None
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)) and stmt.name == part:
                node = stmt
                body = stmt.body
                break
        if node is None:
            return None
    return node if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) else None


def classify_merge(module: str, qualname_tail: str) -> Tuple[
    str, List[AccumulationSite], SourceLocation
]:
    """Static (verdict, sites, location) for one merge function."""
    filename, tree = load_module_ast(module)
    node = _find_function(tree, qualname_tail)
    if node is None:
        raise ValueError(f"merge function {module}.{qualname_tail} not found")
    classifier = _MergeClassifier(filename)
    for stmt in node.body:  # type: ignore[attr-defined]
        classifier.visit(stmt)
    sites = classifier.sites
    if sites:
        verdict = max((s.verdict for s in sites), key=_VERDICT_RANK.__getitem__)
    else:
        verdict = "order-insensitive"
    location = SourceLocation(filename, node.lineno, node.col_offset)
    return verdict, sites, location


def _probe_consistent(verdict: str, probe: ProbeResult) -> bool:
    if verdict == "order-insensitive":
        return probe.deterministic and not probe.order_sensitive
    if verdict == "replica-ordered":
        return probe.deterministic and probe.order_sensitive
    return not probe.deterministic


def verify_merges(merges: Sequence[MergeSpec]) -> DeterminismReport:
    """Classify every registered merge and cross-check against probes."""
    report = DeterminismReport()
    for spec in merges:
        module, _, tail = spec.qualname.partition(":")
        verdict, sites, location = classify_merge(module, tail)
        probe = spec.probe() if spec.probe is not None else None
        consistent = (
            _probe_consistent(verdict, probe) if probe is not None else None
        )
        finding = MergeFinding(
            qualname=spec.qualname, verdict=verdict, expect=spec.expect,
            sites=sites, probe=probe, probe_consistent=consistent,
            location=location,
        )
        report.findings.append(finding)
        if verdict == "order-sensitive":
            culprit = next(
                (s for s in sites if s.verdict == "order-sensitive"), None
            )
            detail = (
                f": `{culprit.op}` accumulates floats in "
                f"{culprit.iteration} iteration" if culprit else ""
            )
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    f"order-sensitive merge {spec.qualname}{detail}; merged "
                    "value depends on thread completion order",
                    culprit.location if culprit else location,
                )
            )
        if verdict != spec.expect:
            report.diagnostics.append(
                Diagnostic(
                    "error" if _VERDICT_RANK[verdict] > _VERDICT_RANK[spec.expect]
                    else "warning",
                    f"merge {spec.qualname} classified {verdict}, registry "
                    f"expects {spec.expect}",
                    location,
                )
            )
        if consistent is False:
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    f"merge {spec.qualname}: numeric probe "
                    f"(deterministic={probe.deterministic}, "
                    f"order_sensitive={probe.order_sensitive}) contradicts "
                    f"static verdict {verdict}",
                    location,
                )
            )
    return report


# ---------------------------------------------------------------------------
# Numeric probes for the real runtime merges.
# ---------------------------------------------------------------------------


def _probe_average_leaves() -> ProbeResult:
    import numpy as np

    from repro.runtime.parallel.trainer import _average_leaves

    replicas = [[np.float32(v)] for v in PROBE_VALUES]
    first = _average_leaves(replicas)[0]
    again = _average_leaves(replicas)[0]
    permuted = _average_leaves([replicas[1], replicas[3], replicas[0],
                                replicas[2]])[0]
    return ProbeResult(
        deterministic=bool(first == again),
        order_sensitive=bool(first != permuted),
    )


def _probe_step_stats_loss() -> ProbeResult:
    from repro.runtime.parallel.trainer import ParallelStepStats
    from repro.runtime.cluster import StepTiming

    def loss_of(values: Sequence[float]) -> float:
        stats = ParallelStepStats(
            losses=list(values),
            replica_compute_times=[0.0] * len(values),
            timing=StepTiming(0.0, 0.0, 0.0, n_buckets=0, overlap=False),
            gradient_bytes=0,
        )
        return stats.loss

    # Use f32 addends so the non-associativity is observable through the
    # float64 accumulator too (1e16 swamps 1.0 in f64).
    values = (1.0e16, 1.0, -1.0e16, 3.0)
    first = loss_of(values)
    again = loss_of(values)
    permuted = loss_of((values[1], values[3], values[0], values[2]))
    return ProbeResult(
        deterministic=first == again, order_sensitive=first != permuted
    )


def _probe_step_time_multi() -> ProbeResult:
    from repro.runtime.cluster import PodSimulator
    from repro.runtime.costmodel import TPU_V3_CORE

    pod = PodSimulator(TPU_V3_CORE, n_cores=4)
    computes = [3.0, 1.0, 4.0, 2.0]
    first = pod.step_time_multi(computes, 1024.0).total
    again = pod.step_time_multi(computes, 1024.0).total
    permuted = pod.step_time_multi(list(reversed(computes)), 1024.0).total
    return ProbeResult(
        deterministic=first == again, order_sensitive=first != permuted
    )


def _probe_reduce_mean() -> ProbeResult:
    import numpy as np

    from repro.runtime.parallel.shm import GradientExchange, LeafSpec

    spec = LeafSpec("array", "float32", (1,))

    def run(order) -> float:
        with GradientExchange(4, [spec]) as exchange:
            for replica, value in enumerate(order):
                exchange.write(replica, 0,
                               np.array([value], dtype=np.float32))
            exchange.reduce_mean()
            return float(exchange.averaged()[0][0])

    first = run(PROBE_VALUES)
    again = run(PROBE_VALUES)
    p = PROBE_VALUES
    permuted = run((p[1], p[3], p[0], p[2]))
    return ProbeResult(
        deterministic=first == again, order_sensitive=first != permuted
    )


#: The replica merges of the real runtime and their expected verdicts.
RUNTIME_MERGES: Tuple[MergeSpec, ...] = (
    MergeSpec(
        "repro.runtime.parallel.trainer:_average_leaves",
        expect="replica-ordered",
        probe=_probe_average_leaves,
    ),
    MergeSpec(
        "repro.runtime.parallel.trainer:ParallelStepStats.loss",
        expect="replica-ordered",
        probe=_probe_step_stats_loss,
    ),
    MergeSpec(
        "repro.runtime.cluster:PodSimulator.step_time_multi",
        expect="order-insensitive",
        probe=_probe_step_time_multi,
    ),
    # The shared-memory mirror of _average_leaves: the process backend's
    # in-place all-reduce must stay bit-compatible with the thread path.
    MergeSpec(
        "repro.runtime.parallel.shm:GradientExchange.reduce_mean",
        expect="replica-ordered",
        probe=_probe_reduce_mean,
    ),
)
