"""Dynamic lock witness: record real acquisition edges and cross-check.

The static lock-order graph predicts which nestings *can* happen; the
witness records which nestings *do*.  Every ``named_rlock`` acquisition
funnels through :class:`repro.locks.LockWitness`, which notes an edge
from each lock the acquiring thread already holds.  This module packages
the workloads that exercise the runtime's locks for real:

* a two-replica data-parallel training step (replica threads race on the
  compile cache, the plan cache, and the memory tracker);
* a barriered ``compile_module`` stampede (the single-flight path);
* an async-compile warm/hit cycle;
* a scoped ``track()`` measurement around allocations (the finalizer
  path that makes ``runtime.memory`` a leaf lock).

``run_runtime_witness`` returns the recorded edges; callers cross-check
them against the static graph with
:func:`repro.analysis.concurrency.lockorder.check_static_covers_dynamic`.
The corpus helpers run the clean and inverted lock pairs on real threads
(the inverted pair sequentially — recording both edge directions without
actually deadlocking the test process).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.locks import LOCK_REGISTRY, WITNESS, reset_witness, witness_edges


@dataclass
class WitnessReport:
    """What the instrumented locks observed during a workload."""

    edges: FrozenSet[Tuple[str, str]] = frozenset()
    acquisitions: Dict[str, int] = field(default_factory=dict)
    locks_registered: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"-- dynamic witness: {len(self.edges)} edge(s), "
            f"{sum(self.acquisitions.values())} acquisition(s) across "
            f"{len(self.acquisitions)} lock class(es) --"
        ]
        for a, b in sorted(self.edges):
            lines.append(f"  observed {a} -> {b}")
        for name in sorted(self.acquisitions):
            lines.append(f"  {name}: {self.acquisitions[name]} acquisition(s)")
        return "\n".join(lines)


def _snapshot() -> WitnessReport:
    return WitnessReport(
        edges=witness_edges(),
        acquisitions=dict(WITNESS.acquisitions),
        locks_registered=dict(LOCK_REGISTRY),
    )


def _train_two_replicas() -> None:
    import numpy as np

    from repro.nn import MLP, softmax_cross_entropy
    from repro.optim import SGD
    from repro.runtime.parallel import ParallelDataParallelTrainer

    trainer = ParallelDataParallelTrainer(
        lambda device: MLP.create(4, [6], 3, device=device, seed=0),
        lambda: SGD(learning_rate=0.1),
        2,
    )
    rng = np.random.default_rng(7)
    x = rng.standard_normal((4, 4)).astype(np.float32)
    y = np.eye(3, dtype=np.float32)[rng.integers(0, 3, 4)]

    def loss_fn(model, xs, ys):
        return softmax_cross_entropy(model(xs), ys)

    try:
        trainer.step(loss_fn, trainer.replicate_batch(x, y))
    finally:
        trainer.shutdown()


def _witness_module(dims: Tuple[int, int]):
    from repro.hlo.ir import HloComputation, HloInstruction, HloModule, Shape

    comp = HloComputation("entry")
    p0 = comp.add(HloInstruction("parameter", [], Shape(dims), parameter_number=0))
    neg = comp.add(HloInstruction("negate", [p0], Shape(dims)))
    comp.set_root(neg)
    return HloModule("witness", comp)


def _compile_stampede(n_threads: int = 4) -> None:
    from repro.hlo.compiler import compile_module

    barrier = threading.Barrier(n_threads)

    def worker() -> None:
        barrier.wait()
        compile_module(_witness_module((3, 5)))

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _async_compile_cycle() -> None:
    from repro.hlo.compiler import AsyncCompiler, compile_module

    compiler = AsyncCompiler()
    try:
        build = lambda: compile_module(_witness_module((2, 7)), use_cache=False)  # noqa: E731
        compiler.submit("witness-key", build).result(timeout=10.0)
        assert compiler.lookup("witness-key") is not None  # warm hit
    finally:
        compiler.shutdown()


def _tracked_allocation() -> None:
    import numpy as np

    from repro.runtime import memory

    with memory.track() as tracker:
        buffer = np.zeros(1024, dtype=np.float32)
        memory.track_buffer(buffer)
        assert tracker.live_bytes > 0
        del buffer  # fire the finalizer (the leaf-lock path) now


def run_runtime_witness() -> WitnessReport:
    """Exercise the runtime's locks on real threads; return observed edges."""
    reset_witness()
    _train_two_replicas()
    _compile_stampede()
    _async_compile_cycle()
    _tracked_allocation()
    return _snapshot()


# ---------------------------------------------------------------------------
# Corpus workloads
# ---------------------------------------------------------------------------


def run_consistent_pair(iterations: int = 50) -> WitnessReport:
    """Two threads hammer the A-then-B pair; records only A->B edges."""
    from .models import ConsistentPair

    reset_witness()
    pair = ConsistentPair()
    barrier = threading.Barrier(2)

    def writer() -> None:
        barrier.wait()
        for i in range(iterations):
            pair.update(f"w{i}")

    def reader() -> None:
        barrier.wait()
        for _ in range(iterations):
            pair.snapshot()

    threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return _snapshot()


def run_inverted_pair() -> WitnessReport:
    """Run both inverted-pair paths *sequentially*.

    Sequential execution records the A->B and B->A edges — the witness
    evidence of the hazard — without actually provoking the deadlock the
    static cycle predicts.
    """
    from .models import InvertedPair

    reset_witness()
    pair = InvertedPair()
    pair.forward("probe")
    pair.backward()
    return _snapshot()
