"""Combined concurrency-safety report: inventory, locksets, order, merges.

``analyze_runtime`` runs the full pipeline over the real parallel
engine: shared-state inventory, lockset race analysis, lock-order graph
(optionally cross-checked against a live dynamic witness run), and
merge-determinism verification.  The runtime must come back **clean**:
zero unregistered fields, zero unguarded accesses, an acyclic lock-order
graph, no order-sensitive merges, and every static-vs-dynamic
cross-check agreeing.

``analyze_corpus`` runs the same analyzers over the seeded hazard corpus
(:mod:`.models`) and checks each model produces *exactly* its expected
verdict — hazards caught with located diagnostics, clean models silent.
That closes the loop on both false negatives and false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import Diagnostic

from .determinism import DeterminismReport, verify_merges, RUNTIME_MERGES
from .inventory import (
    AnalysisTarget,
    InventoryReport,
    RUNTIME_TARGET,
    build_inventory,
)
from .lockorder import LockOrderReport, build_lock_order
from .lockset import Access, LocksetReport, StaticEdge, analyze_locksets
from .models import CORPUS_MODELS, CORPUS_TARGET, ConcurrencyModel


@dataclass
class ConcurrencyReport:
    """Everything the concurrency analysis concluded about one target."""

    target: str
    inventory: InventoryReport
    lockset: LocksetReport
    lockorder: LockOrderReport
    determinism: DeterminismReport
    dynamic_edges: FrozenSet[Tuple[str, str]] = frozenset()

    @property
    def cross_check_ok(self) -> bool:
        return self.lockorder.cross_check_ok and self.determinism.cross_check_ok

    def verdicts(self) -> Tuple[str, ...]:
        found = set()
        if self.inventory.unregistered or any(
            d.is_error for d in self.inventory.diagnostics
        ):
            found.add("unregistered-state")
        if self.lockset.violations or any(
            d.is_error for d in self.lockset.diagnostics
        ):
            found.add("race")
        if self.lockorder.cycles:
            found.add("deadlock")
        if self.determinism.order_sensitive:
            found.add("order-sensitive-merge")
        if not found:
            found.add("clean")
        return tuple(sorted(found))

    @property
    def ok(self) -> bool:
        return self.verdicts() == ("clean",) and self.cross_check_ok

    def diagnostics(self) -> List[Diagnostic]:
        return (
            list(self.inventory.diagnostics)
            + list(self.lockset.diagnostics)
            + list(self.lockorder.diagnostics)
            + list(self.determinism.diagnostics)
        )

    def render(self) -> str:
        sections = [
            f"== concurrency analysis: {self.target} ==",
            self.inventory.render(),
            self.lockset.render(),
            self.lockorder.render(),
            self.determinism.render(),
            f"verdicts: {', '.join(self.verdicts())} "
            f"(cross_check_ok={self.cross_check_ok})",
        ]
        errors = [d for d in self.diagnostics() if d.is_error]
        for diag in errors:
            sections.append(f"  error: {diag.message} "
                            f"[{diag.location.filename}:{diag.location.line}]")
        return "\n".join(sections)


def analyze_runtime(run_witness: bool = True) -> ConcurrencyReport:
    """Full pipeline over the real parallel engine."""
    dynamic: FrozenSet[Tuple[str, str]] = frozenset()
    if run_witness:
        from .witness import run_runtime_witness

        dynamic = run_runtime_witness().edges
    return analyze_target(RUNTIME_TARGET, RUNTIME_MERGES, dynamic)


def analyze_target(
    target: AnalysisTarget,
    merges: Sequence = (),
    dynamic_edges: FrozenSet[Tuple[str, str]] = frozenset(),
) -> ConcurrencyReport:
    inventory = build_inventory(target)
    lockset = analyze_locksets(target, inventory)
    lockorder = build_lock_order(lockset, dynamic_edges)
    determinism = verify_merges(merges)
    return ConcurrencyReport(
        target=target.name,
        inventory=inventory,
        lockset=lockset,
        lockorder=lockorder,
        determinism=determinism,
        dynamic_edges=dynamic_edges,
    )


# ---------------------------------------------------------------------------
# Corpus: per-model slices of the module-wide analysis
# ---------------------------------------------------------------------------


@dataclass
class ModelResult:
    """One corpus model's verdicts versus its ground truth."""

    model: ConcurrencyModel
    verdicts: Tuple[str, ...]
    diagnostics: List[Diagnostic] = field(default_factory=list)
    cross_check_ok: bool = True
    dynamic_edges: FrozenSet[Tuple[str, str]] = frozenset()

    @property
    def matches(self) -> bool:
        return (
            self.model.expect in self.verdicts
            and (self.model.expect != "clean" or self.verdicts == ("clean",))
            and self.cross_check_ok
        )

    def render(self) -> str:
        mark = "ok" if self.matches else "MISMATCH"
        return (
            f"  [{mark:>8}] {self.model.name}: expected {self.model.expect}, "
            f"got {', '.join(self.verdicts)} "
            f"(cross_check_ok={self.cross_check_ok})"
        )


def _belongs(via: str, functions: Tuple[str, ...]) -> bool:
    head = via.split(" -> ")[0]
    return head in functions


def _model_slice(
    full: LocksetReport, model: ConcurrencyModel
) -> Tuple[List[Access], List[StaticEdge], List[Diagnostic]]:
    accesses = [a for a in full.accesses if a.function in model.functions]
    edges = [e for e in full.static_edges if _belongs(e.via, model.functions)]
    diagnostics = []
    for access in accesses:
        if access.ok:
            continue
        held = (
            "{" + ", ".join(sorted(access.lockset)) + "}"
            if access.lockset else "{}"
        )
        diagnostics.append(
            Diagnostic(
                "error",
                f"unguarded {access.kind} of {access.field} "
                f"(access path `{access.path}`) in {access.function}: "
                f"holds {held}, requires `{access.required}`",
                access.location,
            )
        )
    return accesses, edges, diagnostics


def analyze_corpus_model(
    model: ConcurrencyModel,
    full: Optional[LocksetReport] = None,
    dynamic_edges: FrozenSet[Tuple[str, str]] = frozenset(),
) -> ModelResult:
    """Slice the corpus-wide lockset analysis down to one model's verdict."""
    if full is None:
        full = analyze_locksets(CORPUS_TARGET)
    accesses, edges, diagnostics = _model_slice(full, model)

    sliced = LocksetReport(target=model.name)
    sliced.accesses = accesses
    sliced.static_edges = edges
    sliced.diagnostics = diagnostics
    lockorder = build_lock_order(sliced, dynamic_edges)
    determinism = verify_merges(model.merges)

    verdicts = set()
    if any(not a.ok for a in accesses):
        verdicts.add("race")
    if lockorder.cycles:
        verdicts.add("deadlock")
    if determinism.order_sensitive:
        verdicts.add("order-sensitive-merge")
    if not verdicts:
        verdicts.add("clean")

    cross_ok = lockorder.cross_check_ok and determinism.cross_check_ok
    # A merge misclassified against its registry expectation is a
    # cross-check failure too: the static model and ground truth disagree.
    for finding in determinism.findings:
        if finding.verdict != finding.expect:
            cross_ok = False

    return ModelResult(
        model=model,
        verdicts=tuple(sorted(verdicts)),
        diagnostics=diagnostics + lockorder.diagnostics + determinism.diagnostics,
        cross_check_ok=cross_ok,
        dynamic_edges=frozenset(dynamic_edges),
    )


@dataclass
class CorpusReport:
    results: List[ModelResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.matches for r in self.results)

    def render(self) -> str:
        lines = [
            f"== concurrency corpus: {len(self.results)} model(s), "
            f"{sum(r.matches for r in self.results)} matching =="
        ]
        lines.extend(r.render() for r in self.results)
        for result in self.results:
            for diag in result.diagnostics:
                if diag.is_error:
                    lines.append(
                        f"    {result.model.name}: {diag.message} "
                        f"[{diag.location.filename}:{diag.location.line}]"
                    )
        return "\n".join(lines)


def analyze_corpus(run_witness: bool = True) -> CorpusReport:
    """Analyze every corpus model; dynamic witness for the runnable pairs."""
    full = analyze_locksets(CORPUS_TARGET)
    report = CorpusReport()
    for model in CORPUS_MODELS:
        dynamic: FrozenSet[Tuple[str, str]] = frozenset()
        if run_witness and model.name == "clean_consistent_pair":
            from .witness import run_consistent_pair

            dynamic = run_consistent_pair().edges
        elif run_witness and model.name == "deadlock_inverted_pair":
            from .witness import run_inverted_pair

            dynamic = run_inverted_pair().edges
        report.results.append(analyze_corpus_model(model, full, dynamic))
    return report
