"""Static lockset analysis: which locks are held at every shared access.

Classic lockset race detection (in the RacerD/Warlock tradition) over
Python ASTs.  For every function in a target's modules we compute, at
every statement, the set of lock *names* certainly held:

* ``with <lock>:`` blocks extend the lockset for their body, including
  nested acquisition — ``<lock>`` resolves through the inventory's lock
  table (module-global ``_LOCK``, ``self._lock`` instance locks, and
  cross-module ``mod._LOCK`` references via the import map);
* manual ``lock.acquire()`` / ``lock.release()`` pairs (the try/finally
  idiom) update the running lockset between statements;
* **method-call boundaries** are crossed with an interprocedural
  entry-lockset fixpoint: a private function's entry lockset is the
  intersection over all analyzed call sites of the locks held at the
  call, computed greatest-fixpoint-first so mutually recursive helpers
  converge; public (escaping) functions get the empty entry lockset;
* ``requires`` contracts from the :class:`GuardRegistry` pin a
  function's entry lockset explicitly, and every analyzed call site is
  *checked* to hold the declared locks.

Every read or write of a registry-guarded field whose effective lockset
(entry ∪ local) is missing the field's declared guard becomes a located
``unguarded-access`` diagnostic carrying the access path and the missing
lock.  The walk simultaneously records the raw material for the
lock-order graph: each acquisition made while other locks are held, and
each call made under locks (paired later with the callee's transitive
acquisitions).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import Diagnostic, SourceLocation

from .inventory import (
    AnalysisTarget,
    GuardRegistry,
    InventoryReport,
    build_inventory,
    load_module_ast,
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "add",
        "discard", "update", "setdefault", "popitem", "sort", "reverse",
    }
)

#: Method names resolved *by name alone* across the analyzed set.  Kept to
#: an allowlist so e.g. ``executor.submit`` does not alias every analyzed
#: ``submit`` method; entries here are names whose REQUIRES contracts must
#: be checked even when the receiver's type is not statically known.
NAME_RESOLVED_METHODS = frozenset({"build"})


@dataclass(frozen=True)
class Access:
    """One read/write of a registry-known shared field."""

    field: str  # field qualname
    path: str  # the access path as written, e.g. "self.stats.compile_hits"
    kind: str  # "read" | "write"
    function: str  # enclosing function qualname
    lockset: FrozenSet[str]  # effective lockset (entry ∪ local)
    required: Optional[str]  # the guard lock, None for exempt fields
    ok: bool
    location: SourceLocation


@dataclass(frozen=True)
class StaticEdge:
    """Lock-order edge: ``held`` was held when ``acquired`` was taken."""

    held: str
    acquired: str
    via: str  # function qualname (suffixed " -> callee" for call edges)
    location: SourceLocation


@dataclass
class _FuncInfo:
    qualname: str
    module: str
    cls: Optional[str]
    name: str
    location: SourceLocation
    # (lock name, local lockset at acquisition, location)
    acquisitions: List[Tuple[str, FrozenSet[str], SourceLocation]] = field(
        default_factory=list
    )
    # (callee qualname, local lockset at call, location)
    calls: List[Tuple[str, FrozenSet[str], SourceLocation]] = field(
        default_factory=list
    )
    # (field, path, kind, local lockset, location)
    raw_accesses: List[Tuple[str, str, str, FrozenSet[str], SourceLocation]] = field(
        default_factory=list
    )

    @property
    def is_private(self) -> bool:
        leaf = self.name
        return leaf.startswith("_") and not (
            leaf.startswith("__") and leaf.endswith("__")
        )


@dataclass
class LocksetReport:
    """All accesses, entry locksets, diagnostics, and lock-order material."""

    target: str
    accesses: List[Access] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    entry_locksets: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    static_edges: List[StaticEdge] = field(default_factory=list)
    functions_analyzed: int = 0

    @property
    def violations(self) -> List[Access]:
        return [a for a in self.accesses if not a.ok]

    def edge_set(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset((e.held, e.acquired) for e in self.static_edges)

    def render(self) -> str:
        guarded = [a for a in self.accesses if a.required is not None]
        lines = [
            f"-- lockset analysis: {self.functions_analyzed} function(s), "
            f"{len(guarded)} guarded access(es), "
            f"{len(self.violations)} violation(s) --"
        ]
        for acc in self.accesses:
            if acc.required is None:
                continue
            mark = "ok" if acc.ok else "RACE"
            held = "{" + ", ".join(sorted(acc.lockset)) + "}"
            lines.append(
                f"  [{mark:>4}] {acc.kind:>5} {acc.path} in {acc.function} "
                f"holding {held} (requires {acc.required})"
            )
        return "\n".join(lines)


class _ModuleContext:
    """Per-module name resolution: imports, lock table, known functions."""

    def __init__(
        self,
        module: str,
        filename: str,
        tree: ast.Module,
        lock_table: Dict[Tuple[str, ...], str],
        registry: GuardRegistry,
    ) -> None:
        self.module = module
        self.filename = filename
        self.tree = tree
        self.lock_table = lock_table
        self.registry = registry
        # local alias -> fully qualified module or symbol source module
        self.module_aliases: Dict[str, str] = {}
        self.symbol_sources: Dict[str, str] = {}
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    self.symbol_sources[local] = f"{stmt.module}.{alias.name}"
                    # ``from repro.runtime import memory`` imports a module.
                    self.module_aliases.setdefault(local, f"{stmt.module}.{alias.name}")

    def resolve_lock(self, node: ast.expr, cls: Optional[str]) -> Optional[str]:
        """Lock *name* for an expression, or None if not a known lock."""
        if isinstance(node, ast.Name):
            name = self.lock_table.get(("global", self.module, node.id))
            if name is not None:
                return name
            source = self.symbol_sources.get(node.id)
            if source is not None:
                mod, _, var = source.rpartition(".")
                return self.lock_table.get(("global", mod, var))
            return None
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base = node.value.id
            if base == "self" and cls is not None:
                return self.lock_table.get(("attr", self.module, cls, node.attr))
            target = self.module_aliases.get(base)
            if target is not None:
                return self.lock_table.get(("global", target, node.attr))
        return None

    def resolve_field(self, node: ast.expr, cls: Optional[str]) -> Optional[str]:
        """Shared-field qualname an expression reaches, or None.

        Attribute chains resolve to their *root* registered field:
        ``STATS.compiles`` is an access to ``...STATS``;
        ``self.stats.hits`` (in AsyncCompiler) goes through
        ``...AsyncCompiler.stats``.
        """
        known = self._known_field
        if isinstance(node, ast.Name):
            return known(f"{self.module}.{node.id}") or self._imported_field(node.id)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                base = node.value.id
                if base == "self" and cls is not None:
                    qual = f"{self.module}.{cls}.{node.attr}"
                    hit = known(qual)
                    if hit is not None:
                        return hit
                    if f"{self.module}.{cls}" in self.registry.guarded_classes:
                        return qual  # class-level guard covers every attr
                    return None
                target = self.module_aliases.get(base)
                if target is not None:
                    return known(f"{target}.{node.attr}")
            # Chain: resolve the base; an access through a registered field
            # is an access to that field.
            return self.resolve_field(node.value, cls)
        if isinstance(node, ast.Subscript):
            return self.resolve_field(node.value, cls)
        return None

    def _known_field(self, qualname: str) -> Optional[str]:
        reg = self.registry
        if qualname in reg.guarded_fields or qualname in reg.exempt_fields:
            return qualname
        return None

    def _imported_field(self, name: str) -> Optional[str]:
        source = self.symbol_sources.get(name)
        if source is not None:
            return self._known_field(source)
        return None


def _path_of(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_path_of(node.value)}.{node.attr}"
    if isinstance(node, ast.Subscript):
        return f"{_path_of(node.value)}[...]"
    return "<expr>"


class _FunctionWalker:
    """Walk one function body tracking the running local lockset."""

    def __init__(self, ctx: _ModuleContext, info: _FuncInfo,
                 functions: Dict[str, _FuncInfo]) -> None:
        self.ctx = ctx
        self.info = info
        self.functions = functions

    def loc(self, node: ast.AST) -> SourceLocation:
        return SourceLocation(
            self.ctx.filename, getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
        )

    # -- statements ---------------------------------------------------

    def walk_block(self, stmts: List[ast.stmt], lockset: FrozenSet[str]) -> None:
        running: Set[str] = set(lockset)
        for stmt in stmts:
            self.walk_stmt(stmt, frozenset(running), running)

    def walk_stmt(self, stmt: ast.stmt, lockset: FrozenSet[str],
                  running: Set[str]) -> None:
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            acquired: List[str] = []
            for item in stmt.items:
                lock = self.ctx.resolve_lock(item.context_expr, self.info.cls)
                if lock is not None:
                    inner = frozenset(lockset | set(acquired))
                    self._record_acquire(lock, inner, item.context_expr)
                    acquired.append(lock)
                else:
                    self.visit_expr(item.context_expr, lockset)
            self.walk_block(stmt.body, frozenset(lockset | set(acquired)))
        elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.visit_target(stmt.target, lockset)
                self.visit_expr(stmt.iter, lockset)
            else:
                self.visit_expr(stmt.test, lockset)
            self.walk_block(stmt.body, lockset)
            self.walk_block(stmt.orelse, lockset)
        elif isinstance(stmt, ast.Try):
            self.walk_block(stmt.body, lockset)
            for handler in stmt.handlers:
                self.walk_block(handler.body, lockset)
            self.walk_block(stmt.orelse, lockset)
            self.walk_block(stmt.finalbody, lockset)
        elif isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value, lockset)
            for target in stmt.targets:
                self.visit_target(target, lockset)
        elif isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value, lockset)
            self._record_access(stmt.target, "write", lockset)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.visit_expr(stmt.value, lockset)
                self.visit_target(stmt.target, lockset)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_access(target, "write", lockset)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            value = stmt.value
            if value is not None:
                # ``lock.acquire()`` / ``lock.release()`` as statements
                # update the running lockset for the rest of this block.
                manual = self._manual_lock_op(value)
                if manual is not None:
                    op, lock = manual
                    if op == "acquire":
                        self._record_acquire(lock, lockset, value)
                        running.add(lock)
                    else:
                        running.discard(lock)
                    return
                self.visit_expr(value, lockset)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: analyzed separately with an empty entry
            # lockset (it may escape and run on any thread).
            _collect_function(
                self.ctx, stmt,
                f"{self.info.qualname}.<locals>.{stmt.name}",
                self.info.cls, self.functions,
            )
        elif isinstance(stmt, ast.ClassDef):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.visit_expr(child, lockset)

    # -- expressions --------------------------------------------------

    def visit_target(self, node: ast.expr, lockset: FrozenSet[str]) -> None:
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self.visit_target(element, lockset)
        elif isinstance(node, ast.Starred):
            self.visit_target(node.value, lockset)
        elif isinstance(node, ast.Name):
            # Rebinding a local never mutates shared state; rebinding a
            # module global from inside a function shows as Name-store
            # with a ``global`` declaration — treat any store to a known
            # field name as a write.
            self._record_access(node, "write", lockset, only_known=True)
        else:
            self._record_access(node, "write", lockset)

    def visit_expr(self, node: ast.expr, lockset: FrozenSet[str]) -> None:
        if isinstance(node, ast.Call):
            self._visit_call(node, lockset)
            return
        if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
            self._record_access(node, "read", lockset)
            if isinstance(node, ast.Subscript):
                self.visit_expr(node.slice, lockset)
            return
        if isinstance(node, ast.Lambda):
            return  # opaque; lambdas in these modules close over locals
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.visit_expr(child, lockset)
            elif isinstance(child, ast.comprehension):
                self.visit_expr(child.iter, lockset)
                for cond in child.ifs:
                    self.visit_expr(cond, lockset)

    def _visit_call(self, node: ast.Call, lockset: FrozenSet[str]) -> None:
        func = node.func
        # Mutating method on a shared field: field.append(x) etc.
        if isinstance(func, ast.Attribute):
            fieldq = self.ctx.resolve_field(func.value, self.info.cls)
            if fieldq is not None:
                kind = "write" if func.attr in MUTATING_METHODS else "read"
                self._emit_access(fieldq, _path_of(func.value), kind,
                                  lockset, func)
        callee = self._resolve_callee(func)
        if callee is not None:
            self.info.calls.append((callee, lockset, self.loc(node)))
        for arg in node.args:
            self.visit_expr(arg, lockset)
        for kw in node.keywords:
            self.visit_expr(kw.value, lockset)

    def _resolve_callee(self, func: ast.expr) -> Optional[str]:
        module = self.ctx.module
        if isinstance(func, ast.Name):
            qual = f"{module}.{func.id}"
            if qual in self.functions:
                return qual
            source = self.ctx.symbol_sources.get(func.id)
            if source is not None and source in self.functions:
                return source
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base == "self" and self.info.cls is not None:
                    qual = f"{module}.{self.info.cls}.{func.attr}"
                    if qual in self.functions:
                        return qual
                target = self.ctx.module_aliases.get(base)
                if target is not None:
                    qual = f"{target}.{func.attr}"
                    if qual in self.functions:
                        return qual
            if func.attr in NAME_RESOLVED_METHODS:
                # Unknown receiver: by-name match, used so REQUIRES
                # contracts on e.g. ``plan.build()`` are still checked.
                matches = [
                    q for q in self.functions
                    if q.endswith(f".{func.attr}") and "<locals>" not in q
                ]
                if len(matches) >= 1:
                    return matches[0] if len(matches) == 1 else matches[0]
        return None

    def _manual_lock_op(self, node: ast.expr) -> Optional[Tuple[str, str]]:
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            return None
        if node.func.attr not in ("acquire", "release"):
            return None
        lock = self.ctx.resolve_lock(node.func.value, self.info.cls)
        if lock is None:
            return None
        return node.func.attr, lock

    # -- recording ----------------------------------------------------

    def _record_acquire(self, lock: str, lockset: FrozenSet[str],
                        node: ast.AST) -> None:
        self.info.acquisitions.append((lock, lockset, self.loc(node)))

    def _record_access(self, node: ast.expr, kind: str,
                       lockset: FrozenSet[str], only_known: bool = False) -> None:
        fieldq = self.ctx.resolve_field(node, self.info.cls)
        if fieldq is None:
            if not only_known and isinstance(node, (ast.Attribute, ast.Subscript)):
                # Still visit the base for reads buried in the chain.
                self.visit_expr(node.value, lockset)  # type: ignore[union-attr]
            return
        self._emit_access(fieldq, _path_of(node), kind, lockset, node)

    def _emit_access(self, fieldq: str, path: str, kind: str,
                     lockset: FrozenSet[str], node: ast.AST) -> None:
        self.info.raw_accesses.append((fieldq, path, kind, lockset, self.loc(node)))


def _collect_function(
    ctx: _ModuleContext,
    node: ast.stmt,
    qualname: str,
    cls: Optional[str],
    functions: Dict[str, _FuncInfo],
) -> None:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    info = _FuncInfo(
        qualname=qualname, module=ctx.module, cls=cls, name=node.name,
        location=SourceLocation(ctx.filename, node.lineno, node.col_offset),
    )
    functions[qualname] = info
    _FunctionWalker(ctx, info, functions).walk_block(node.body, frozenset())


def _collect_module(
    module: str, registry: GuardRegistry,
    lock_table: Dict[Tuple[str, ...], str],
    functions: Dict[str, _FuncInfo],
) -> None:
    filename, tree = load_module_ast(module)
    ctx = _ModuleContext(module, filename, tree, lock_table, registry)
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_function(ctx, stmt, f"{module}.{stmt.name}", None, functions)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _collect_function(
                        ctx, item, f"{module}.{stmt.name}.{item.name}",
                        stmt.name, functions,
                    )


def _entry_locksets(
    functions: Dict[str, _FuncInfo], registry: GuardRegistry,
    all_locks: FrozenSet[str], diagnostics: List[Diagnostic],
) -> Dict[str, FrozenSet[str]]:
    """Greatest-fixpoint entry locksets + REQUIRES call-site verification."""
    call_sites: Dict[str, List[Tuple[str, FrozenSet[str]]]] = {}
    for info in functions.values():
        for callee, local, _loc in info.calls:
            call_sites.setdefault(callee, []).append((info.qualname, local))

    entry: Dict[str, FrozenSet[str]] = {}
    for qual, info in functions.items():
        if qual in registry.requires:
            entry[qual] = registry.requires[qual]
        elif info.is_private and call_sites.get(qual):
            entry[qual] = all_locks  # ⊤, refined downward
        else:
            entry[qual] = frozenset()  # public / escaping / uncalled

    changed = True
    while changed:
        changed = False
        for qual, info in functions.items():
            if qual in registry.requires or not (
                info.is_private and call_sites.get(qual)
            ):
                continue
            new = all_locks
            for caller, local in call_sites[qual]:
                new = new & (entry[caller] | local)
            if new != entry[qual]:
                entry[qual] = new
                changed = True

    # Verify REQUIRES contracts at every analyzed call site.
    for info in functions.values():
        for callee, local, loc in info.calls:
            required = registry.requires.get(callee)
            if required is None:
                continue
            held = entry[info.qualname] | local
            missing = required - held
            if missing:
                diagnostics.append(
                    Diagnostic(
                        "error",
                        f"call to {callee} from {info.qualname} without "
                        f"required lock(s) {sorted(missing)} "
                        f"(REQUIRES contract)",
                        loc,
                    )
                )
    return entry


def _transitive_acquires(
    functions: Dict[str, _FuncInfo],
) -> Dict[str, FrozenSet[str]]:
    acquires: Dict[str, Set[str]] = {
        qual: {lock for lock, _ls, _loc in info.acquisitions}
        for qual, info in functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qual, info in functions.items():
            for callee, _local, _loc in info.calls:
                extra = acquires.get(callee, set()) - acquires[qual]
                if extra:
                    acquires[qual] |= extra
                    changed = True
    return {qual: frozenset(locks) for qual, locks in acquires.items()}


def analyze_locksets(
    target: AnalysisTarget, inventory: Optional[InventoryReport] = None
) -> LocksetReport:
    """Run the lockset analysis over every module of ``target``."""
    if inventory is None:
        inventory = build_inventory(target)
    registry = target.registry
    lock_table = inventory.lock_table()
    all_locks = frozenset(lock_table.values())

    functions: Dict[str, _FuncInfo] = {}
    for module in target.modules:
        _collect_module(module, registry, lock_table, functions)

    report = LocksetReport(target=target.name)
    report.functions_analyzed = len(functions)
    entry = _entry_locksets(functions, registry, all_locks, report.diagnostics)
    report.entry_locksets = dict(entry)
    acquires = _transitive_acquires(functions)

    def exempt_function(qual: str, fieldq: str) -> bool:
        if qual in registry.exempt_functions:
            return True
        # A constructor writing its own instance attributes publishes
        # them only when __init__ returns.
        cls = fieldq.rpartition(".")[0]
        return qual == f"{cls}.__init__"

    for qual, info in functions.items():
        base = entry[qual]
        for fieldq, path, kind, local, loc in info.raw_accesses:
            effective = base | local
            required = registry.lock_for_field(fieldq)
            if required is None:
                report.accesses.append(
                    Access(fieldq, path, kind, qual, effective, None, True, loc)
                )
                continue
            ok = (
                required in effective
                or exempt_function(qual, fieldq)
                or registry.is_exempt_field(fieldq)
            )
            report.accesses.append(
                Access(fieldq, path, kind, qual, effective, required, ok, loc)
            )
            if not ok:
                held = "{" + ", ".join(sorted(effective)) + "}" if effective else "{}"
                report.diagnostics.append(
                    Diagnostic(
                        "error",
                        f"unguarded {kind} of {fieldq} (access path `{path}`) "
                        f"in {qual}: holds {held}, requires "
                        f"`{required}`",
                        loc,
                    )
                )
        # Lock-order material: direct nested acquisitions...
        for lock, local, loc in info.acquisitions:
            for held in base | local:
                if held != lock:
                    report.static_edges.append(StaticEdge(held, lock, qual, loc))
        # ... and acquisitions reached through calls made under locks.
        for callee, local, loc in info.calls:
            held_here = base | local
            if not held_here:
                continue
            for acquired in acquires.get(callee, frozenset()):
                for held in held_here:
                    if held != acquired:
                        report.static_edges.append(
                            StaticEdge(held, acquired, f"{qual} -> {callee}", loc)
                        )
    return report
