"""Lock-order graph: static deadlock detection with a dynamic witness.

Two locks deadlock when two threads acquire them in opposite orders.  We
build a directed graph over *lock names* — vertex per ``named_rlock``
name, edge ``a -> b`` whenever ``b`` is acquired while ``a`` is held —
from two independent sources:

* **static edges** from the lockset analysis: nested ``with`` blocks
  plus calls made under locks paired with the callee's transitive
  acquisitions (see :mod:`.lockset`);
* **dynamic edges** from :class:`repro.locks.LockWitness`: every real
  acquisition records an edge from each lock the thread already holds.

A cycle in the union graph is a potential deadlock, reported as an error
naming the cycle's lock sequence and (for static edges) the code
locations that create each edge.

The two edge sets must also *agree*: a dynamic edge the static analysis
cannot predict means the AST model of the runtime is wrong (an
un-modeled acquisition path), so ``cross_check_ok`` fails — unless the
acquired lock is a declared **leaf**.  ``runtime.memory`` is the one
leaf: buffer-release finalizers run at garbage-collection points, so the
interpreter can acquire it while *any* other lock is held.  Leaves are
safe to exempt precisely because a leaf's own critical sections take no
further locks (verified here: a leaf with outgoing edges is an error),
so leaf edges can never close a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import Diagnostic, SourceLocation

from .lockset import LocksetReport, StaticEdge

#: Locks acquirable from anywhere (GC finalizers), exempt from the
#: dynamic-edge prediction check.  Must remain sinks of the order graph.
LEAF_LOCKS: FrozenSet[str] = frozenset({"runtime.memory"})


@dataclass
class LockOrderReport:
    """The combined lock-order graph and its verdicts."""

    static_edges: List[StaticEdge] = field(default_factory=list)
    dynamic_edges: FrozenSet[Tuple[str, str]] = frozenset()
    leaf_locks: FrozenSet[str] = LEAF_LOCKS
    cycles: List[Tuple[str, ...]] = field(default_factory=list)
    unpredicted_dynamic: List[Tuple[str, str]] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def acyclic(self) -> bool:
        return not self.cycles

    @property
    def cross_check_ok(self) -> bool:
        return not self.unpredicted_dynamic

    def static_edge_set(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset((e.held, e.acquired) for e in self.static_edges)

    def render(self) -> str:
        union = sorted(self.static_edge_set() | self.dynamic_edges)
        lines = [
            f"-- lock-order graph: {len(union)} edge(s), "
            f"{len(self.cycles)} cycle(s), cross_check_ok={self.cross_check_ok} --"
        ]
        static = self.static_edge_set()
        for a, b in union:
            sources = []
            if (a, b) in static:
                sources.append("static")
            if (a, b) in self.dynamic_edges:
                sources.append("dynamic")
            lines.append(f"  {a} -> {b}  [{'+'.join(sources)}]")
        for cycle in self.cycles:
            lines.append("  CYCLE: " + " -> ".join(cycle + (cycle[0],)))
        for a, b in self.unpredicted_dynamic:
            lines.append(f"  UNPREDICTED dynamic edge: {a} -> {b}")
        return "\n".join(lines)


def build_lock_order(
    lockset_report: LocksetReport,
    dynamic_edges: FrozenSet[Tuple[str, str]] = frozenset(),
    leaf_locks: FrozenSet[str] = LEAF_LOCKS,
) -> LockOrderReport:
    """Combine static and dynamic acquisition edges and find cycles."""
    report = LockOrderReport(
        static_edges=list(lockset_report.static_edges),
        dynamic_edges=frozenset(dynamic_edges),
        leaf_locks=leaf_locks,
    )
    static = report.static_edge_set()

    graph = nx.DiGraph()
    for a, b in static | report.dynamic_edges:
        graph.add_edge(a, b)
    for cycle in nx.simple_cycles(graph):
        # Canonical rotation so reports and tests are deterministic.
        pivot = min(range(len(cycle)), key=lambda i: cycle[i])
        report.cycles.append(tuple(cycle[pivot:] + cycle[:pivot]))
    report.cycles.sort()

    locations: Dict[Tuple[str, str], SourceLocation] = {}
    for edge in report.static_edges:
        locations.setdefault((edge.held, edge.acquired), edge.location)
    for cycle in report.cycles:
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        where = [
            f"{a}->{b} at {loc.filename}:{loc.line}"
            for a, b in pairs
            if (loc := locations.get((a, b))) is not None
        ]
        detail = ("; " + "; ".join(where)) if where else ""
        report.diagnostics.append(
            Diagnostic(
                "error",
                "potential deadlock: lock-order cycle "
                + " -> ".join(cycle + (cycle[0],))
                + detail,
                locations.get((cycle[0], cycle[1 % len(cycle)]))
                or SourceLocation("<dynamic>", 0, 0),
            )
        )

    # Leaves must be sinks, else the leaf exemption could hide a cycle.
    for a, b in sorted(static | report.dynamic_edges):
        if a in leaf_locks:
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    f"leaf lock `{a}` has an outgoing edge to `{b}`: leaf "
                    "critical sections must not acquire other locks",
                    locations.get((a, b)) or SourceLocation("<dynamic>", 0, 0),
                )
            )

    # Cross-check: every dynamic edge must be statically predicted, or
    # point into a declared leaf.
    for a, b in sorted(report.dynamic_edges):
        if (a, b) not in static and b not in leaf_locks:
            report.unpredicted_dynamic.append((a, b))
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    f"dynamic lock-order edge {a} -> {b} was never predicted "
                    "statically: un-modeled acquisition path",
                    SourceLocation("<dynamic>", 0, 0),
                )
            )
    return report


def check_static_covers_dynamic(
    static: FrozenSet[Tuple[str, str]],
    dynamic: FrozenSet[Tuple[str, str]],
    leaf_locks: FrozenSet[str] = LEAF_LOCKS,
) -> Tuple[bool, Sequence[Tuple[str, str]]]:
    """Standalone form of the witness cross-check used by the stress test."""
    missing = [
        (a, b) for a, b in sorted(dynamic)
        if (a, b) not in static and b not in leaf_locks
    ]
    return (not missing, missing)


def merge_dynamic_witness(
    *edge_sets: FrozenSet[Tuple[str, str]],
) -> FrozenSet[Tuple[str, str]]:
    merged: FrozenSet[Tuple[str, str]] = frozenset()
    for edges in edge_sets:
        merged |= edges
    return merged


def order_position(report: LockOrderReport) -> Optional[Dict[str, int]]:
    """A topological rank per lock when the graph is acyclic, else None.

    The rank makes the global lock hierarchy printable: a thread may only
    acquire locks of strictly increasing rank (leaves rank last).
    """
    if not report.acyclic:
        return None
    graph = nx.DiGraph()
    for a, b in report.static_edge_set() | report.dynamic_edges:
        graph.add_edge(a, b)
    return {name: i for i, name in enumerate(nx.topological_sort(graph))}
