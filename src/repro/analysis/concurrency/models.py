"""Seeded concurrency-hazard corpus: ground truth for the analyzers.

Like the ownership and tracing corpora, this module is a bank of small,
self-contained models with *known* verdicts — each deliberately clean or
deliberately seeded with one hazard class — used to prove the analyzers
catch what they claim to catch (and, on the clean models, that they stay
silent).  The functions are real, runnable code: the dynamic-witness
tests execute ``ConsistentPair``/``InvertedPair`` on actual threads to
check recorded acquisition edges against the static lock-order graph,
and ``completion_order_merge`` really does produce different floats for
different completion orders (the numeric probe forces both orders with
gated futures).

Seeded hazards:

* three lockset races — an unlocked read-modify-write, a check-then-act
  whose write escapes the lock, a stats object whose ``reset`` forgets
  the lock its ``record`` takes — plus an unlocked dirty read;
* one lock-order cycle — ``InvertedPair`` acquires ``corpus.lock_a`` and
  ``corpus.lock_b`` in both orders;
* one order-sensitive merge — a float accumulation iterated in
  ``as_completed`` (completion) order.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.locks import named_rlock

from .determinism import MergeSpec, ProbeResult
from .inventory import AnalysisTarget, GuardRegistry

_LOCK_A = named_rlock("corpus.lock_a")
_LOCK_B = named_rlock("corpus.lock_b")
_STATS_LOCK = named_rlock("corpus.stats")
_CACHE_LOCK = named_rlock("corpus.cache")

#: Shared mutable state the corpus models contend on.
_COUNTER: Dict[str, int] = {"value": 0}
_CACHE: Dict[str, int] = {}
_EVENTS: List[str] = []


# -- clean: correctly guarded counter ---------------------------------------


def guarded_increment() -> int:
    """Read-modify-write under the counter's declared lock."""
    with _LOCK_A:
        _COUNTER["value"] += 1
        return _COUNTER["value"]


# -- race: the same counter, no lock ----------------------------------------


def unlocked_increment() -> int:
    _COUNTER["value"] += 1  # seeded race: no corpus.lock_a
    return _COUNTER["value"]


# -- race: check under lock, act outside it ---------------------------------


def check_then_act(key: str) -> int:
    with _CACHE_LOCK:
        hit = key in _CACHE
    if not hit:
        _CACHE[key] = len(key)  # seeded race: write escaped the lock
    with _CACHE_LOCK:
        return _CACHE[key]


# -- race: dirty read --------------------------------------------------------


def dirty_read_latest() -> str:
    return _EVENTS[-1] if _EVENTS else ""  # seeded race: no corpus.lock_b


# -- race: stats object whose reset forgets the lock ------------------------


class RaceyStats:
    """``record`` takes ``corpus.stats``; ``reset`` forgot to."""

    def __init__(self) -> None:
        self.records: List[float] = []
        self.total = 0.0

    def record(self, value: float) -> None:
        with _STATS_LOCK:
            self.records.append(value)
            self.total += value

    def reset(self) -> None:
        self.records.clear()  # seeded race: no corpus.stats
        self.total = 0.0


RSTATS = RaceyStats()


# -- clean: consistent A-before-B lock pair ---------------------------------


class ConsistentPair:
    """Both paths take ``corpus.lock_a`` then ``corpus.lock_b``."""

    def update(self, event: str) -> None:
        with _LOCK_A:
            with _LOCK_B:
                _EVENTS.append(event)

    def snapshot(self) -> List[str]:
        with _LOCK_A:
            with _LOCK_B:
                return list(_EVENTS)


# -- deadlock: the same pair, inverted on one path --------------------------


class InvertedPair:
    """``forward`` is A-then-B; ``backward`` is B-then-A: cycle."""

    def forward(self, event: str) -> None:
        with _LOCK_A:
            with _LOCK_B:  # seeded: A -> B
                _EVENTS.append(event)

    def backward(self) -> List[str]:
        with _LOCK_B:
            with _LOCK_A:  # seeded: B -> A closes the cycle
                return list(_EVENTS)


# -- order-sensitive merge: accumulate in completion order ------------------


def completion_order_merge(futures: Sequence) -> float:
    """Sum replica results as they finish — the seeded nondeterminism.

    Float addition is not associative, so the total depends on which
    replica thread completed first.
    """
    total = 0.0
    for future in as_completed(futures):
        total += future.result()
    return total


# -- clean merge: accumulate in replica-id order ----------------------------


def replica_order_merge(replica_values: Sequence[float]) -> float:
    total = 0.0
    for r in range(len(replica_values)):
        total += replica_values[r]
    return total


# ---------------------------------------------------------------------------
# Registry and model specs
# ---------------------------------------------------------------------------

_MODULE = __name__

CORPUS_REGISTRY = GuardRegistry(
    guarded_fields={
        f"{_MODULE}._COUNTER": "corpus.lock_a",
        f"{_MODULE}._CACHE": "corpus.cache",
        f"{_MODULE}._EVENTS": "corpus.lock_b",
    },
    guarded_classes={
        f"{_MODULE}.RaceyStats": "corpus.stats",
    },
    exempt_fields={
        f"{_MODULE}.RSTATS": (
            "singleton handle; state guarded per-class by corpus.stats"
        ),
        f"{_MODULE}.CORPUS_REGISTRY": "analysis metadata, written at import only",
        f"{_MODULE}.CORPUS_TARGET": "analysis metadata, written at import only",
    },
)

CORPUS_TARGET = AnalysisTarget(
    name="corpus", modules=(_MODULE,), registry=CORPUS_REGISTRY
)


# Adversarial addends: in f64, 1e16 + 1.0 == 1e16, so the sum is 3.0
# left-to-right but 4.0 when the 1e16s cancel first.
_MERGE_VALUES: Tuple[float, ...] = (1.0e16, 1.0, -1.0e16, 3.0)


def _run_completion_merge(order: Sequence[int]) -> float:
    """Run the completion-order merge forcing a specific finish order."""
    gates = [threading.Event() for _ in _MERGE_VALUES]

    def make_task(i: int):
        def task() -> float:
            assert gates[i].wait(10.0), "probe gate timed out"
            return _MERGE_VALUES[i]

        return task

    with ThreadPoolExecutor(max_workers=len(_MERGE_VALUES)) as pool:
        futures = [pool.submit(make_task(i)) for i in range(len(_MERGE_VALUES))]
        box: Dict[str, float] = {}
        runner = threading.Thread(
            target=lambda: box.__setitem__("total", completion_order_merge(futures))
        )
        runner.start()
        for i in order:
            gates[i].set()
            while not futures[i].done():
                time.sleep(0.0005)
            time.sleep(0.002)  # let as_completed observe this completion
        runner.join(10.0)
    return box["total"]


def _probe_completion_merge() -> ProbeResult:
    ltr = _run_completion_merge((0, 1, 2, 3))
    paired = _run_completion_merge((0, 2, 1, 3))
    return ProbeResult(deterministic=ltr == paired, order_sensitive=ltr != paired)


def _probe_replica_merge() -> ProbeResult:
    first = replica_order_merge(_MERGE_VALUES)
    again = replica_order_merge(_MERGE_VALUES)
    values = _MERGE_VALUES
    permuted = replica_order_merge((values[0], values[2], values[1], values[3]))
    return ProbeResult(deterministic=first == again, order_sensitive=first != permuted)


@dataclass(frozen=True)
class ConcurrencyModel:
    """One corpus entry: functions to analyze and the expected verdict."""

    name: str
    expect: str  # "clean" | "race" | "deadlock" | "order-sensitive-merge"
    functions: Tuple[str, ...] = ()  # qualnames within this module
    merges: Tuple[MergeSpec, ...] = ()
    description: str = ""


def _q(*tails: str) -> Tuple[str, ...]:
    return tuple(f"{_MODULE}.{tail}" for tail in tails)


CORPUS_MODELS: Tuple[ConcurrencyModel, ...] = (
    ConcurrencyModel(
        "clean_guarded_counter", "clean", _q("guarded_increment"),
        description="read-modify-write correctly under corpus.lock_a",
    ),
    ConcurrencyModel(
        "race_unlocked_counter", "race", _q("unlocked_increment"),
        description="same counter mutated with an empty lockset",
    ),
    ConcurrencyModel(
        "race_check_then_act", "race", _q("check_then_act"),
        description="membership test under the lock, insert outside it",
    ),
    ConcurrencyModel(
        "race_dirty_read", "race", _q("dirty_read_latest"),
        description="unlocked read of a guarded list",
    ),
    ConcurrencyModel(
        "race_stats_reset", "race",
        _q("RaceyStats.record", "RaceyStats.reset"),
        description="record locks corpus.stats, reset does not",
    ),
    ConcurrencyModel(
        "clean_consistent_pair", "clean",
        _q("ConsistentPair.update", "ConsistentPair.snapshot"),
        description="both paths acquire lock_a before lock_b",
    ),
    ConcurrencyModel(
        "deadlock_inverted_pair", "deadlock",
        _q("InvertedPair.forward", "InvertedPair.backward"),
        description="A->B on one path, B->A on the other",
    ),
    ConcurrencyModel(
        "merge_completion_order", "order-sensitive-merge",
        merges=(
            MergeSpec(
                f"{_MODULE}:completion_order_merge",
                expect="order-sensitive",
                probe=_probe_completion_merge,
            ),
        ),
        description="float accumulation iterated in as_completed order",
    ),
    ConcurrencyModel(
        "merge_replica_order", "clean",
        merges=(
            MergeSpec(
                f"{_MODULE}:replica_order_merge",
                expect="replica-ordered",
                probe=_probe_replica_merge,
            ),
        ),
        description="float accumulation pinned to replica-id order",
    ),
)
