"""Static concurrency-safety analysis for the parallel execution engine.

Four cooperating analyses over the runtime's Python ASTs, cross-checked
against dynamic evidence from the instrumented locks
(:mod:`repro.locks`):

* :mod:`.inventory` — shared-state inventory + the ``guarded_by``
  registry: every mutable reachable from worker threads must be guarded
  by a named lock or exempt for a stated reason;
* :mod:`.lockset` — lockset race detection: every access to a guarded
  field must statically hold its lock (interprocedural entry-lockset
  fixpoint, REQUIRES contracts);
* :mod:`.lockorder` — lock-order graph: cycles are potential deadlocks;
  dynamic witness edges must be statically predicted (leaf locks exempt);
* :mod:`.determinism` — replica-merge verification: float accumulations
  must be replica-ordered, never completion-ordered.

:mod:`.models` is the seeded hazard corpus (ground truth);
:mod:`.report` assembles the combined verdicts for the CLI and CI gate.
"""

from .determinism import (
    MergeSpec,
    ProbeResult,
    RUNTIME_MERGES,
    verify_merges,
)
from .inventory import (
    AnalysisTarget,
    GuardRegistry,
    RUNTIME_TARGET,
    SharedField,
    build_inventory,
)
from .lockorder import LEAF_LOCKS, build_lock_order, check_static_covers_dynamic
from .lockset import Access, LocksetReport, StaticEdge, analyze_locksets
from .models import CORPUS_MODELS, CORPUS_TARGET, ConcurrencyModel
from .report import (
    ConcurrencyReport,
    CorpusReport,
    analyze_corpus,
    analyze_corpus_model,
    analyze_runtime,
    analyze_target,
)
from .witness import (
    WitnessReport,
    run_consistent_pair,
    run_inverted_pair,
    run_runtime_witness,
)

__all__ = [
    "Access",
    "AnalysisTarget",
    "ConcurrencyModel",
    "ConcurrencyReport",
    "CorpusReport",
    "CORPUS_MODELS",
    "CORPUS_TARGET",
    "GuardRegistry",
    "LEAF_LOCKS",
    "LocksetReport",
    "MergeSpec",
    "ProbeResult",
    "RUNTIME_MERGES",
    "RUNTIME_TARGET",
    "SharedField",
    "StaticEdge",
    "WitnessReport",
    "analyze_corpus",
    "analyze_corpus_model",
    "analyze_runtime",
    "analyze_target",
    "build_inventory",
    "build_lock_order",
    "check_static_covers_dynamic",
    "analyze_locksets",
    "run_consistent_pair",
    "run_inverted_pair",
    "run_runtime_witness",
    "verify_merges",
]
