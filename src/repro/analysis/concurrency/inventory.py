"""Shared-state inventory: what the worker threads can touch, and under what lock.

The first question a concurrency analysis must answer is *what is shared*.
This module AST-scans the runtime modules reachable from
:class:`~repro.runtime.parallel.executor.MultiReplicaExecutor` and
:class:`~repro.hlo.compiler.AsyncCompiler` worker threads and collects
every **shared mutable candidate**:

* module-level assignments of mutable containers (dict/list/set literals
  and comprehensions) or constructor calls (``CompilerStats()``,
  ``MemoryTracker()``, ...);
* class-level mutable attributes;
* instance attributes initialized to mutable values in ``__init__``.

Each candidate must then be *accounted for* by the target's
:class:`GuardRegistry` — the ``guarded_by`` map — in exactly one way:

* ``guarded_fields[qualname] = lock`` — every read/write of the field
  needs ``lock`` in the static lockset;
* ``guarded_classes[class] = lock`` — ditto for every ``self.<attr>``
  access inside the class's methods (stats/tracker objects whose fields
  are individually counters);
* ``exempt_fields`` / ``exempt_classes`` — shared but safe *for a stated
  reason* (thread-confined, replica-indexed, barrier-handoff, internally
  synchronized), which the report prints;
* otherwise the candidate is **unregistered**: an error if any analyzed
  code writes it (silently-added shared state is exactly the bug class
  this gate exists for), a note if it is only ever read (an
  import-time-constant table).

The scan also resolves every lock definition: ``X = named_rlock("name")``
at module level and ``self.X = named_rlock("name")`` in ``__init__``
bind the static lock identity the lockset analysis uses.  A bare
``threading.Lock()``/``RLock()`` assignment is reported as an *anonymous
lock* diagnostic — unnamed locks cannot be checked, which is why the
runtime constructs every lock through :func:`repro.locks.named_rlock`.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import Diagnostic, SourceLocation

#: Call targets that produce locks (tracked, not shared-state candidates).
_LOCK_FACTORIES = {"named_rlock"}
_ANONYMOUS_LOCK_FACTORIES = {"Lock", "RLock", "Semaphore", "Condition"}

#: Call targets whose results are immutable or synchronization/meta objects,
#: never shared-mutable-state candidates.
_IMMUTABLE_FACTORIES = {
    "ContextVar",
    "TypeVar",
    "frozenset",
    "tuple",
    "namedtuple",
    "property",
    "contextmanager",
    "object",
    "compile",
}


@dataclass(frozen=True)
class SharedField:
    """One shared mutable candidate and how the registry accounts for it."""

    qualname: str  # e.g. "repro.hlo.compiler._CACHE" / "....AsyncCompiler._ready"
    kind: str  # "module-global" | "class-attr" | "instance-attr"
    status: str  # "guarded" | "exempt" | "unregistered"
    guard: Optional[str]  # lock name when guarded
    reason: Optional[str]  # exemption reason when exempt
    location: SourceLocation


@dataclass(frozen=True)
class LockDef:
    """One statically-resolvable lock binding."""

    key: Tuple[str, ...]  # ("global", module, var) | ("attr", module, cls, attr)
    name: Optional[str]  # None for anonymous (un-analyzable) locks
    location: SourceLocation


@dataclass
class GuardRegistry:
    """The ``guarded_by`` registry: lock discipline, declared and checkable.

    ``requires`` declares *function contracts*: locks that must already be
    held on entry (verified at every analyzed call site), seeding the
    interprocedural lockset analysis the same way ``guarded_fields`` seeds
    the access checks.
    """

    guarded_fields: Dict[str, str] = field(default_factory=dict)
    guarded_classes: Dict[str, str] = field(default_factory=dict)
    exempt_fields: Dict[str, str] = field(default_factory=dict)
    exempt_classes: Dict[str, str] = field(default_factory=dict)
    #: Function qualnames whose accesses are construction-time by nature.
    exempt_functions: FrozenSet[str] = frozenset()
    requires: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def lock_for_field(self, qualname: str) -> Optional[str]:
        lock = self.guarded_fields.get(qualname)
        if lock is not None:
            return lock
        cls = qualname.rpartition(".")[0]
        return self.guarded_classes.get(cls)

    def is_exempt_field(self, qualname: str) -> bool:
        if qualname in self.exempt_fields:
            return True
        cls = qualname.rpartition(".")[0]
        return cls in self.exempt_classes

    def accounted(self, qualname: str) -> Optional[str]:
        """("guarded", lock) / ("exempt", reason) classification, else None."""
        if self.lock_for_field(qualname) is not None:
            return "guarded"
        if self.is_exempt_field(qualname):
            return "exempt"
        return None

    def reason_for(self, qualname: str) -> Optional[str]:
        reason = self.exempt_fields.get(qualname)
        if reason is not None:
            return reason
        cls = qualname.rpartition(".")[0]
        return self.exempt_classes.get(cls)


@dataclass(frozen=True)
class AnalysisTarget:
    """A set of modules plus the registry that governs them."""

    name: str
    modules: Tuple[str, ...]
    registry: GuardRegistry


@dataclass
class InventoryReport:
    """Everything the shared-state scan discovered."""

    target: str
    fields: List[SharedField] = field(default_factory=list)
    locks: List[LockDef] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def guarded(self) -> List[SharedField]:
        return [f for f in self.fields if f.status == "guarded"]

    @property
    def exempt(self) -> List[SharedField]:
        return [f for f in self.fields if f.status == "exempt"]

    @property
    def unregistered(self) -> List[SharedField]:
        return [f for f in self.fields if f.status == "unregistered"]

    def lock_table(self) -> Dict[Tuple[str, ...], str]:
        return {d.key: d.name for d in self.locks if d.name is not None}

    def render(self) -> str:
        lines = [f"-- shared-state inventory: {len(self.fields)} field(s), "
                 f"{len(self.locks)} lock definition(s) --"]
        for f in self.fields:
            if f.status == "guarded":
                note = f"guarded_by {f.guard}"
            elif f.status == "exempt":
                note = f"exempt: {f.reason}"
            else:
                note = "UNREGISTERED"
            lines.append(f"  [{f.kind:>13}] {f.qualname}: {note}")
        for d in self.locks:
            label = d.name if d.name is not None else "<anonymous>"
            lines.append(f"  [         lock] {'.'.join(d.key[1:])}: {label}")
        return "\n".join(lines)


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp,
                         ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name is None:
            return False
        if name in _LOCK_FACTORIES or name in _ANONYMOUS_LOCK_FACTORIES:
            return False
        if name in _IMMUTABLE_FACTORIES:
            return False
        return True
    return False


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _lock_def(node: ast.expr) -> Optional[Optional[str]]:
    """``named_rlock("x")`` -> "x"; anonymous lock ctor -> None; else no-def.

    Returns the lock name, ``None`` for an anonymous lock, or raises
    nothing and returns ``...`` sentinel via wrapper below.
    """
    if not isinstance(node, ast.Call):
        return ...  # type: ignore[return-value]
    name = _call_name(node)
    if name in _LOCK_FACTORIES:
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            return node.args[0].value
        return None  # named_rlock with a non-literal name is un-analyzable
    if name in _ANONYMOUS_LOCK_FACTORIES:
        return None
    return ...  # type: ignore[return-value]


def load_module_ast(module_name: str) -> Tuple[str, ast.Module]:
    """(filename, parsed AST) of an importable module's source."""
    module = importlib.import_module(module_name)
    filename = module.__file__
    with open(filename, "r") as handle:
        source = handle.read()
    return filename, ast.parse(source)


def _loc(filename: str, node: ast.AST) -> SourceLocation:
    return SourceLocation(filename, getattr(node, "lineno", 0),
                          getattr(node, "col_offset", 0))


def _assign_targets(stmt: ast.stmt) -> Tuple[List[ast.expr], Optional[ast.expr]]:
    if isinstance(stmt, ast.Assign):
        return stmt.targets, stmt.value
    if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        return [stmt.target], stmt.value
    return [], None


def scan_module(
    module_name: str, registry: GuardRegistry
) -> Tuple[List[SharedField], List[LockDef], List[Diagnostic]]:
    """Scan one importable module for shared state and lock definitions."""
    filename, tree = load_module_ast(module_name)
    return scan_tree(module_name, filename, tree, registry)


def scan_tree(
    module_name: str,
    filename: str,
    tree: ast.Module,
    registry: GuardRegistry,
) -> Tuple[List[SharedField], List[LockDef], List[Diagnostic]]:
    """Scan a parsed module AST for shared-state candidates and locks."""
    fields: List[SharedField] = []
    locks: List[LockDef] = []
    diagnostics: List[Diagnostic] = []

    def classify(qualname: str, kind: str, node: ast.AST) -> None:
        status = registry.accounted(qualname)
        location = _loc(filename, node)
        if status == "guarded":
            fields.append(SharedField(qualname, kind, "guarded",
                                      registry.lock_for_field(qualname), None,
                                      location))
        elif status == "exempt":
            fields.append(SharedField(qualname, kind, "exempt", None,
                                      registry.reason_for(qualname), location))
        else:
            fields.append(SharedField(qualname, kind, "unregistered", None,
                                      None, location))

    def handle_assignment(
        targets: List[ast.expr],
        value: Optional[ast.expr],
        scope: str,  # "" for module level, else class name
        kind: str,
        stmt: ast.stmt,
        self_attr: bool = False,
    ) -> None:
        if value is None:
            return
        lock_name = _lock_def(value)
        for target in targets:
            if self_attr:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                attr = target.attr
            elif isinstance(target, ast.Name):
                attr = target.id
            else:
                continue
            qualname = (
                f"{module_name}.{scope}.{attr}" if scope else f"{module_name}.{attr}"
            )
            if lock_name is not ...:  # a lock definition, named or anonymous
                key = (
                    ("attr", module_name, scope, attr)
                    if self_attr
                    else ("global", module_name, attr)
                )
                locks.append(LockDef(key, lock_name, _loc(filename, stmt)))
                if lock_name is None:
                    diagnostics.append(
                        Diagnostic(
                            "error",
                            f"anonymous lock {qualname}: locks must be created "
                            "with named_rlock(<string literal>) so the static "
                            "analysis can identify them",
                            _loc(filename, stmt),
                        )
                    )
                continue
            if _is_mutable_value(value):
                classify(qualname, kind, stmt)

    for stmt in tree.body:
        targets, value = _assign_targets(stmt)
        if targets:
            handle_assignment(targets, value, "", "module-global", stmt)
        if isinstance(stmt, ast.ClassDef):
            cls = stmt.name
            for item in stmt.body:
                ctargets, cvalue = _assign_targets(item)
                if ctargets:
                    handle_assignment(ctargets, cvalue, cls, "class-attr", item)
                if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                    for sub in ast.walk(item):
                        stargets, svalue = _assign_targets(sub)  # type: ignore[arg-type]
                        if stargets:
                            handle_assignment(
                                stargets, svalue, cls, "instance-attr", sub,
                                self_attr=True,
                            )
    return fields, locks, diagnostics


def build_inventory(target: AnalysisTarget) -> InventoryReport:
    """Scan every module of ``target`` and classify against its registry."""
    report = InventoryReport(target=target.name)
    for module_name in target.modules:
        fields, locks, diagnostics = scan_module(module_name, target.registry)
        report.fields.extend(fields)
        report.locks.extend(locks)
        report.diagnostics.extend(diagnostics)
    return report


# ---------------------------------------------------------------------------
# The real runtime target: modules reachable from MultiReplicaExecutor /
# AsyncCompiler worker threads, and the lock discipline they must follow.
# ---------------------------------------------------------------------------

#: Modules whose code runs on (or publishes state to) worker threads.
RUNTIME_MODULES: Tuple[str, ...] = (
    "repro.runtime.parallel.executor",
    "repro.runtime.parallel.trainer",
    "repro.runtime.parallel.process",
    "repro.runtime.parallel.shm",
    "repro.runtime.memory",
    "repro.runtime.device",
    "repro.runtime.cluster",
    "repro.hlo.compiler",
    "repro.hlo.codegen",
    "repro.core.synthesis",
    "repro.valsem.cow",
)

RUNTIME_REGISTRY = GuardRegistry(
    guarded_fields={
        # The XLA-program cache and its single-flight companion.
        "repro.hlo.compiler._CACHE": "hlo.compiler.cache",
        "repro.hlo.compiler._INFLIGHT": "hlo.compiler.cache",
        # AsyncCompiler's key-addressed executable cache.
        "repro.hlo.compiler.AsyncCompiler._ready": "hlo.async_compiler",
        "repro.hlo.compiler.AsyncCompiler._inflight": "hlo.async_compiler",
        "repro.hlo.compiler.AsyncCompiler.stats": "hlo.async_compiler",
        # Plan caches: single-flight synthesis inserts in-progress plans.
        "repro.core.synthesis._VJP_PLANS": "core.plan_cache",
        "repro.core.synthesis._JVP_PLANS": "core.plan_cache",
        "repro.core.synthesis._DEPENDENTS": "core.plan_cache",
        # The scoped-tracker stack: replica threads iterate while track()
        # scopes push/pop.
        "repro.runtime.memory._ACTIVE": "runtime.memory",
        # Buffer-id dedup registry: track_buffer inserts while finalizers
        # (any thread) discard.
        "repro.runtime.memory._TRACKED_IDS": "runtime.memory",
        # Process-wide compile counters: every increment is read-modify-write
        # from whichever replica thread wins the single-flight compile.
        "repro.hlo.compiler.STATS": "hlo.compiler.cache",
        # The codegen pipeline's emitted-source cache and counters: compile
        # workers, replicas, and analysis sweeps all reach
        # generate_certified concurrently.
        "repro.hlo.codegen._SOURCE_CACHE": "hlo.codegen.cache",
        "repro.hlo.codegen.STATS": "hlo.codegen.cache",
        # Shared-memory segment bookkeeping: exchanges register created
        # names from the driver while the atexit sweep / fork hooks clear,
        # and the token counter is read-modify-write.
        "repro.runtime.parallel.shm._SEGMENT_REGISTRY": "runtime.parallel.shm",
        "repro.runtime.parallel.shm._TOKENS": "runtime.parallel.shm",
        # Worker-pool lifecycle state: pipes and process handles are
        # mutated by spawn/mark-dead/shutdown and read by every exchange.
        "repro.runtime.parallel.process.ReplicaWorkerPool._conns": (
            "runtime.parallel.pool"
        ),
        "repro.runtime.parallel.process.ReplicaWorkerPool._procs": (
            "runtime.parallel.pool"
        ),
    },
    guarded_classes={
        # Counter objects whose every field is read-modify-write shared.
        "repro.hlo.compiler.CompilerStats": "hlo.compiler.cache",
        "repro.hlo.compiler.AsyncCompileStats": "hlo.async_compiler",
        "repro.runtime.memory.MemoryTracker": "runtime.memory",
        "repro.runtime.memory.TraceAttribution": "runtime.memory",
        "repro.hlo.codegen.CodegenStats": "hlo.codegen.cache",
    },
    exempt_fields={
        "repro.hlo.codegen._REDUCE_KERNELS": (
            "import-time-constant kernel table, read-only after import"
        ),
        "repro.hlo.compiler._UNARY_KERNELS": (
            "import-time-constant kernel table, read-only after import"
        ),
        "repro.hlo.compiler._BINARY_KERNELS": (
            "import-time-constant kernel table, read-only after import"
        ),
        "repro.hlo.compiler._COMPARE": (
            "import-time-constant kernel table, read-only after import"
        ),
        "repro.hlo.compiler.AsyncCompiler._executor": (
            "ThreadPoolExecutor is internally synchronized"
        ),
        "repro.core.synthesis._INDIRECT_RULE": (
            "import-time singleton sentinel, compared by identity and never "
            "mutated"
        ),
        "repro.hlo.compiler.ASYNC_COMPILER": (
            "internally synchronized: every AsyncCompiler method takes "
            "hlo.async_compiler before touching its state"
        ),
        "repro.runtime.memory.TRACKER": (
            "internally synchronized: every MemoryTracker method takes "
            "runtime.memory before touching its counters"
        ),
        "repro.runtime.memory._ATTRIBUTION": (
            "internally synchronized: every TraceAttribution method takes "
            "runtime.memory before touching its state"
        ),
        "repro.valsem.cow.STATS": (
            "instrumentation counters; concurrent measurements use the "
            "copy_counting() ContextVar scope, the process-wide counter is "
            "advisory (single-threaded benchmarks/CLI only)"
        ),
        "repro.runtime.parallel.process.ReplicaWorkerPool._ctx": (
            "fork start-method context handle; immutable after __init__"
        ),
        "repro.runtime.parallel.shm._LIVE_EXCHANGES": (
            "WeakSet touched only by the driver thread (exchange "
            "construction and the atexit sweep); worker processes get a "
            "cleared copy at fork"
        ),
    },
    exempt_classes={
        "repro.hlo.compiler.Executable": (
            "immutable after construction; cached and shared read-only "
            "across replicas"
        ),
        "repro.hlo.codegen.CodegenExecutable": (
            "immutable after construction; the compiled step function is "
            "pure and the launch replay is a static tuple — cached and "
            "shared read-only across replicas exactly like Executable"
        ),
        "repro.hlo.codegen.GeneratedStep": (
            "frozen dataclass value object: emitted source and metadata, "
            "never mutated after emission"
        ),
        # One executor/trainer drives the step from the main thread; the
        # per-replica lists are replica-indexed (worker i touches element i
        # only) and merged results are read only after run() has drained
        # every future — the barrier handoff the differential tests pin.
        "repro.runtime.parallel.executor.MultiReplicaExecutor": (
            "immutable after construction; run() drains all futures before "
            "returning (barrier handoff)"
        ),
        "repro.runtime.parallel.trainer.ParallelDataParallelTrainer": (
            "replica-indexed: worker i touches devices/models/optimizers[i] "
            "only; merges run on the driver after the executor barrier"
        ),
        "repro.runtime.parallel.trainer.ParallelStepStats": (
            "per-step value object built and read on the driver thread"
        ),
        "repro.runtime.parallel.trainer._ProcessReplicaState": (
            "confined to one forked worker process: built by the worker's "
            "own factory, touched only by its single-threaded command loop"
        ),
        "repro.runtime.parallel.process.ProcessReplicaExecutor": (
            "immutable after construction; each run() forks fresh children "
            "and drains every result pipe before returning"
        ),
        "repro.runtime.parallel.shm.GradientExchange": (
            "driver-owned: segments/views are created and reduced on the "
            "driver thread; workers reach the memory only through their own "
            "WorkerAttachment views, synchronized by the step's ordered "
            "send/drain phases"
        ),
        "repro.runtime.parallel.shm.WorkerAttachment": (
            "confined to one worker process; writes its own replica slots "
            "and reads the averaged slots only between the step's ordered "
            "command phases"
        ),
        # Simulated devices are thread-confined: one replica thread per
        # Device per phase, handed off at the executor barrier.
        "repro.runtime.device.SimDevice": (
            "thread-confined per replica; snapshots taken only after the "
            "executor barrier (dataclasses.replace on the driver)"
        ),
        "repro.runtime.device.DeviceStats": (
            "owned by a thread-confined SimDevice; aggregation copies after "
            "the barrier"
        ),
        "repro.runtime.device.Dispatcher": (
            "thread-confined: one dispatcher per device per replica thread"
        ),
        "repro.runtime.cluster.PodSimulator": (
            "immutable after construction (profile/core-count/schedule)"
        ),
        # Plan objects: built exactly once under core.plan_cache (insert-
        # before-build single-flight), then read-only for executors.
        "repro.core.synthesis.VJPPlan": (
            "built under core.plan_cache; immutable after build() (plans "
            "are cached and shared read-only)"
        ),
        "repro.core.synthesis.JVPPlan": (
            "built under core.plan_cache; immutable after build()"
        ),
        "repro.core.synthesis._Adjoints": (
            "per-gradient-call accumulator, never crosses threads"
        ),
        "repro.core.synthesis._BlockRecord": (
            "per-forward-execution record, never crosses threads"
        ),
        "repro.core.synthesis.VJPPlan.build.<locals>": (
            "build-local scratch"
        ),
        # COW storage: CowBox values obey the law of exclusivity (the
        # borrow runtime traps cross-thread unique borrows); storage is
        # confined to one replica's value graph.
        "repro.valsem.cow.CowBox": (
            "value-semantic handle confined to one replica thread; "
            "exclusivity enforced by the borrow runtime"
        ),
        "repro.valsem.cow._Storage": (
            "reached only through a thread-confined CowBox"
        ),
        "repro.valsem.cow.CowStats": (
            "scoped instances are ContextVar-isolated; the global is "
            "advisory instrumentation"
        ),
    },
    exempt_functions=frozenset(
        {
            # Constructors publish the object only after returning.
            "repro.hlo.compiler.AsyncCompiler.__init__",
            "repro.runtime.memory.MemoryTracker.__init__",
            "repro.runtime.memory.TraceAttribution.__init__",
            "repro.hlo.compiler.CompilerStats.__init__",
            "repro.hlo.compiler.AsyncCompileStats.__init__",
            "repro.runtime.parallel.process.ReplicaWorkerPool.__init__",
        }
    ),
    requires={
        # plan.build() is only legal under the plan-cache lock: vjp_plan/
        # jvp_plan insert the in-progress plan first (recursion sentinel),
        # so an unlocked build() could leak a half-built plan.
        "repro.core.synthesis.VJPPlan.build": frozenset({"core.plan_cache"}),
        "repro.core.synthesis.JVPPlan.build": frozenset({"core.plan_cache"}),
        # _note_dependency mutates the reverse call graph.
        "repro.core.synthesis._note_dependency": frozenset({"core.plan_cache"}),
    },
)

RUNTIME_TARGET = AnalysisTarget(
    name="runtime", modules=RUNTIME_MODULES, registry=RUNTIME_REGISTRY
)
