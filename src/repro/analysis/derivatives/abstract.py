"""The affine abstract domain for derivative verification.

A pullback (or differential) is supposed to be a *linear map*.  We prove
this by abstract interpretation: run the closure on an
:class:`AffineValue` — a symbolic scalar of the form ``const + Σ cᵢ·symᵢ``
— and inspect the result.  Because every primitive and every pullback in
this reproduction is generic over operand type (dispatching through the
operands' own operators, see :mod:`repro.sil.primitives`), the abstract
value flows through the very same code paths the runtime executes: the
analysis interprets the real derivative, not a model of it.

The domain tracks three facts per value:

* ``const`` — the concrete part, independent of every symbol;
* ``coeffs`` — the linear coefficient of each tracked symbol;
* ``nonlinear`` — a poison flag set the moment two symbolic values are
  multiplied, a symbolic value is used as a divisor/exponent, or a
  non-affine operation (``abs``) is applied; ``reason`` records the first
  cause for diagnostics.

Linearity of a pullback output then reads off directly: ``nonlinear`` ⇒
not additive; ``const ≠ 0`` ⇒ fails zero-preservation (affine offset);
otherwise the output *is* the linear map ``ct ↦ Σ cᵢ·symᵢ`` and the
coefficients are the rows of Jᵀ — which is what the transpose-consistency
check compares against the JVP's columns.

Control flow on an abstract value (``bool(v)``) and coercion to a
concrete float both escape the domain; they raise
:class:`AbstractBranchError` / :class:`AbstractCoercionError` so the
harness can report "pullback branches on the cotangent" or fall back to
numeric probing ("opaque").
"""

from __future__ import annotations

from typing import Optional, Union

#: Tolerance for treating a floating coefficient as zero.
_EPS = 1e-12


class AbstractEscapeError(Exception):
    """Base: the interpreted code left the affine domain."""


class AbstractBranchError(AbstractEscapeError):
    """Control flow (or an ordering comparison) depends on an abstract
    value — the map is at best piecewise and cannot be proven linear."""


class AbstractCoercionError(AbstractEscapeError):
    """The interpreted code forced an abstract value to a concrete float
    (``math.*`` fallback paths do this); the analysis must go opaque."""


Numeric = Union[int, float]


class AffineValue:
    """A scalar of the form ``const + Σ coeffs[s]·s`` with a poison flag."""

    __slots__ = ("const", "coeffs", "nonlinear", "reason")

    def __init__(
        self,
        const: float = 0.0,
        coeffs: Optional[dict[str, float]] = None,
        nonlinear: bool = False,
        reason: str = "",
    ) -> None:
        self.const = float(const)
        self.coeffs: dict[str, float] = dict(coeffs or {})
        self.nonlinear = nonlinear
        self.reason = reason

    # -- constructors --------------------------------------------------------

    @classmethod
    def symbol(cls, name: str) -> "AffineValue":
        return cls(0.0, {name: 1.0})

    @classmethod
    def poison(cls, reason: str) -> "AffineValue":
        return cls(0.0, None, nonlinear=True, reason=reason)

    # -- queries -------------------------------------------------------------

    @property
    def is_symbolic(self) -> bool:
        return self.nonlinear or any(abs(c) > _EPS for c in self.coeffs.values())

    @property
    def is_constant(self) -> bool:
        return not self.is_symbolic

    def coefficient(self, name: str) -> float:
        return self.coeffs.get(name, 0.0)

    def __repr__(self) -> str:
        if self.nonlinear:
            return f"<nonlinear: {self.reason}>"
        terms = [f"{c:g}*{s}" for s, c in sorted(self.coeffs.items()) if abs(c) > _EPS]
        if self.const or not terms:
            terms.insert(0, f"{self.const:g}")
        return "<" + " + ".join(terms) + ">"

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _coerce(other) -> Optional["AffineValue"]:
        if isinstance(other, AffineValue):
            return other
        if isinstance(other, bool):
            return AffineValue(1.0 if other else 0.0)
        if isinstance(other, (int, float)):
            return AffineValue(float(other))
        # The symbolic ZERO tangent is an additive identity.
        from repro.core.differentiable import is_zero

        if is_zero(other):
            return AffineValue(0.0)
        return None

    def _combine(self, other: "AffineValue", sign: float) -> "AffineValue":
        coeffs = dict(self.coeffs)
        for s, c in other.coeffs.items():
            coeffs[s] = coeffs.get(s, 0.0) + sign * c
        out = AffineValue(self.const + sign * other.const, coeffs)
        if self.nonlinear or other.nonlinear:
            out.nonlinear = True
            out.reason = self.reason or other.reason
        return out

    # -- affine arithmetic ---------------------------------------------------

    def __add__(self, other):
        o = self._coerce(other)
        return NotImplemented if o is None else self._combine(o, 1.0)

    __radd__ = __add__

    def __sub__(self, other):
        o = self._coerce(other)
        return NotImplemented if o is None else self._combine(o, -1.0)

    def __rsub__(self, other):
        o = self._coerce(other)
        return NotImplemented if o is None else o._combine(self, -1.0)

    def __neg__(self):
        out = AffineValue(
            -self.const, {s: -c for s, c in self.coeffs.items()}
        )
        out.nonlinear, out.reason = self.nonlinear, self.reason
        return out

    def __pos__(self):
        return self

    def _scale(self, k: float) -> "AffineValue":
        out = AffineValue(self.const * k, {s: c * k for s, c in self.coeffs.items()})
        out.nonlinear, out.reason = self.nonlinear, self.reason
        return out

    def __mul__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if self.nonlinear or o.nonlinear:
            return AffineValue.poison(self.reason or o.reason)
        if self.is_symbolic and o.is_symbolic:
            return AffineValue.poison(
                "product of two symbol-dependent values (e.g. ct * ct)"
            )
        return self._scale(o.const) if o.is_constant else o._scale(self.const)

    __rmul__ = __mul__

    def __truediv__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if o.is_symbolic:
            return AffineValue.poison("division by a symbol-dependent value")
        return self._scale(1.0 / o.const)

    def __rtruediv__(self, other):
        if self.is_symbolic:
            return AffineValue.poison("division by a symbol-dependent value")
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o._scale(1.0 / self.const)

    def __pow__(self, other):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if o.is_symbolic:
            return AffineValue.poison("symbol-dependent exponent")
        if self.is_symbolic:
            if abs(o.const - 1.0) < _EPS:
                return self
            return AffineValue.poison(
                f"symbol-dependent value raised to power {o.const:g}"
            )
        return AffineValue(self.const**o.const)

    def __rpow__(self, other):
        if self.is_symbolic:
            return AffineValue.poison("symbol-dependent exponent")
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return AffineValue(o.const**self.const)

    def __matmul__(self, other):
        # Contractions behave like products for linearity purposes.
        return self.__mul__(other)

    __rmatmul__ = __matmul__

    def __abs__(self):
        if self.is_symbolic:
            return AffineValue.poison("abs() of a symbol-dependent value")
        return AffineValue(abs(self.const))

    def __mod__(self, other):
        return AffineValue.poison("mod of a symbol-dependent value")

    __rmod__ = __mod__

    def __floordiv__(self, other):
        return AffineValue.poison("floor division of a symbol-dependent value")

    __rfloordiv__ = __floordiv__

    # -- escapes -------------------------------------------------------------

    def __bool__(self):
        raise AbstractBranchError(
            "control flow depends on an abstract value"
        )

    def _compare(self, other, op: str):
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if self.is_symbolic or o.is_symbolic:
            raise AbstractBranchError(
                f"comparison ({op}) involves an abstract value"
            )
        import operator

        return getattr(operator, op)(self.const, o.const)

    def __lt__(self, other):
        return self._compare(other, "lt")

    def __le__(self, other):
        return self._compare(other, "le")

    def __gt__(self, other):
        return self._compare(other, "gt")

    def __ge__(self, other):
        return self._compare(other, "ge")

    def __eq__(self, other):  # noqa: D105  (value equality over the domain)
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if self.is_symbolic or o.is_symbolic:
            raise AbstractBranchError("equality test involves an abstract value")
        return self.const == o.const

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __hash__(self):
        raise AbstractCoercionError("abstract values are not hashable")

    def __float__(self):
        raise AbstractCoercionError(
            "abstract value coerced to a concrete float"
        )

    def __int__(self):
        raise AbstractCoercionError("abstract value coerced to a concrete int")


def classify(component) -> tuple[str, Optional[float], str]:
    """Classify one pullback output component.

    Returns ``(kind, coefficient, detail)`` with kind one of

    * ``"zero"`` — ``None`` or the symbolic ZERO: no cotangent flows;
    * ``"linear"`` — homogeneous linear in the tracked symbols
      (coefficient reported for single-symbol runs);
    * ``"affine"`` — linear plus a nonzero constant: fails
      zero-preservation;
    * ``"nonlinear"`` — the poison flag was set (detail says where);
    * ``"ill-typed"`` — a bool/str/other non-tangent value;
    * ``"opaque"`` — a container or unknown object the scalar domain
      cannot decide.
    """
    from repro.core.differentiable import is_zero

    if component is None or is_zero(component):
        return "zero", None, ""
    if isinstance(component, bool):
        return "ill-typed", None, "bool is not a tangent value"
    if isinstance(component, (int, float)):
        if abs(float(component)) <= _EPS:
            return "zero", 0.0, ""
        return (
            "affine",
            None,
            f"constant offset {float(component):g} (fails zero-preservation)",
        )
    if isinstance(component, str):
        return "ill-typed", None, "str is not a tangent value"
    if isinstance(component, AffineValue):
        if component.nonlinear:
            return "nonlinear", None, component.reason
        if abs(component.const) > _EPS:
            return (
                "affine",
                None,
                f"constant offset {component.const:g} (fails zero-preservation)",
            )
        if not component.coeffs:
            return "zero", 0.0, ""
        return "linear", None, ""
    return "opaque", None, f"{type(component).__name__} output"


#: Severity order used when folding component kinds into a rule verdict.
_KIND_ORDER = ("zero", "linear", "opaque", "affine", "nonlinear", "ill-typed")


def worst_kind(kinds) -> str:
    """The most severe classification among ``kinds`` (``"zero"`` if empty)."""
    worst = "zero"
    for kind in kinds:
        if _KIND_ORDER.index(kind) > _KIND_ORDER.index(worst):
            worst = kind
    return worst
