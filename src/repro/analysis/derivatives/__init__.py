"""Static derivative-correctness verification.

Derivative synthesis (:mod:`repro.core.synthesis`) trusts its ingredient
rules: a registered VJP is *assumed* to be a linear pullback that is the
transpose of the registered JVP and that returns one well-typed cotangent
per differentiable argument.  This package discharges those assumptions
statically, with every verdict paired against an independent numeric
probe:

* **linearity** (:mod:`.linearity`) — abstract interpretation of the
  pullback over an affine domain (:mod:`.abstract`) proves it is a linear
  map of the cotangent; a two-point numeric probe cross-checks;
* **transpose consistency** (:mod:`.transpose`) — the JVP's forward
  coefficients (columns of J) must equal the VJP's reverse coefficients
  (rows of Jᵀ), i.e. ⟨Jv, w⟩ = ⟨v, Jᵀw⟩; a seeded inner-product probe
  cross-checks;
* **record typing** (:mod:`.records`) — every pullback-captured value in
  a ``_BlockRecord`` must inhabit the tangent space of its primal type,
  and every probed rule must return one cotangent per argument;
* **capture liveness** (:mod:`.liveness`) — a backward cotangent-flow
  dataflow finds values the activity analysis records but whose cotangent
  provably dies in a zero-derivative (discrete) chain; those captures can
  be pruned via ``vjp_plan(..., prune_captures=True)``.

:func:`~repro.analysis.derivatives.report.verify_derivatives` runs all
four over one function and folds the verdicts, diagnostics, and numeric
cross-checks into a :class:`~repro.analysis.derivatives.report.DerivativeReport`;
the seeded corpus in :mod:`.models` pins down the expected verdict for
every known hazard class.
"""

from repro.analysis.derivatives.linearity import (  # noqa: F401
    RuleLinearity,
    check_primitive_linearity,
    check_pullback_linearity,
)
from repro.analysis.derivatives.liveness import (  # noqa: F401
    CaptureLiveness,
    DeadCapture,
    analyze_capture_liveness,
    cotangent_live_values,
    prunable_instruction_ids,
)
from repro.analysis.derivatives.records import (  # noqa: F401
    RecordTyping,
    check_record_typing,
    probe_rule_record,
    tangent_space_of,
    verify_plan_records,
)
from repro.analysis.derivatives.report import (  # noqa: F401
    DerivativeReport,
    analyze_derivative_model,
    verify_derivatives,
)
from repro.analysis.derivatives.transpose import (  # noqa: F401
    TransposeCheck,
    check_primitive_transpose,
    check_transpose,
)

__all__ = [
    "CaptureLiveness",
    "DeadCapture",
    "DerivativeReport",
    "RecordTyping",
    "RuleLinearity",
    "TransposeCheck",
    "analyze_capture_liveness",
    "analyze_derivative_model",
    "check_primitive_linearity",
    "check_primitive_transpose",
    "check_pullback_linearity",
    "check_record_typing",
    "check_transpose",
    "cotangent_live_values",
    "probe_rule_record",
    "prunable_instruction_ids",
    "tangent_space_of",
    "verify_derivatives",
    "verify_plan_records",
]
