"""Linearity verification of pullbacks (analysis 1 of the verifier).

A VJP's pullback must be a *linear map* on cotangents: zero-preserving
(``pb(0) = 0``) and additive (``pb(a + b) = pb(a) + pb(b)``).  Synthesized
plans are linear by construction — the reverse sweep composes per-site
pullbacks, and composition preserves linearity — so the whole proof
reduces to the leaves: every primitive and custom VJP rule the plan uses.

For each rule this module

1. runs the forward ``vjp`` at seeded concrete primals to obtain the
   pullback closure;
2. **abstractly interprets** the pullback on the symbolic cotangent
   ``ct`` (:class:`~repro.analysis.derivatives.abstract.AffineValue`),
   classifying every output component as zero / linear / affine /
   nonlinear / ill-typed — because pullbacks dispatch through operand
   operators, the abstract run walks the real derivative code;
3. cross-checks the verdict with **seeded numeric probes** of the three
   linear-map laws (zero-preservation, additivity, homogeneity), exactly
   the static-vs-dynamic discipline of the tracing/ownership analyses:
   ``cross_check_ok`` is True iff the static verdict and the numeric
   evidence agree;
4. (custom rules) watches for primitive invocations *during* the
   pullback call via
   :func:`repro.sil.primitives.observe_primitive_calls` — a pullback
   that re-runs primal work instead of capturing the forward value is
   flagged with a fix-it.

Rules whose forward or pullback cannot run on scalar samples (tensor-only
primitives) come back ``"opaque"``: no claim is made and the cross-check
is vacuous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.analysis.derivatives.abstract import (
    AbstractBranchError,
    AbstractEscapeError,
    AffineValue,
    classify,
    worst_kind,
)
from repro.errors import Diagnostic, SourceLocation
from repro.sil.primitives import observe_primitive_calls

#: Deterministic primal samples: positive, away from 0 and 1, so domain
#: restrictions (log, pow) and degenerate coefficients are avoided.
_PRIMAL_SAMPLES = (0.7, 1.3, 0.4, 2.1, 1.7, 0.9, 0.6, 1.1)

#: Seeded cotangent probes for the numeric cross-check.
_PROBE_A, _PROBE_B, _PROBE_SCALE = 0.37, -1.21, 2.5

_TOL = 1e-9


def default_samples(n_args: int) -> tuple[float, ...]:
    """``n_args`` deterministic primal sample values."""
    return tuple(
        _PRIMAL_SAMPLES[i % len(_PRIMAL_SAMPLES)] for i in range(n_args)
    )


@dataclass
class NumericProbe:
    """Outcome of the seeded linear-map probes."""

    ran: bool = False
    zero_preserved: bool = False
    additive: bool = False
    homogeneous: bool = False

    @property
    def linear(self) -> bool:
        return self.ran and self.zero_preserved and self.additive and self.homogeneous


@dataclass
class RuleLinearity:
    """Static verdict + numeric evidence for one derivative rule."""

    name: str
    kind: str  # "primitive" | "custom" | "function"
    n_args: int
    #: "linear" | "affine" | "nonlinear" | "ill-typed" | "opaque"
    verdict: str = "opaque"
    reason: str = ""
    #: Per-component classification kinds, in pullback output order.
    component_kinds: tuple[str, ...] = ()
    #: d(arg_i cotangent)/d(ct) at the samples (None where no flow).
    coefficients: tuple[Optional[float], ...] = ()
    #: Number of cotangent components the pullback returned (-1: unknown).
    returned_components: int = -1
    probe: NumericProbe = field(default_factory=NumericProbe)
    #: Names of primitives invoked while the pullback ran (primal rework).
    recomputed_primitives: tuple[str, ...] = ()
    loc: SourceLocation = field(default_factory=SourceLocation)

    @property
    def is_linear(self) -> bool:
        return self.verdict == "linear"

    @property
    def cross_check_ok(self) -> bool:
        """Static claim and numeric evidence agree.

        ``linear`` must probe linear; ``affine``/``nonlinear``/
        ``ill-typed`` must *fail* the probe (a probe that cannot even
        produce numbers counts as failing the linear-map laws);
        ``opaque`` makes no claim.
        """
        if self.verdict == "opaque":
            return True
        if self.verdict == "linear":
            return self.probe.linear
        return not self.probe.linear

    def diagnostics(self) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        if self.verdict in ("affine", "nonlinear"):
            out.append(
                Diagnostic(
                    "error",
                    f"pullback of {self.name!r} is not a linear map: "
                    f"{self.reason or self.verdict}",
                    self.loc,
                )
            )
        if self.recomputed_primitives:
            names = ", ".join(repr(n) for n in self.recomputed_primitives)
            out.append(
                Diagnostic(
                    "warning",
                    f"pullback of {self.name!r} re-runs primal work "
                    f"(invokes primitive(s) {names}); capture the forward "
                    "value in the closure instead",
                    self.loc,
                )
            )
        return out


def _flatten_components(out) -> Optional[list]:
    if out is None:
        return [None]
    if isinstance(out, (tuple, list)):
        return list(out)
    return [out]


def _numeric_parts(out, n: int) -> Optional[list[float]]:
    """Pullback output as ``n`` floats (None/ZERO → 0.0); None if any
    component is not numeric."""
    from repro.core.differentiable import is_zero

    parts = _flatten_components(out)
    values: list[float] = []
    for part in parts:
        if part is None or is_zero(part):
            values.append(0.0)
        elif isinstance(part, bool):
            return None
        elif isinstance(part, (int, float)):
            values.append(float(part))
        else:
            return None
    return values


def _probe_numeric(pullback: Callable, n_args: int) -> NumericProbe:
    probe = NumericProbe()
    try:
        at_zero = _numeric_parts(pullback(0.0), n_args)
        at_a = _numeric_parts(pullback(_PROBE_A), n_args)
        at_b = _numeric_parts(pullback(_PROBE_B), n_args)
        at_ab = _numeric_parts(pullback(_PROBE_A + _PROBE_B), n_args)
        at_sa = _numeric_parts(pullback(_PROBE_SCALE * _PROBE_A), n_args)
    except Exception:
        return probe
    if None in (at_zero, at_a, at_b, at_ab, at_sa):
        return probe
    if len({len(at_zero), len(at_a), len(at_b), len(at_ab), len(at_sa)}) != 1:
        return probe
    probe.ran = True
    probe.zero_preserved = all(abs(v) <= _TOL for v in at_zero)
    probe.additive = all(
        abs((x + y) - z) <= _TOL * max(1.0, abs(z))
        for x, y, z in zip(at_a, at_b, at_ab)
    )
    probe.homogeneous = all(
        abs(_PROBE_SCALE * x - z) <= _TOL * max(1.0, abs(z))
        for x, z in zip(at_a, at_sa)
    )
    return probe


def check_pullback_linearity(
    name: str,
    vjp_fn: Callable,
    n_args: int,
    kind: str = "primitive",
    samples: Optional[Sequence[float]] = None,
    loc: Optional[SourceLocation] = None,
    watch_recompute: bool = False,
) -> RuleLinearity:
    """Verify that ``vjp_fn``'s pullback is a linear map on cotangents."""
    result = RuleLinearity(
        name=name, kind=kind, n_args=n_args, loc=loc or SourceLocation()
    )
    primals = tuple(samples) if samples is not None else default_samples(n_args)

    try:
        _value, pullback = vjp_fn(*primals)
    except Exception as exc:
        result.verdict = "opaque"
        result.reason = f"forward not probeable on scalar samples ({exc!r})"
        return result

    # -- abstract pass: the pullback on the symbolic cotangent --------------
    ct = AffineValue.symbol("ct")
    try:
        if watch_recompute:
            with observe_primitive_calls() as calls:
                out = pullback(ct)
            result.recomputed_primitives = tuple(
                dict.fromkeys(p.name for p in calls)
            )
        else:
            out = pullback(ct)
    except AbstractBranchError:
        result.verdict = "nonlinear"
        result.reason = "control flow in the pullback depends on the cotangent"
        out = None
    except AbstractEscapeError as exc:
        result.verdict = "opaque"
        result.reason = str(exc)
        out = None
    except Exception as exc:
        result.verdict = "opaque"
        result.reason = f"pullback not abstractly interpretable ({exc!r})"
        out = None

    if out is not None:
        components = _flatten_components(out)
        result.returned_components = len(components)
        kinds, coeffs, details = [], [], []
        for component in components:
            comp_kind, _coeff, detail = classify(component)
            kinds.append(comp_kind)
            if comp_kind == "linear":
                coeffs.append(component.coefficient("ct"))
            elif comp_kind == "zero":
                coeffs.append(None if component is None else 0.0)
            else:
                coeffs.append(None)
            if detail:
                details.append(detail)
        result.component_kinds = tuple(kinds)
        result.coefficients = tuple(coeffs)
        worst = worst_kind(kinds)
        result.verdict = "linear" if worst in ("zero", "linear") else worst
        if details and not result.reason:
            result.reason = details[0]

    # -- numeric cross-check -------------------------------------------------
    if watch_recompute and not result.recomputed_primitives:
        with observe_primitive_calls() as calls:
            result.probe = _probe_numeric(pullback, n_args)
        result.recomputed_primitives = tuple(
            dict.fromkeys(p.name for p in calls)
        )
    else:
        result.probe = _probe_numeric(pullback, n_args)
    return result


def check_primitive_linearity(prim, loc=None) -> RuleLinearity:
    """Linearity of a registered primitive's VJP (scalar samples)."""
    lo, hi = prim.arity
    n_args = lo if lo > 0 else (2 if hi is None else max(hi, 1))
    return check_pullback_linearity(
        prim.name, prim.vjp, n_args, kind="primitive", loc=loc
    )
