"""Capture liveness (analysis 4): pullback captures that are never consumed.

Activity analysis over-approximates where cotangents flow.  *Usefulness*
is plain graph reachability: a value is useful if some chain of operands
connects it to the return.  But the reverse sweep moves cotangents
through **pullbacks**, and the pullbacks of discrete primitives
(``int``, ``float``-of-``int``, ``len``, comparisons, ``//``, ``%``) are
structurally zero — they return ``None`` for every operand.  A value
whose every path to the return passes through such a pullback is
*varied and useful yet can never receive a cotangent*: its record entry
(and the forward values the pullback closure captures) is dead weight.

This module runs a **backward dataflow pass over the reverse sweep**:
``ct-live`` values are those reachable from the return by walking
operands — except that at a primitive apply site the walk only continues
into operands whose pullback component is structurally non-zero (probed
once per primitive by running the real pullback at seeded samples; a
component is killed only when it is literally ``None``/``ZERO``, never
on a numeric-coincidence ``0.0``, and any rule that cannot be probed
conservatively keeps all operands live).  A record entry whose result is
not ct-live is a **dead capture**: it is reported with a fix-it and may
be dropped by ``VJPPlan`` when built with ``prune_captures=True``
(gradients are bit-identical — the reverse sweep would have skipped the
entry anyway when its adjoint slot came back ZERO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import Diagnostic, SourceLocation
from repro.sil import ir
from repro.sil.primitives import Primitive

#: (id(primitive), id(its vjp), n_args) -> per-operand cotangent flow mask,
#: or None when the rule could not be probed (conservatively: everything
#: flows).  The vjp id keeps the cache correct across ``@derivative``
#: re-registration on a primitive.
_FLOW_CACHE: dict[tuple[int, int, int], Optional[tuple[bool, ...]]] = {}


def _cotangent_flow(prim: Primitive, n_args: int) -> Optional[tuple[bool, ...]]:
    """Which operands of ``prim`` can receive a cotangent, by probing its
    pullback once at seeded scalar samples; None = unknown (all flow)."""
    key = (id(prim), id(prim.vjp), n_args)
    if key in _FLOW_CACHE:
        return _FLOW_CACHE[key]
    mask: Optional[tuple[bool, ...]] = None
    if prim.vjp is not None:
        from repro.analysis.derivatives.linearity import default_samples
        from repro.core.differentiable import is_zero

        try:
            _value, pullback = prim.vjp(*default_samples(n_args))
            out = pullback(1.0)
        except Exception:
            out = None
        if out is not None:
            parts = list(out) if isinstance(out, (tuple, list)) else [out]
            if len(parts) == n_args:
                mask = tuple(not (p is None or is_zero(p)) for p in parts)
    _FLOW_CACHE[key] = mask
    return mask


def _edges(term: ir.Terminator):
    if isinstance(term, ir.BrInst):
        return [(term.dest, list(term.operands))]
    if isinstance(term, ir.CondBrInst):
        return [
            (term.true_dest, list(term.true_args)),
            (term.false_dest, list(term.false_args)),
        ]
    return []


def _flow_operands(inst: ir.Instruction) -> list[ir.Value]:
    """Operands a live result propagates ct-liveness into."""
    from repro.core.activity import _differentiable_operand_ids

    if isinstance(inst, ir.ApplyInst) and not inst.is_indirect:
        target = inst.callee.target
        if isinstance(target, Primitive):
            mask = _cotangent_flow(target, len(inst.args))
            if mask is None:
                return [
                    arg
                    for i, arg in enumerate(inst.args)
                    if i not in target.nondiff_args
                ]
            return [arg for arg, flows in zip(inst.args, mask) if flows]
    return _differentiable_operand_ids(inst)


def cotangent_live_values(func: ir.Function) -> set[int]:
    """Value ids that can receive a non-zero cotangent in the reverse
    sweep (backward fixpoint seeded at the returns)."""
    blocks = func.reachable_blocks()
    live: set[int] = set()
    for block in blocks:
        term = block.terminator
        if isinstance(term, ir.ReturnInst):
            live.add(term.value.id)

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            for dest, args in _edges(block.terminator):
                for param, arg in zip(dest.args, args):
                    if param.id in live and arg.id not in live:
                        live.add(arg.id)
                        changed = True
            for inst in reversed(block.body):
                if not inst.results:
                    continue
                if not any(r.id in live for r in inst.results):
                    continue
                for op in _flow_operands(inst):
                    if op.id not in live:
                        live.add(op.id)
                        changed = True
    return live


_RECORDED = (
    ir.ApplyInst,
    ir.TupleInst,
    ir.TupleExtractInst,
    ir.StructExtractInst,
)


@dataclass
class DeadCapture:
    """One record entry whose cotangent is provably never consumed."""

    description: str
    kind: str  # opname of the recorded instruction
    value_id: int
    hint: str
    loc: SourceLocation = field(default_factory=SourceLocation)

    def fix_it(self) -> str:
        what = f"%{self.value_id}" + (f" ({self.hint!r})" if self.hint else "")
        return (
            f"value {what} is varied but every cotangent path to it crosses"
            " a zero-derivative (discrete) pullback; build the plan with"
            " prune_captures=True to drop the capture, or mark the consumer"
            " chain @noDerivative"
        )


@dataclass
class CaptureLiveness:
    """Liveness verdict over one function's would-be record entries."""

    func_name: str
    wrt: tuple[int, ...]
    live: set[int] = field(default_factory=set)
    recorded_entries: int = 0
    dead: list[DeadCapture] = field(default_factory=list)

    @property
    def live_entries(self) -> int:
        return self.recorded_entries - len(self.dead)

    @property
    def ok(self) -> bool:
        return not self.dead

    def diagnostics(self) -> list[Diagnostic]:
        return [
            Diagnostic(
                "warning",
                f"dead pullback capture in @{self.func_name}:"
                f" {d.description} — {d.fix_it()}",
                d.loc,
            )
            for d in self.dead
        ]


def analyze_capture_liveness(
    func: ir.Function, wrt: tuple[int, ...], activity=None
) -> CaptureLiveness:
    """Find record entries synthesis would emit whose cotangent can never
    be non-zero (the ``is_varied``/ct-live gap)."""
    from repro.core.activity import analyze_activity

    if activity is None:
        activity = analyze_activity(func, wrt)
    live = cotangent_live_values(func)
    report = CaptureLiveness(
        func_name=func.name, wrt=tuple(wrt), live=live
    )
    for inst in func.instructions():
        if not isinstance(inst, _RECORDED) or not inst.results:
            continue
        if not activity.is_active(inst):
            continue
        report.recorded_entries += 1
        if inst.result.id not in live:
            hint = inst.result.hint
            label = f" ({hint!r})" if hint else ""
            report.dead.append(
                DeadCapture(
                    description=(
                        f"%{inst.result.id} = {inst.opname()}{label}"
                    ),
                    kind=inst.opname(),
                    value_id=inst.result.id,
                    hint=hint,
                    loc=inst.loc,
                )
            )
    return report


def prunable_instruction_ids(
    func: ir.Function, wrt: tuple[int, ...], activity=None
) -> set[int]:
    """``id(inst)`` of every record entry safe to drop under
    ``prune_captures`` (used by ``VJPPlan.build``)."""
    from repro.core.activity import analyze_activity

    if activity is None:
        activity = analyze_activity(func, wrt)
    live = cotangent_live_values(func)
    return {
        id(inst)
        for inst in func.instructions()
        if isinstance(inst, _RECORDED)
        and inst.results
        and activity.is_active(inst)
        and inst.result.id not in live
    }
