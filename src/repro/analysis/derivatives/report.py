"""The combined derivative-correctness report and its numeric cross-check.

:func:`verify_derivatives` synthesizes the plan for a function (AOT, the
same path ``gradient`` takes), then runs all four static analyses over it:

1. **linearity** of every primitive/custom pullback the plan holds
   (:mod:`~repro.analysis.derivatives.linearity`);
2. **transpose consistency** of every JVP/VJP pair
   (:mod:`~repro.analysis.derivatives.transpose`);
3. **record typing** of the plan's per-block record layout
   (:mod:`~repro.analysis.derivatives.records`);
4. **capture liveness** over the reverse sweep
   (:mod:`~repro.analysis.derivatives.liveness`).

Every static verdict carries its own falsifiability check, the discipline
established by the tracing/ownership analyses: per-rule numeric probes,
the inner-product identity for transposes, and — for the whole plan — a
central-finite-difference gradient probe.  ``cross_check_ok`` is True iff
the static verdicts and all the numeric evidence agree; a *clean* verdict
must match finite differences, a *bad-derivative* verdict must not.

Capture pruning is measured here too: the pruned plan variant is built,
its gradients compared bit-for-bit against the unpruned plan, and the
record-entry savings recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.errors import Diagnostic, DifferentiabilityError
from repro.sil import ir

from repro.analysis.derivatives.linearity import (
    RuleLinearity,
    check_pullback_linearity,
    check_primitive_linearity,
)
from repro.analysis.derivatives.liveness import (
    CaptureLiveness,
    analyze_capture_liveness,
)
from repro.analysis.derivatives.models import DerivativeModel
from repro.analysis.derivatives.records import (
    RecordTyping,
    verify_plan_records,
)
from repro.analysis.derivatives.transpose import (
    TransposeCheck,
    check_transpose,
)

_FD_STEP = 1e-6
_FD_RTOL = 1e-4

#: Verdicts that mean "the computed gradient itself is wrong" (the
#: finite-difference probe must disagree with the plan).
_BAD_DERIVATIVE = frozenset(
    {"nonlinear-pullback", "wrong-transpose", "ill-typed-record"}
)


@dataclass
class PruningStats:
    """Measured effect of ``prune_captures`` on one function."""

    entries_unpruned: int
    entries_pruned: int
    gradients_identical: bool

    @property
    def entries_saved(self) -> int:
        return self.entries_unpruned - self.entries_pruned


@dataclass
class DerivativeReport:
    """Everything proven (and probed) about one function's derivatives."""

    func_name: str
    wrt: tuple[int, ...]
    rules: list[RuleLinearity] = field(default_factory=list)
    transposes: list[TransposeCheck] = field(default_factory=list)
    record_typing: Optional[RecordTyping] = None
    liveness: Optional[CaptureLiveness] = None
    #: Diagnostics raised by plan synthesis itself (non-differentiable).
    plan_errors: list[Diagnostic] = field(default_factory=list)
    #: Plan gradient vs central finite differences; None = not runnable.
    fd_match: Optional[bool] = None
    pruning: Optional[PruningStats] = None
    #: The verified function + its activity fixpoints (for annotation).
    func: Optional[ir.Function] = None
    activity: Optional[object] = None

    # -- verdicts ------------------------------------------------------------

    def verdicts(self) -> set[str]:
        """The hazard classes found (``{"clean"}`` when none)."""
        found: set[str] = set()
        if any(r.verdict in ("nonlinear", "affine") for r in self.rules):
            found.add("nonlinear-pullback")
        nonlinear_names = {
            r.name for r in self.rules if not r.is_linear and r.verdict != "opaque"
        }
        for t in self.transposes:
            # Attribute to the pairing check only when the pullback itself
            # was a fine linear map (else it's the linearity hazard).
            if t.verdict == "inconsistent" and t.name not in nonlinear_names:
                found.add("wrong-transpose")
        if self.record_typing is not None and not self.record_typing.ok:
            found.add("ill-typed-record")
        if self.liveness is not None and self.liveness.dead:
            found.add("dead-capture")
        if self.plan_errors:
            found.add("non-differentiable")
        return found or {"clean"}

    @property
    def cross_check_ok(self) -> bool:
        """Every static verdict agrees with its numeric evidence."""
        if not all(r.cross_check_ok for r in self.rules):
            return False
        if not all(t.cross_check_ok for t in self.transposes):
            return False
        if self.pruning is not None and not self.pruning.gradients_identical:
            return False
        if self.fd_match is None:
            return True
        if self.verdicts() & (_BAD_DERIVATIVE | {"non-differentiable"}):
            return not self.fd_match
        return self.fd_match

    def diagnostics(self) -> list[Diagnostic]:
        out: list[Diagnostic] = list(self.plan_errors)
        for rule in self.rules:
            out.extend(rule.diagnostics())
        nonlinear_names = {
            r.name for r in self.rules if not r.is_linear and r.verdict != "opaque"
        }
        for t in self.transposes:
            if t.name not in nonlinear_names:
                out.extend(t.diagnostics())
        if self.record_typing is not None:
            out.extend(self.record_typing.diagnostics())
        if self.liveness is not None:
            out.extend(self.liveness.diagnostics())
        return out

    @property
    def ok(self) -> bool:
        return self.cross_check_ok and not any(
            d.is_error for d in self.diagnostics()
        )

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        lines = [
            f"== derivative verification: @{self.func_name} wrt {self.wrt} ==",
            f"verdicts:        {', '.join(sorted(self.verdicts()))}",
            f"cross-check:     {'MATCH' if self.cross_check_ok else 'MISMATCH'}",
            "",
            f"rules checked:   {len(self.rules)}",
        ]
        for r in self.rules:
            probe = "probe=linear" if r.probe.linear else (
                "probe=not-linear" if r.probe.ran else "probe=n/a"
            )
            lines.append(
                f"  {r.name:<24} {r.kind:<9} verdict={r.verdict:<10} {probe}"
            )
        if self.transposes:
            lines.append("")
            lines.append(f"transpose pairs: {len(self.transposes)}")
            for t in self.transposes:
                probe = (
                    "⟨Jv,w⟩=⟨v,Jᵀw⟩"
                    if t.probe_consistent
                    else ("inner-product MISMATCH" if t.probe_consistent is not None else "probe=n/a")
                )
                lines.append(
                    f"  {t.name:<24} verdict={t.verdict:<12} {probe}"
                )
        if self.record_typing is not None:
            lines.append("")
            lines.append(
                f"record entries:  {self.record_typing.checked_entries} "
                f"checked, {'well-typed' if self.record_typing.ok else 'ILL-TYPED'}"
            )
        if self.liveness is not None:
            lines.append(
                f"capture liveness: {self.liveness.recorded_entries} recorded,"
                f" {len(self.liveness.dead)} dead"
            )
        if self.fd_match is not None:
            lines.append(
                "finite differences: "
                + ("gradient matches" if self.fd_match else "gradient DIFFERS")
            )
        if self.pruning is not None:
            p = self.pruning
            lines.append(
                f"prune_captures:  {p.entries_unpruned} -> {p.entries_pruned}"
                f" entries ({p.entries_saved} saved), gradients "
                + ("bit-identical" if p.gradients_identical else "DIFFER")
            )
        diags = self.diagnostics()
        if diags:
            lines.append("")
            lines.extend(str(d) for d in diags)
        return "\n".join(lines)

    def annotated_sil(self) -> Optional[str]:
        """The function printed with per-instruction activity verdicts
        (``[varied]``/``[useful]``/``[active]``) and dead-capture marks."""
        if self.func is None or self.activity is None:
            return None
        from repro.sil.printer import print_function

        notes = {}
        if self.liveness is not None:
            dead_ids = {d.value_id for d in self.liveness.dead}
            for inst in self.func.instructions():
                if inst.results and inst.result.id in dead_ids:
                    notes[id(inst)] = "[dead capture]"
        return print_function(self.func, notes, activity=self.activity)


# ---------------------------------------------------------------------------
# Rule collection over a plan (recursing through callee plans).
# ---------------------------------------------------------------------------


def _collect_rule_sites(plan, seen: set[int]):
    """Yield ``(kind, name, vjp_fn, jvp_fn, n_args, nondiff, loc)`` for
    every leaf rule reachable from ``plan``."""
    from repro.core import registry
    from repro.core.synthesis import (
        CustomVJPRule,
        FunctionVJPRule,
        PrimitiveVJPRule,
    )

    if id(plan) in seen:
        return
    seen.add(id(plan))
    for inst in plan.func.instructions():
        if not isinstance(inst, ir.ApplyInst):
            continue
        rule = plan.rules.get(id(inst))
        if rule is None:
            continue
        if isinstance(rule, PrimitiveVJPRule):
            prim = rule.prim
            yield (
                "primitive",
                prim.name,
                prim.vjp,
                prim.jvp,
                len(inst.args),
                prim.nondiff_args,
                inst.loc,
            )
        elif isinstance(rule, CustomVJPRule):
            target = inst.callee.target
            jvp_fn = (
                registry.custom_jvp_for(target)
                if isinstance(target, ir.Function)
                else None
            )
            name = getattr(rule.fn, "__name__", repr(rule.fn))
            yield (
                "custom",
                name,
                rule.fn,
                jvp_fn,
                len(inst.args),
                (),
                inst.loc,
            )
        elif isinstance(rule, FunctionVJPRule):
            # Linear by construction (the reverse sweep composes leaf
            # pullbacks); verify the leaves of the callee plan instead.
            yield from _collect_rule_sites(rule.plan, seen)


# ---------------------------------------------------------------------------
# Whole-plan numeric probes.
# ---------------------------------------------------------------------------


def _plan_gradient(plan, args: Sequence[float]):
    value, pullback = plan.vjp(list(args))
    cts = pullback(1.0)
    return value, tuple(cts[i] for i in plan.wrt)


def _fd_gradient(func: ir.Function, args: Sequence[float], wrt) -> Optional[tuple]:
    from repro.sil.interp import call_function

    grads = []
    for i in wrt:
        hi = list(args)
        lo = list(args)
        hi[i] += _FD_STEP
        lo[i] -= _FD_STEP
        try:
            f_hi = call_function(func, hi)
            f_lo = call_function(func, lo)
        except Exception:
            return None
        if not isinstance(f_hi, (int, float)) or isinstance(f_hi, bool):
            return None
        grads.append((f_hi - f_lo) / (2.0 * _FD_STEP))
    return tuple(grads)


def _fd_match(plan, args: Sequence[float]) -> Optional[bool]:
    fd = _fd_gradient(plan.func, args, plan.wrt)
    if fd is None:
        return None
    try:
        _value, grad = _plan_gradient(plan, args)
    except Exception:
        return False  # the synthesized derivative cannot even run
    from repro.core.differentiable import ZERO

    for g, f in zip(grad, fd):
        if g is ZERO or g is None:
            g = 0.0
        if isinstance(g, bool) or not isinstance(g, (int, float)):
            return False
        if abs(g - f) > _FD_RTOL * max(1.0, abs(g), abs(f)):
            return False
    return True


def _measure_pruning(func: ir.Function, wrt, args) -> Optional[PruningStats]:
    from repro.core.synthesis import vjp_plan

    try:
        plain = vjp_plan(func, wrt)
        pruned = vjp_plan(func, wrt, prune_captures=True)
        _v1, rec1 = plain.execute_forward(list(args))
        _v2, rec2 = pruned.execute_forward(list(args))
        g1 = plain.run_pullback(rec1, 1.0)
        g2 = pruned.run_pullback(rec2, 1.0)
    except Exception:
        return None
    return PruningStats(
        entries_unpruned=sum(len(r.entries) for r in rec1),
        entries_pruned=sum(len(r.entries) for r in rec2),
        gradients_identical=g1 == g2,
    )


# ---------------------------------------------------------------------------
# Entry points.
# ---------------------------------------------------------------------------


def verify_derivatives(
    fn: Union[Callable, ir.Function],
    wrt: Optional[tuple[int, ...]] = None,
    args: Optional[Sequence[float]] = None,
    name: Optional[str] = None,
) -> DerivativeReport:
    """Run the full static derivative verifier over one function."""
    from repro.core.synthesis import vjp_plan

    if isinstance(fn, ir.Function):
        func = fn
    else:
        from repro.sil.frontend import lower_function

        func = lower_function(fn)
    if wrt is None:
        wrt = tuple(range(len(func.params)))
    report = DerivativeReport(
        func_name=name or func.name, wrt=tuple(wrt)
    )

    try:
        plan = vjp_plan(func, tuple(wrt))
    except DifferentiabilityError as exc:
        report.plan_errors = list(exc.diagnostics)
        return report

    for kind, rname, vjp_fn, jvp_fn, n_args, nondiff, loc in _collect_rule_sites(
        plan, set()
    ):
        if kind == "primitive":
            lin = check_primitive_linearity(
                _PrimView(rname, vjp_fn, n_args, nondiff), loc
            )
        else:
            lin = check_pullback_linearity(
                rname,
                vjp_fn,
                n_args,
                kind="custom",
                loc=loc,
                watch_recompute=True,
            )
        report.rules.append(lin)
        if jvp_fn is not None and vjp_fn is not None:
            report.transposes.append(
                check_transpose(
                    rname, jvp_fn, vjp_fn, n_args, nondiff=nondiff, loc=loc
                )
            )

    report.record_typing = verify_plan_records(plan)
    report.liveness = analyze_capture_liveness(func, tuple(wrt), plan.activity)
    report.func = func
    report.activity = plan.activity

    if args is not None:
        report.fd_match = _fd_match(plan, args)
        report.pruning = _measure_pruning(func, tuple(wrt), args)
    return report


class _PrimView:
    """Adapter giving :func:`check_primitive_linearity` a fixed arity."""

    __slots__ = ("name", "vjp", "_n_args", "nondiff_args")

    def __init__(self, name, vjp, n_args, nondiff_args):
        self.name = name
        self.vjp = vjp
        self._n_args = n_args
        self.nondiff_args = nondiff_args

    @property
    def arity(self):
        return (self._n_args, self._n_args)


def analyze_derivative_model(model: DerivativeModel) -> DerivativeReport:
    """Build and verify one corpus entry."""
    fn = model.build()
    return verify_derivatives(
        fn, wrt=model.wrt, args=model.args, name=model.name
    )
