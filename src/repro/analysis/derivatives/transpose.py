"""JVP/VJP transpose consistency (analysis 2 of the verifier).

For a correct derivative pair, the reverse rule is the *transpose* of the
forward one: ``⟨J·v, w⟩ = ⟨v, Jᵀ·w⟩`` for all tangents ``v`` and
cotangents ``w``.  Both sides are extracted statically by abstract
interpretation at seeded primals:

* **forward** — run the JVP with one basis symbol ``tᵢ`` per argument;
  the output tangent's coefficient on ``tᵢ`` is column ``i`` of ``J``;
* **reverse** — run the pullback on the symbol ``ct`` (reusing the
  linearity analysis); the cotangent of argument ``i`` has coefficient
  ``kᵢ`` on ``ct``, which is row ``i`` of ``Jᵀ``.

Consistency is then the pointwise check ``cᵢ = kᵢ``.  Every verdict is
cross-checked numerically with a seeded probe of the inner-product
identity itself (``cross_check_ok``), mirroring the static-vs-dynamic
discipline of the tracing analysis.  Pairs that cannot run on scalar
samples come back ``"opaque"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.analysis.derivatives.abstract import (
    AbstractEscapeError,
    AffineValue,
    classify,
)
from repro.analysis.derivatives.linearity import (
    check_pullback_linearity,
    default_samples,
)
from repro.errors import Diagnostic, SourceLocation

_TOL = 1e-9

#: Seeded tangent/cotangent probe values for the inner-product identity.
_PROBE_TANGENTS = (0.83, -1.37, 0.59, 1.91, -0.47, 1.13, 0.71, -0.29)
_PROBE_COTANGENT = 0.73


@dataclass
class TransposeCheck:
    """Static transpose comparison + numeric inner-product evidence."""

    name: str
    n_args: int
    #: "consistent" | "inconsistent" | "opaque"
    verdict: str = "opaque"
    reason: str = ""
    #: Columns of J from the JVP (None: no forward flow for that arg).
    forward_coefficients: tuple[Optional[float], ...] = ()
    #: Rows of Jᵀ from the pullback (None: no reverse flow).
    reverse_coefficients: tuple[Optional[float], ...] = ()
    #: Numeric ⟨Jv, w⟩ = ⟨v, Jᵀw⟩ probe: True/False, None if not runnable.
    probe_consistent: Optional[bool] = None
    loc: SourceLocation = field(default_factory=SourceLocation)

    @property
    def cross_check_ok(self) -> bool:
        """The static verdict matches the numeric inner-product probe."""
        if self.verdict == "opaque" or self.probe_consistent is None:
            return True
        return (self.verdict == "consistent") == self.probe_consistent

    def diagnostics(self) -> list[Diagnostic]:
        if self.verdict != "inconsistent":
            return []
        pairs = ", ".join(
            f"arg {i}: J={_fmt(c)} vs Jᵀ={_fmt(k)}"
            for i, (c, k) in enumerate(
                zip(self.forward_coefficients, self.reverse_coefficients)
            )
            if not _matches(c, k)
        )
        return [
            Diagnostic(
                "error",
                f"VJP of {self.name!r} is not the transpose of its JVP "
                f"(⟨Jv, w⟩ ≠ ⟨v, Jᵀw⟩): {pairs or self.reason}",
                self.loc,
            )
        ]


def _fmt(c: Optional[float]) -> str:
    return "0 (no flow)" if c is None else f"{c:g}"


def _matches(c: Optional[float], k: Optional[float]) -> bool:
    cv = 0.0 if c is None else c
    kv = 0.0 if k is None else k
    return abs(cv - kv) <= _TOL * max(1.0, abs(cv), abs(kv))


def _forward_coefficients(
    jvp_fn: Callable, primals: Sequence[float]
) -> tuple[Optional[tuple], str]:
    """Columns of J via one basis symbol per argument; (None, reason) when
    the JVP cannot be interpreted abstractly."""
    syms = tuple(AffineValue.symbol(f"t{i}") for i in range(len(primals)))
    try:
        _value, tangent_out = jvp_fn(tuple(primals), syms)
    except AbstractEscapeError as exc:
        return None, str(exc)
    except Exception as exc:
        return None, f"JVP not probeable on scalar samples ({exc!r})"
    kind, _coeff, detail = classify(tangent_out)
    if kind == "zero":
        return (None,) * len(primals), ""
    if kind != "linear":
        return None, (
            f"forward differential is not linear in the tangent: "
            f"{detail or kind}"
        )
    return (
        tuple(tangent_out.coefficient(f"t{i}") for i in range(len(primals))),
        "",
    )


def _numeric_inner_product_probe(
    jvp_fn: Callable,
    vjp_fn: Callable,
    primals: Sequence[float],
    nondiff: Sequence[int] = (),
) -> Optional[bool]:
    """Seeded check of ⟨Jv, w⟩ = ⟨v, Jᵀw⟩ at the samples."""
    n = len(primals)
    v = [
        0.0 if i in nondiff else _PROBE_TANGENTS[i % len(_PROBE_TANGENTS)]
        for i in range(n)
    ]
    w = _PROBE_COTANGENT
    try:
        _y, jv = jvp_fn(tuple(primals), tuple(v))
        _y2, pullback = vjp_fn(*primals)
        jtw = pullback(w)
    except Exception:
        return None
    from repro.core.differentiable import is_zero

    def as_float(x) -> Optional[float]:
        if x is None or is_zero(x):
            return 0.0
        if isinstance(x, bool) or not isinstance(x, (int, float)):
            return None
        return float(x)

    jv_f = as_float(jv)
    if jv_f is None:
        return None
    parts = jtw if isinstance(jtw, (tuple, list)) else (jtw,)
    if len(parts) != n:
        return False  # a missing cotangent breaks the identity by itself
    lhs = jv_f * w
    rhs = 0.0
    for vi, ci in zip(v, parts):
        cf = as_float(ci)
        if cf is None:
            return False
        rhs += vi * cf
    return abs(lhs - rhs) <= 1e-6 * max(1.0, abs(lhs), abs(rhs))


def check_transpose(
    name: str,
    jvp_fn: Callable,
    vjp_fn: Callable,
    n_args: int,
    nondiff: Sequence[int] = (),
    samples: Optional[Sequence[float]] = None,
    loc: Optional[SourceLocation] = None,
) -> TransposeCheck:
    """Statically pair a JVP with its VJP and check Jᵀ really transposes J."""
    check = TransposeCheck(
        name=name, n_args=n_args, loc=loc or SourceLocation()
    )
    primals = tuple(samples) if samples is not None else default_samples(n_args)

    forward, fwd_reason = _forward_coefficients(jvp_fn, primals)
    reverse_lin = check_pullback_linearity(
        name, vjp_fn, n_args, samples=primals, loc=loc
    )
    check.probe_consistent = _numeric_inner_product_probe(
        jvp_fn, vjp_fn, primals, nondiff
    )

    if forward is None or reverse_lin.verdict == "opaque":
        check.verdict = "opaque"
        check.reason = fwd_reason or reverse_lin.reason
        return check
    if not reverse_lin.is_linear:
        # Linearity violations are reported by the linearity analysis; a
        # nonlinear pullback has no well-defined transpose to compare.
        check.verdict = "inconsistent"
        check.reason = f"pullback is not linear ({reverse_lin.reason})"
        return check

    reverse = reverse_lin.coefficients
    if len(reverse) != n_args:
        check.verdict = "inconsistent"
        check.reason = (
            f"pullback returns {len(reverse)} cotangent(s) for "
            f"{n_args} argument(s)"
        )
        return check

    check.forward_coefficients = forward
    check.reverse_coefficients = reverse
    mismatched = [
        i
        for i in range(n_args)
        if i not in nondiff and not _matches(forward[i], reverse[i])
    ]
    check.verdict = "inconsistent" if mismatched else "consistent"
    return check


def check_primitive_transpose(prim, loc=None) -> Optional[TransposeCheck]:
    """Transpose consistency of a registered primitive's JVP/VJP pair
    (None when the primitive does not carry both rules)."""
    if prim.jvp is None or prim.vjp is None:
        return None
    lo, hi = prim.arity
    n_args = lo if lo > 0 else (2 if hi is None else max(hi, 1))
    return check_transpose(
        prim.name,
        prim.jvp,
        prim.vjp,
        n_args,
        nondiff=prim.nondiff_args,
        loc=loc,
    )
