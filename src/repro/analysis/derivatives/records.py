"""Record typing (analysis 3 of the verifier).

``VJPPlan.execute_forward`` pushes one :class:`_BlockRecord` per executed
block; each *entry* in a record captures either a pullback closure (apply
sites) or structural information (tuple/struct ops).  The reverse sweep
feeds every entry a cotangent of its primal result.  For the sweep to be
well-typed, that cotangent must live in the primal value's *tangent
space* — and ``Bool``/``String`` values have none.

This module type-checks the record layout **statically, before any
execution**: it walks the instructions the forward sweep would record
(exactly mirroring the ``execute_forward`` gating on activity) and
rejects entries whose primal type has an empty tangent space with located
:class:`~repro.errors.DifferentiabilityError` diagnostics.  For plans
carrying custom/primitive rules it additionally probes each rule once at
seeded samples and checks the pullback's output *shape*: one cotangent
component per differentiable operand, each component a value of the
operand's tangent space (``bool``/``str`` cotangents are rejected — the
classic hand-written-derivative bug of returning a validity flag in the
cotangent slot).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import Diagnostic, DifferentiabilityError, SourceLocation
from repro.sil import ir

#: SIL type tag -> tangent-space description; ``None`` marks an empty
#: tangent space (values of the type cannot receive a cotangent).
_TANGENT_SPACES: dict[str, Optional[str]] = {
    "Float": "Float",
    "Int": "Float",  # ints conform with tangent space Float
    "Tensor": "Tensor",
    "Tuple": "elementwise tuple of tangents",
    "List": "elementwise list of tangents",
    "Struct": "synthesized TangentVector",
    "Any": "unknown (checked at runtime)",
    "Bool": None,
    "String": None,
}


def tangent_space_of(sil_type: ir.SILType) -> Optional[str]:
    """Human-readable tangent space of a SIL type tag, None if empty."""
    return _TANGENT_SPACES.get(sil_type.name, "unknown (checked at runtime)")


@dataclass
class RecordEntryCheck:
    """Typing verdict for one would-be record entry."""

    description: str
    kind: str  # "apply" | "tuple" | "tuple_extract" | "struct_extract"
    primal_type: str
    tangent_space: Optional[str]
    ok: bool
    reason: str = ""
    loc: SourceLocation = field(default_factory=SourceLocation)


@dataclass
class RecordTyping:
    """Static type-check of a plan's record layout."""

    func_name: str
    wrt: tuple[int, ...]
    entries: list[RecordEntryCheck] = field(default_factory=list)
    param_errors: list[Diagnostic] = field(default_factory=list)
    #: Rules whose probed pullback output shape was wrong.
    rule_errors: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.param_errors
            and not self.rule_errors
            and all(e.ok for e in self.entries)
        )

    @property
    def checked_entries(self) -> int:
        return len(self.entries)

    def diagnostics(self) -> list[Diagnostic]:
        out = list(self.param_errors)
        for entry in self.entries:
            if not entry.ok:
                out.append(
                    Diagnostic(
                        "error",
                        f"ill-typed pullback record entry in "
                        f"@{self.func_name}: {entry.description} has primal "
                        f"type ${entry.primal_type}, whose tangent space is "
                        f"empty — {entry.reason}",
                        entry.loc,
                    )
                )
        out.extend(self.rule_errors)
        return out

    def raise_if_ill_typed(self) -> None:
        errors = [d for d in self.diagnostics() if d.is_error]
        if errors:
            raise DifferentiabilityError(errors)


_ENTRY_KINDS = {
    ir.ApplyInst: "apply",
    ir.TupleInst: "tuple",
    ir.TupleExtractInst: "tuple_extract",
    ir.StructExtractInst: "struct_extract",
}


def _describe(inst: ir.Instruction) -> str:
    hint = inst.result.hint
    label = f" ({hint!r})" if hint else ""
    return f"%{inst.result.id} = {inst.opname()}{label}"


def check_record_typing(
    func: ir.Function, wrt: tuple[int, ...], activity=None
) -> RecordTyping:
    """Type-check the record entries synthesis would emit for ``func``."""
    from repro.core.activity import analyze_activity

    if activity is None:
        activity = analyze_activity(func, wrt)
    report = RecordTyping(func_name=func.name, wrt=tuple(wrt))

    for i in wrt:
        param = func.params[i]
        space = tangent_space_of(param.type)
        if space is None:
            report.param_errors.append(
                Diagnostic(
                    "error",
                    f"@{func.name} parameter {i} has type ${param.type.name},"
                    " which has no tangent space; it cannot be a"
                    " differentiation parameter",
                    func.loc if hasattr(func, "loc") else SourceLocation(),
                )
            )

    for inst in func.instructions():
        kind = _ENTRY_KINDS.get(type(inst))
        if kind is None or not inst.results:
            continue
        # Mirror execute_forward: only active instructions are recorded.
        if not activity.is_active(inst):
            continue
        primal = inst.result.type
        space = tangent_space_of(primal)
        report.entries.append(
            RecordEntryCheck(
                description=_describe(inst),
                kind=kind,
                primal_type=primal.name,
                tangent_space=space,
                ok=space is not None,
                reason=(
                    ""
                    if space is not None
                    else f"${primal.name} values are not differentiable"
                ),
                loc=inst.loc,
            )
        )
    return report


# ---------------------------------------------------------------------------
# Rule probing: the pullback's output shape against the apply's operands.
# ---------------------------------------------------------------------------


def _is_tangent_value(component) -> Optional[str]:
    """None if ``component`` may inhabit a tangent space, else a reason."""
    from repro.core.differentiable import is_zero

    if component is None or is_zero(component):
        return None  # structural zero: always admissible
    if isinstance(component, bool):
        return "bool is not a tangent value"
    if isinstance(component, str):
        return "str is not a tangent value"
    if isinstance(component, (tuple, list)):
        for part in component:
            reason = _is_tangent_value(part)
            if reason is not None:
                return reason
        return None
    return None  # numbers, tensors, TangentVectors, abstract values


def probe_rule_record(
    name: str,
    vjp_fn,
    n_args: int,
    loc: Optional[SourceLocation] = None,
) -> list[Diagnostic]:
    """Run one rule at seeded samples and type-check its pullback output.

    Returns located diagnostics for shape/typing violations; an empty list
    when the rule is well-typed *or* cannot run on scalar samples (tensor
    rules are checked dynamically by the interpreter instead).
    """
    from repro.analysis.derivatives.linearity import default_samples

    loc = loc or SourceLocation()
    try:
        _value, pullback = vjp_fn(*default_samples(n_args))
        out = pullback(1.0)
    except Exception:
        return []

    components = list(out) if isinstance(out, (tuple, list)) else [out]
    diags: list[Diagnostic] = []
    if isinstance(out, (tuple, list)) and len(components) != n_args:
        diags.append(
            Diagnostic(
                "error",
                f"pullback of {name!r} returns {len(components)} cotangent"
                f" component(s) for {n_args} argument(s); the record is"
                " ill-typed",
                loc,
            )
        )
    for i, component in enumerate(components):
        reason = _is_tangent_value(component)
        if reason is not None:
            diags.append(
                Diagnostic(
                    "error",
                    f"pullback of {name!r} produces an ill-typed cotangent"
                    f" for argument {i}: {reason}",
                    loc,
                )
            )
    return diags


def verify_plan_records(plan) -> RecordTyping:
    """Full record-typing pass over a built :class:`VJPPlan`.

    Static layout check plus a seeded probe of every custom/primitive rule
    the plan holds, attributed to the apply site's source location.
    """
    from repro.core.synthesis import CustomVJPRule, PrimitiveVJPRule

    report = check_record_typing(plan.func, plan.wrt, plan.activity)
    for inst in plan.func.instructions():
        if not isinstance(inst, ir.ApplyInst):
            continue
        rule = plan.rules.get(id(inst))
        if isinstance(rule, PrimitiveVJPRule):
            report.rule_errors.extend(
                probe_rule_record(
                    rule.prim.name, rule.prim.vjp, len(inst.args), inst.loc
                )
            )
        elif isinstance(rule, CustomVJPRule):
            name = getattr(rule.fn, "__name__", repr(rule.fn))
            report.rule_errors.extend(
                probe_rule_record(name, rule.fn, len(inst.args), inst.loc)
            )
    return report
