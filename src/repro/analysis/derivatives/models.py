"""The seeded derivative-correctness corpus: models with known verdicts.

Mirrors :mod:`repro.analysis.tracing.models`: a clean suite the verifier
must pass with **zero** error diagnostics and ``cross_check_ok=True``
(static verdicts agreeing with every numeric probe), plus seeded hazards
— one per failure mode of hand-written derivative rules — each recording
the verdict the verifier must produce.

The hazard rules live on *raw* :class:`~repro.sil.primitives.Primitive`
instances that are **not** added to the global ``PRIMITIVES`` table, so
the registry-wide self-check sweeps never see them; the frontend lowers
them to direct apply sites like any other primitive global.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.sil.primitives import Primitive

# ---------------------------------------------------------------------------
# Corpus entry shape.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DerivativeModel:
    """One corpus entry: a differentiable program plus expected verdict."""

    name: str
    description: str
    #: "clean" | "nonlinear-pullback" | "wrong-transpose" |
    #: "ill-typed-record" | "dead-capture"
    expect: str
    #: Sample arguments the report's finite-difference probe runs at.
    args: tuple[float, ...]
    build: Callable[[], Callable]
    wrt: tuple[int, ...] = (0,)


# ---------------------------------------------------------------------------
# Clean corpus.
# ---------------------------------------------------------------------------


def polynomial(x):
    return 3.0 * x * x + 2.0 * x + 1.0


def sigmoid_like(x):
    return 1.0 / (1.0 + math.exp(-x))


def branchy(x):
    if x > 1.0:
        return x * x
    return 3.0 * x


def loopy(x):
    total = 0.0
    for _ in range(4):
        total = total + x * x
    return total


def two_param(x, y):
    return x * math.sin(y) + y


def _scaled_sin(v):
    return math.sin(v) * 2.0


def _build_custom_clean():
    """A function whose call sites use a hand-registered (correct) VJP."""
    from repro.core.registry import derivative

    @derivative(of=_scaled_sin)
    def _scaled_sin_vjp(v):
        c = math.cos(v)
        return math.sin(v) * 2.0, lambda ct: (ct * 2.0 * c,)

    def custom_clean(x):
        return _scaled_sin(x) + x

    return custom_clean


# ---------------------------------------------------------------------------
# Seeded hazards: raw, unregistered primitives with defective rules.
# ---------------------------------------------------------------------------

#: Nonlinear pullback: d(square)/dx is 2x·ct, but this rule multiplies the
#: cotangent by itself — pb(a+b) ≠ pb(a)+pb(b).
_bad_square = Primitive(
    "bad_square_hazard",
    lambda x: x * x,
    vjp=lambda x: (x * x, lambda ct: (ct * ct,)),
)

#: Wrong transpose: the function is 3x (J = 3, so Jᵀ = 3) but the pullback
#: scales by 2.  Both rules are perfectly linear — only the pairing check
#: can catch this.
_bad_scale = Primitive(
    "bad_scale_hazard",
    lambda x: 3.0 * x,
    jvp=lambda primals, tangents: (3.0 * primals[0], 3.0 * tangents[0]),
    vjp=lambda x: (3.0 * x, lambda ct: (2.0 * ct,)),
)

#: Ill-typed record: the pullback returns a validity *flag* where the
#: cotangent belongs; Bool has no tangent space.
_bad_bool_ct = Primitive(
    "bad_bool_ct_hazard",
    lambda x: x * 2.0,
    vjp=lambda x: (x * 2.0, lambda ct: (True,)),
)

#: Ill-typed record, arity flavor: two arguments, one cotangent component.
_bad_arity = Primitive(
    "bad_arity_hazard",
    lambda x, y: x + y,
    vjp=lambda x, y: (x + y, lambda ct: (ct,)),
)


def bad_square_model(x):
    return _bad_square(x) + x


def bad_scale_model(x):
    return _bad_scale(x) + x


def bad_bool_ct_model(x):
    return _bad_bool_ct(x) + x


def bad_arity_model(x, y):
    return _bad_arity(x, y) * 2.0


def dead_capture(x):
    # exp(x) is varied and graph-useful, but its cotangent dies in the
    # float(int(.)) chain: the capture of y is dead weight.
    y = math.exp(x)
    k = float(int(y))
    return x * k


def loop_dead_capture(x):
    total = x
    for _ in range(3):
        y = math.exp(total)
        k = float(int(y) % 7)
        total = total + x * k
    return total


def _ret(fn):
    return lambda: fn


CLEAN_MODELS = [
    DerivativeModel(
        "polynomial",
        "quadratic polynomial: product/add/const rules",
        "clean",
        (1.3,),
        _ret(polynomial),
    ),
    DerivativeModel(
        "sigmoid_like",
        "1/(1+exp(-x)): division, exp, negation",
        "clean",
        (0.7,),
        _ret(sigmoid_like),
    ),
    DerivativeModel(
        "branchy",
        "data-dependent branch; per-block records",
        "clean",
        (2.1,),
        _ret(branchy),
    ),
    DerivativeModel(
        "loopy",
        "loop accumulation; value-id reuse across iterations",
        "clean",
        (0.9,),
        _ret(loopy),
    ),
    DerivativeModel(
        "two_param",
        "two parameters, trig, mixed activity",
        "clean",
        (1.1, 0.6),
        _ret(two_param),
        wrt=(0, 1),
    ),
    DerivativeModel(
        "custom_clean",
        "call site bound to a correct hand-registered VJP",
        "clean",
        (0.8,),
        _build_custom_clean,
    ),
]

HAZARD_MODELS = [
    DerivativeModel(
        "bad_square",
        "pullback multiplies the cotangent by itself (nonlinear map)",
        "nonlinear-pullback",
        (1.3,),
        _ret(bad_square_model),
    ),
    DerivativeModel(
        "bad_scale",
        "linear VJP that is not the transpose of the registered JVP",
        "wrong-transpose",
        (1.3,),
        _ret(bad_scale_model),
    ),
    DerivativeModel(
        "bad_bool_ct",
        "pullback returns a bool where a cotangent belongs",
        "ill-typed-record",
        (1.3,),
        _ret(bad_bool_ct_model),
    ),
    DerivativeModel(
        "bad_arity",
        "two-argument primitive, one-component pullback",
        "ill-typed-record",
        (1.3, 0.4),
        _ret(bad_arity_model),
        wrt=(0, 1),
    ),
    DerivativeModel(
        "dead_capture",
        "varied value whose cotangent dies in a discrete chain",
        "dead-capture",
        (1.3,),
        _ret(dead_capture),
    ),
    DerivativeModel(
        "loop_dead_capture",
        "dead capture re-recorded on every loop iteration",
        "dead-capture",
        (0.4,),
        _ret(loop_dead_capture),
    ),
]

MODELS = {m.name: m for m in CLEAN_MODELS + HAZARD_MODELS}
