"""Drive the precision analysis over a corpus program and cross-check it.

For every unique captured trace of a program:

1. lower to (f32) HLO and run the interval analysis with parameter
   intervals taken from the *real* source data;
2. audit the **naive** narrow-everything lowering — the dtype-flow
   checker's verdicts here are the program's static verdicts (hazards
   must be caught, clean programs must produce zero diagnostics);
3. build the **planned** lowering (:func:`plan_casts` + ``apply_plan``)
   and require it to re-check clean — the plan is a certificate, not a
   suggestion;
4. run the dynamic oracle three ways — f64 reference, naive, planned —
   and require, per instruction, certified ⊇ observed on every run
   (NaN observed only where the certified interval is poisoned);
5. confirm the static verdict *manifests* dynamically: seeded
   overflow/unsafe-cast programs must actually produce non-finite
   outputs under the naive lowering, underflow/drift programs must
   actually lose accuracy, and clean programs must stay accurate under
   both lowerings;
6. certify the memory planner's peak on the original and the planned
   module — narrowing must be visible in bytes, not just in dtypes.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

import numpy as np

from repro.errors import Diagnostic, SourceLocation
from repro.hlo.dtypes import finfo
from repro.hlo.ir import HloModule

from .casts import PrecisionAssignment, apply_plan, naive_assignment, plan_casts
from .dtypeflow import check_dtype_flow, verdict_of
from .intervals import Interval
from .models import CORPUS, PrecisionProgram, get_program
from .oracle import OracleRun, OutputError, output_errors, run_observed, run_reference
from .ranges import RangeInfo, analyze_ranges


def accuracy_tolerance(policy: str) -> float:
    """Max acceptable scaled output error of a *clean* narrowed run:
    16 rounding steps of the policy dtype (f16 ≈ 1.6 %, bf16 ≈ 12.5 %)."""
    return 16.0 * finfo(policy).eps


@dataclass
class TracePrecisionCheck:
    """The precision verdict for one unique trace of a program."""

    trace_key: str
    policy: str
    expect: str
    naive_plan: PrecisionAssignment
    planned_plan: PrecisionAssignment
    #: The static verdicts: dtype-flow diagnostics of the naive lowering.
    diagnostics: list[Diagnostic]
    #: Must be empty — the planner's output re-checked clean.
    planned_diagnostics: list[Diagnostic]
    #: certified ⊉ observed violations across all three oracle runs.
    containment_failures: list[str]
    naive_error: OutputError
    planned_error: OutputError
    #: Memory planner's certified transient peak, original vs planned.
    f32_peak_bytes: int
    planned_peak_bytes: int

    @property
    def contained(self) -> bool:
        return not self.containment_failures

    @property
    def bytes_saved(self) -> int:
        return self.f32_peak_bytes - self.planned_peak_bytes

    @property
    def manifestation_agrees(self) -> bool:
        """The naive run's dynamic behaviour matches the static verdict."""
        tol = accuracy_tolerance(self.policy)
        e = self.naive_error
        if self.expect == "clean":
            return not e.introduced_nonfinite and e.max_scaled <= tol
        if self.expect in ("overflow", "unsafe-cast"):
            return e.introduced_nonfinite
        return e.max_scaled > tol  # underflow, accum-drift

    @property
    def planned_ok(self) -> bool:
        """The plan checked clean statically and ran accurately."""
        tol = accuracy_tolerance(self.policy)
        return (
            not any(d.is_error for d in self.planned_diagnostics)
            and not self.planned_error.introduced_nonfinite
            and self.planned_error.max_scaled <= tol
        )


@dataclass
class PrecisionReport:
    """Everything the precision analysis concluded about one program."""

    program: PrecisionProgram
    location: SourceLocation
    checks: list[TracePrecisionCheck] = field(default_factory=list)

    def diagnostics(self) -> list[Diagnostic]:
        return [d for c in self.checks for d in c.diagnostics]

    def verdicts(self) -> set[str]:
        found = {
            v
            for d in self.diagnostics()
            if d.is_error and (v := verdict_of(d)) is not None
        }
        return found or {"clean"}

    @property
    def verdict_matches(self) -> bool:
        if self.program.expect == "clean":
            return self.verdicts() == {"clean"}
        return self.program.expect in self.verdicts()

    @property
    def cross_check_ok(self) -> bool:
        """Static and dynamic halves agree on every trace: certificates
        contain every observed value, the statically predicted hazard (or
        its absence) manifests under the naive lowering, and the planned
        lowering is both clean and accurate."""
        if not self.checks:
            return False
        return all(
            c.contained and c.manifestation_agrees and c.planned_ok
            for c in self.checks
        )

    @property
    def bytes_saved(self) -> int:
        return max((c.bytes_saved for c in self.checks), default=0)

    def render(self) -> str:
        lines = [
            f"precision report: {self.program.name}"
            f" [{self.program.description}] policy={self.program.policy}",
            f"  verdicts: {', '.join(sorted(self.verdicts()))}"
            f" (expected {self.program.expect});"
            f" cross-check {'OK' if self.cross_check_ok else 'FAILED'}",
        ]
        for c in self.checks:
            lines.append(
                f"  trace {c.trace_key}: plan {c.planned_plan.summary()}"
            )
            lines.append(
                f"    naive run:   scaled err {c.naive_error.max_scaled:.3g}, "
                f"{c.naive_error.max_ulp:.3g} ULP"
                + (", non-finite" if c.naive_error.introduced_nonfinite else "")
                + f"; manifestation {'agrees' if c.manifestation_agrees else 'DISAGREES'}"
            )
            lines.append(
                f"    planned run: scaled err {c.planned_error.max_scaled:.3g}, "
                f"{c.planned_error.max_ulp:.3g} ULP"
                + (", non-finite" if c.planned_error.introduced_nonfinite else "")
                + f"; {'clean' if c.planned_ok else 'NOT CLEAN'}"
            )
            lines.append(
                f"    certified ⊇ observed: "
                f"{'OK' if c.contained else 'VIOLATED'}; "
                f"peak {c.f32_peak_bytes} B -> {c.planned_peak_bytes} B"
                f" ({c.bytes_saved:+d} B saved)"
            )
            for failure in c.containment_failures:
                lines.append(f"    {failure}")
            for d in c.diagnostics:
                lines.append(f"    {d}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "program": self.program.name,
            "description": self.program.description,
            "policy": self.program.policy,
            "expect": self.program.expect,
            "verdicts": sorted(self.verdicts()),
            "verdict_matches": self.verdict_matches,
            "cross_check_ok": self.cross_check_ok,
            "bytes_saved": self.bytes_saved,
            "traces": [
                {
                    "trace_key": c.trace_key,
                    "plan": c.planned_plan.summary(),
                    "contained": c.contained,
                    "containment_failures": list(c.containment_failures),
                    "manifestation_agrees": c.manifestation_agrees,
                    "planned_ok": c.planned_ok,
                    "naive_error": {
                        "max_scaled": c.naive_error.max_scaled,
                        "max_ulp": c.naive_error.max_ulp,
                        "nonfinite": c.naive_error.introduced_nonfinite,
                    },
                    "planned_error": {
                        "max_scaled": c.planned_error.max_scaled,
                        "max_ulp": c.planned_error.max_ulp,
                        "nonfinite": c.planned_error.introduced_nonfinite,
                    },
                    "f32_peak_bytes": c.f32_peak_bytes,
                    "planned_peak_bytes": c.planned_peak_bytes,
                    "diagnostics": [d.message for d in c.diagnostics],
                }
                for c in self.checks
            ],
        }


def _program_location(program: PrecisionProgram) -> SourceLocation:
    fn = inspect.unwrap(program.build)
    code = fn.__code__
    return SourceLocation(code.co_filename, code.co_firstlineno)


def _containment(
    module: HloModule, ranges: RangeInfo, run: OracleRun, label: str
) -> list[str]:
    failures: list[str] = []
    for inst in module.schedule():
        stats = run.observed.get(inst.id)
        if stats is None:
            continue
        cert = ranges.intervals.get(inst.id)
        if cert is None:
            continue
        if stats.has_nan:
            if not cert.poisoned:
                failures.append(
                    f"{label}: %{inst.name} observed NaN but certified "
                    f"{cert} is not poisoned"
                )
            continue
        if not (cert.contains(stats.lo) and cert.contains(stats.hi)):
            failures.append(
                f"{label}: %{inst.name} observed [{stats.lo:.6g}, "
                f"{stats.hi:.6g}] escapes certified {cert}"
            )
    return failures


def _certified_peak(module: HloModule, trace_key: str) -> int:
    from repro.analysis.memory.peak import certify_module

    return certify_module(module, trace_key=trace_key).certified_peak_bytes


def analyze_precision_program(program: PrecisionProgram) -> PrecisionReport:
    """Run ``program`` and audit every unique trace it produced."""
    from repro.analysis.tracing.canonical import canonicalize
    from repro.analysis.tracing.capture import capture_step_traces
    from repro.tensor.lazy_backend import _lower_to_hlo

    device, step_fn = program.build()
    capture = capture_step_traces(
        step_fn, steps=program.steps, device=device, keep_source_data=True
    )
    location = _program_location(program)
    report = PrecisionReport(program=program, location=location)
    seen: set[str] = set()
    for record in capture.fragments:
        key = canonicalize(record.fragment.roots).digest
        if key in seen:
            continue
        seen.add(key)
        module, param_nodes = _lower_to_hlo(record.fragment.to_trace_nodes())
        args = [np.asarray(p.data, np.float32) for p in param_nodes]
        param_intervals = {
            i: Interval.of_array(a) for i, a in enumerate(args)
        }

        base_ranges = analyze_ranges(module, param_intervals)
        reference = run_reference(module, args)

        naive = naive_assignment(module, program.policy)
        naive_module = apply_plan(module, naive)
        naive_ranges = analyze_ranges(naive_module, param_intervals)
        diagnostics = check_dtype_flow(naive_module, naive_ranges, location)
        naive_run = run_observed(naive_module, args)

        plan = plan_casts(module, program.policy, base_ranges)
        planned_module = apply_plan(module, plan)
        planned_ranges = analyze_ranges(planned_module, param_intervals)
        planned_diags = check_dtype_flow(planned_module, planned_ranges, location)
        planned_run = run_observed(planned_module, args)

        failures = (
            _containment(module, base_ranges, reference, "reference")
            + _containment(naive_module, naive_ranges, naive_run, "naive")
            + _containment(planned_module, planned_ranges, planned_run, "planned")
        )
        report.checks.append(
            TracePrecisionCheck(
                trace_key=key,
                policy=program.policy,
                expect=program.expect,
                naive_plan=naive,
                planned_plan=plan,
                diagnostics=diagnostics,
                planned_diagnostics=planned_diags,
                containment_failures=failures,
                naive_error=output_errors(naive_run, reference, program.policy),
                planned_error=output_errors(planned_run, reference, program.policy),
                f32_peak_bytes=_certified_peak(module, key),
                planned_peak_bytes=_certified_peak(planned_module, key),
            )
        )
    return report


def analyze_precision_model(name: str) -> PrecisionReport:
    return analyze_precision_program(get_program(name))


def analyze_all_precision_models() -> list[PrecisionReport]:
    return [analyze_precision_program(p) for p in CORPUS]
