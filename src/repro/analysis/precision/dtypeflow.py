"""Dtype-flow checking: locate precision hazards in a (narrowed) module.

Given a module and its range analysis, :func:`check_dtype_flow` flags,
with one located :class:`~repro.errors.Diagnostic` per origin:

* **overflow-to-inf** — a compute op whose exact-math image exceeds its
  element type's finite range (fix-it: keep the op in f32);
* **unsafe cast** — a ``convert`` whose incoming certified range does not
  fit the destination dtype (fix-it: keep the value wide);
* **underflow-to-zero** — an op whose entire non-zero magnitude range
  lies below the dtype's smallest normal (fix-it: loss scaling, with a
  computed scale);
* **needs-f32-accum** — a sum/mean reduction folding enough elements in
  a narrow accumulator that increments round away entirely (fix-it:
  ``accum="f32"``).

Hazards downstream of a poisoned interval (an already-reported overflow
origin) are suppressed: one root cause, one diagnostic.
"""

from __future__ import annotations

import math

from repro.errors import Diagnostic, SourceLocation
from repro.hlo.dtypes import FINFO, finfo
from repro.hlo.ir import NARROW_DTYPES, HloModule
from repro.analysis.precision.ranges import RangeInfo, reduced_element_count

#: Diagnostic message prefix -> corpus verdict label.
VERDICT_PREFIXES = (
    ("overflow-to-inf", "overflow"),
    ("unsafe cast", "unsafe-cast"),
    ("underflow-to-zero", "underflow"),
    ("needs-f32-accum", "accum-drift"),
)


def check_dtype_flow(
    module: HloModule,
    ranges: RangeInfo,
    location: SourceLocation = SourceLocation(),
) -> list[Diagnostic]:
    """All precision hazards of ``module`` under its computed ranges."""
    diags: list[Diagnostic] = []
    for inst in module.schedule():
        dt = inst.shape.dtype
        if dt not in FINFO:
            continue  # pred/tuple values carry no float hazard
        if inst.id in ranges.poisoned_inputs:
            continue  # downstream of a reported origin
        exact = ranges.exact.get(inst.id)
        if exact is None:
            continue
        info = finfo(dt)

        if inst.opcode == "convert":
            src = inst.operands[0].shape.dtype
            if exact.poisoned or exact.max_abs > info.max:
                if _narrower(dt, src):
                    diags.append(
                        Diagnostic(
                            "error",
                            f"unsafe cast: %{inst.name} narrows "
                            f"{src}->{dt} but its certified range "
                            f"{exact} exceeds {dt}'s finite range "
                            f"(max {info.max:.5g}); fix-it: keep this "
                            f"value in {src} (drop the convert) or "
                            f"rescale it below {dt}'s max first",
                            location,
                        )
                    )
                    continue
        elif inst.opcode not in ("parameter", "constant"):
            if exact.poisoned or exact.max_abs > info.max:
                diags.append(
                    Diagnostic(
                        "error",
                        f"overflow-to-inf: %{inst.name} ({inst.opcode}) "
                        f"computed in {dt} has exact range {exact} "
                        f"exceeding {dt}'s finite range (max "
                        f"{info.max:.5g}) — the narrowed value saturates "
                        f"to inf; fix-it: insert convert-to-f32 before "
                        f"%{inst.name} and compute it wide",
                        location,
                    )
                )
                continue

        if (
            not exact.poisoned
            # The whole interval is nonzero yet below the normal range:
            # every value the op can produce flushes (or goes subnormal).
            # Requiring ``min_abs > 0`` keeps zero-initialized values —
            # whose certified intervals are a few widened ULPs around an
            # exact 0 — from being mistaken for vanishing gradients.
            and exact.min_abs > 0.0
            and exact.max_abs < info.smallest_normal
            and inst.opcode not in ("constant", "parameter")
        ):
            scale_exp = _loss_scale_exponent(info.smallest_normal, exact.max_abs)
            diags.append(
                Diagnostic(
                    "error",
                    f"underflow-to-zero: %{inst.name} ({inst.opcode}) in "
                    f"{dt} has certified magnitude at most "
                    f"{exact.max_abs:.5g}, below {dt}'s smallest normal "
                    f"{info.smallest_normal:.5g} — values flush to zero "
                    f"or lose all precision; fix-it: apply loss scaling "
                    f"(scale upstream by 2**{scale_exp}, unscale after "
                    f"the narrow region)",
                    location,
                )
            )
            continue

        if inst.opcode == "reduce" and _needs_f32_accum(inst):
            n = reduced_element_count(inst)
            eps = info.eps
            diags.append(
                Diagnostic(
                    "error",
                    f"needs-f32-accum: %{inst.name} folds {n} elements "
                    f"in a {dt} accumulator; beyond 1/eps = "
                    f"{int(1 / eps)} elements the running sum's ULP "
                    f"exceeds the increments and additions round away "
                    f"entirely (drift bound "
                    f"{100 * math.expm1(0.5 * n * eps):.0f}% of the "
                    f"sum); fix-it: set accum=\"f32\" on the reduction "
                    f"(AMP: narrow inputs, wide accumulator)",
                    location,
                )
            )
    return diags


def _needs_f32_accum(inst) -> bool:
    dt = inst.shape.dtype
    if dt not in NARROW_DTYPES:
        return False
    if inst.attrs.get("accum") == "f32":
        return False
    if inst.attrs.get("kind") not in ("sum", "mean"):
        return False
    return reduced_element_count(inst) >= int(1 / finfo(dt).eps)


def _narrower(dst: str, src: str) -> bool:
    order = {"f16": 0, "bf16": 1, "f32": 2, "f64": 3}
    return order.get(dst, 2) < order.get(src, 2)


def _loss_scale_exponent(smallest_normal: float, max_abs: float) -> int:
    """A power-of-two scale lifting ``max_abs`` well into the normal
    range (4 extra doublings of headroom above the smallest normal)."""
    return int(math.ceil(math.log2(smallest_normal / max_abs))) + 4


def verdict_of(diag: Diagnostic) -> str | None:
    for prefix, label in VERDICT_PREFIXES:
        if diag.message.startswith(prefix):
            return label
    return None
