"""Interval range propagation over HLO module schedules.

:func:`analyze_ranges` walks a module's schedule once, computing for every
instruction:

* an **exact** interval — the image of the op's real-valued math over its
  operands' certified intervals (what the value would be with infinite
  precision); and
* a **certified** interval — the exact interval *rounded into* the
  instruction's element type (one-ULP outward widening, saturation to
  ``inf`` beyond the dtype's finite range) plus, for reductions with a
  narrow accumulator, the accumulated-rounding error bound.

The certified interval is the analysis' promise: every value the narrowed
executable can produce for that instruction lies inside it (the dynamic
oracle enforces exactly this, per instruction, per trace).  The dtype-flow
checker reads the *exact* intervals to attribute hazards to their origin:
an ``exp`` whose exact image exceeds f16's 65504 is an overflow at the
``exp``, while everything downstream of the resulting ``inf`` is poisoned
and reported nowhere else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hlo.dtypes import FINFO, finfo
from repro.hlo.ir import (
    NARROW_DTYPES,
    PRED,
    HloComputation,
    HloInstruction,
    HloModule,
)
from repro.analysis.precision.intervals import Interval

import numpy as np

#: Interval of a predicate value.
_PRED_INTERVAL = Interval(0.0, 1.0)


@dataclass
class RangeInfo:
    """Per-instruction interval facts for one module."""

    module_name: str
    #: inst id -> certified interval (covers the narrowed execution).
    intervals: dict[int, Interval] = field(default_factory=dict)
    #: inst id -> exact-math interval (pre-rounding; hazard attribution).
    exact: dict[int, Interval] = field(default_factory=dict)
    #: reduce inst id -> number of elements its accumulator folds.
    reduce_elements: dict[int, int] = field(default_factory=dict)
    #: inst ids whose *operands* were already poisoned (downstream of an
    #: overflow origin; the checker skips these).
    poisoned_inputs: set[int] = field(default_factory=set)

    def certified(self, inst: HloInstruction) -> Interval:
        return self.intervals.get(inst.id, Interval.top())


def analyze_ranges(
    module: HloModule, param_intervals: dict[int, Interval]
) -> RangeInfo:
    """Propagate intervals over ``module``'s schedule.

    ``param_intervals`` maps parameter numbers to the intervals of the
    arguments the module will be run with (the report derives them from
    the captured trace's real source data).  Missing parameters are TOP.
    """
    info = RangeInfo(module_name=module.name)
    _analyze_computation(module.entry, param_intervals, info)
    return info


def _analyze_computation(
    comp: HloComputation,
    param_intervals: dict[int, Interval],
    info: RangeInfo,
) -> None:
    for inst in comp.post_order():
        if inst.opcode == "fusion":
            inner_params = {
                i: info.certified(op) for i, op in enumerate(inst.operands)
            }
            _analyze_computation(inst.fused_computation, inner_params, info)
            root = inst.fused_computation.root
            exact = info.exact.get(root.id, Interval.top())
            certified = info.intervals.get(root.id, Interval.top())
        else:
            exact = _transfer(inst, param_intervals, info)
            certified = _certify(inst, exact, info)
        if any(info.certified(op).poisoned for op in inst.operands):
            info.poisoned_inputs.add(inst.id)
        info.exact[inst.id] = exact
        info.intervals[inst.id] = certified


def _certify(
    inst: HloInstruction, exact: Interval, info: RangeInfo
) -> Interval:
    """Round the exact interval into the instruction's element type."""
    dt = inst.shape.dtype
    if dt == PRED or dt == "tuple":
        return exact
    if dt not in FINFO:
        return Interval.top()
    certified = exact
    if inst.opcode == "reduce" and _narrow_accumulator(inst):
        n = info.reduce_elements.get(inst.id, 1)
        delta = accumulation_relative_bound(dt, n)
        operand = info.certified(inst.operands[0])
        if not exact.poisoned and (operand.lo >= 0.0 or operand.hi <= 0.0):
            # Same-sign summands: no cancellation, so the accumulated
            # rounding error is *relative* to the (sign-preserving) sum —
            # crucially, a positive sum stays certified positive, which
            # keeps downstream normalizer divisions away from zero.
            certified = Interval.make(
                exact.lo - delta * abs(exact.lo),
                exact.hi + delta * abs(exact.hi),
            )
        else:
            # Mixed signs cancel: the error is relative to the sum of
            # magnitudes, which ``exact.max_abs`` (n x element max) bounds.
            certified = certified.widen_absolute(
                accumulation_error_bound(dt, n, exact.max_abs)
            )
    return certified.round_into(dt)


def _narrow_accumulator(inst: HloInstruction) -> bool:
    return (
        inst.shape.dtype in NARROW_DTYPES
        and inst.attrs.get("accum") != "f32"
        and inst.attrs.get("kind") in ("sum", "mean")
    )


def accumulation_relative_bound(dtype: str, n: int) -> float:
    """Relative error factor of an ``n``-term serial sum accumulated in
    ``dtype``: the standard ``(1 + eps/2)^n - 1``, kept finite with
    ``expm1``."""
    return math.expm1(0.5 * n * finfo(dtype).eps)


def accumulation_error_bound(dtype: str, n: int, max_abs: float) -> float:
    """Absolute error bound of an ``n``-term serial sum accumulated in
    ``dtype`` whose exact result magnitude is at most ``max_abs``.

    Each of the ``n`` additions rounds once, by at most half an ULP of
    the running partial, compounding to the standard
    ``(1 + eps/2)^n - 1`` factor over the sum of magnitudes (which the
    caller's ``max_abs`` — the scaled sum interval's bound — dominates).
    Kept finite with ``expm1``.  Loose by design: the looseness *is* the
    static case for ``accum="f32"``.
    """
    if not math.isfinite(max_abs):
        return math.inf
    return accumulation_relative_bound(dtype, n) * max_abs


def reduced_element_count(inst: HloInstruction) -> int:
    operand = inst.operands[0]
    axes = inst.attrs.get("axes")
    dims = operand.shape.dims
    if axes is None:
        axes = tuple(range(len(dims)))
    n = 1
    for a in axes:
        n *= dims[a % len(dims)] if dims else 1
    return max(n, 1)


# ---------------------------------------------------------------------------
# Transfer functions (exact math over operand certified intervals).
# ---------------------------------------------------------------------------


def _transfer(
    inst: HloInstruction,
    param_intervals: dict[int, Interval],
    info: RangeInfo,
) -> Interval:
    op = inst.opcode
    ivs = [info.certified(o) for o in inst.operands]

    if op == "parameter":
        return param_intervals.get(inst.parameter_number, Interval.top())
    if op == "constant":
        return Interval.of_array(np.asarray(inst.literal, dtype=np.float64))
    if op == "convert":
        return ivs[0]

    if op == "add":
        return ivs[0].add(ivs[1])
    if op == "subtract":
        return ivs[0].sub(ivs[1])
    if op == "multiply":
        return ivs[0].mul(ivs[1])
    if op == "divide":
        return ivs[0].div(ivs[1])
    if op == "power":
        return _power_interval(ivs[0], ivs[1])
    if op == "maximum":
        return ivs[0].maximum(ivs[1])
    if op == "minimum":
        return ivs[0].minimum(ivs[1])
    if op == "compare" or op == "not":
        return _PRED_INTERVAL
    if op == "select":
        return Interval.hull(ivs[1], ivs[2])

    if op == "negate":
        return ivs[0].neg()
    if op == "abs":
        return ivs[0].abs()
    if op == "sign":
        return Interval(-1.0, 1.0)
    if op == "relu":
        return ivs[0].maximum(Interval.point(0.0))
    if op == "exponential":
        return ivs[0].monotone(math.exp)
    if op == "tanh":
        return ivs[0].monotone(math.tanh)
    if op == "logistic":
        return ivs[0].monotone(lambda x: 1.0 / (1.0 + math.exp(-x)))
    if op == "log":
        if ivs[0].poisoned or ivs[0].lo <= 0.0:
            return Interval.top()
        return ivs[0].monotone(math.log)
    if op == "sqrt":
        if ivs[0].poisoned or ivs[0].lo < 0.0:
            return Interval.top()
        return ivs[0].monotone(math.sqrt)
    if op == "rsqrt":
        if ivs[0].poisoned or ivs[0].lo <= 0.0:
            return Interval.top()
        return Interval.make(
            1.0 / math.sqrt(ivs[0].hi), 1.0 / math.sqrt(ivs[0].lo)
        )

    if op in ("broadcast", "reshape", "transpose", "slice", "avg_pool"):
        return ivs[0]
    if op == "max_pool":
        return ivs[0]
    if op == "pad":
        return Interval.hull(ivs[0], Interval.point(0.0))
    if op == "concatenate":
        return Interval.hull(*ivs)

    if op == "dot":
        k = inst.operands[0].shape.dims[-1] if inst.operands[0].shape.dims else 1
        return _sum_of_products(ivs[0], ivs[1], k)
    if op == "convolution":
        kh, kw, cin, _ = inst.operands[1].shape.dims
        return _sum_of_products(ivs[0], ivs[1], kh * kw * cin)
    if op == "conv_grad_input":
        kh, kw, _, cout = inst.operands[1].shape.dims
        return _sum_of_products(ivs[0], ivs[1], kh * kw * cout)
    if op == "conv_grad_filter":
        n, oh, ow, _ = inst.operands[1].shape.dims
        return _sum_of_products(ivs[0], ivs[1], n * oh * ow)

    if op == "reduce":
        n = reduced_element_count(inst)
        info.reduce_elements[inst.id] = n
        kind = inst.attrs.get("kind")
        if kind == "sum":
            # Sum of n elements, each in the operand interval.
            return ivs[0].scale(n)
        return ivs[0]  # mean and max stay within the operand's hull

    if op == "avg_pool_grad":
        pool = inst.attrs["pool"]
        stride = inst.attrs["stride"]
        windows = math.ceil(pool / max(stride, 1)) ** 2
        return Interval.hull(
            ivs[0].scale(windows / (pool * pool)), Interval.point(0.0)
        )
    if op == "max_pool_grad":
        pool = inst.attrs["pool"]
        stride = inst.attrs["stride"]
        windows = math.ceil(pool / max(stride, 1)) ** 2
        return Interval.hull(ivs[1].scale(windows), Interval.point(0.0))

    if op == "iota":
        return Interval.make(0.0, float(inst.attrs["n"] - 1))
    if op == "one_hot":
        return Interval(0.0, 1.0)
    if op == "softmax_ce":
        logits = ivs[0]
        if logits.poisoned:
            return Interval.top()
        classes = inst.operands[0].shape.dims[-1]
        return Interval.make(
            0.0, (logits.hi - logits.lo) + math.log(max(classes, 1))
        )
    if op == "softmax_ce_grad":
        if ivs[0].poisoned:
            return Interval.top()
        return Interval(-1.0, 1.0)  # (softmax - onehot)/batch ⊆ [-1, 1]
    if op == "tuple":
        return Interval.hull(*ivs) if ivs else Interval.point(0.0)

    return Interval.top()  # unknown op: soundly unbounded


def _sum_of_products(a: Interval, b: Interval, k: int) -> Interval:
    """Interval of a k-term contraction (dot/conv): k products summed."""
    return a.mul(b).scale(max(k, 1))


def _power_interval(base: Interval, exponent: Interval) -> Interval:
    if base.poisoned or exponent.poisoned:
        return Interval.top()
    if base.lo >= 0.0:
        with np.errstate(all="ignore"):
            candidates = [
                float(np.float64(a) ** np.float64(b))
                for a in (base.lo, base.hi)
                for b in (exponent.lo, exponent.hi)
            ]
        if any(math.isnan(c) for c in candidates):
            return Interval.top()
        # x^y over a box is monotone in each variable for the other held
        # fixed (x > 0), so the corner candidates bound the image.
        return Interval.make(min(candidates), max(candidates))
    # Negative bases with a point integer exponent are still sound.
    if exponent.lo == exponent.hi and float(exponent.lo).is_integer():
        n = int(exponent.lo)
        candidates = [base.lo**n, base.hi**n]
        if base.contains(0.0):
            candidates.append(0.0)
        return Interval.make(min(candidates), max(candidates))
    return Interval.top()
