"""A sound interval domain for value-range certification.

Endpoints are f64.  Soundness conventions:

* every transfer function widens its result outward by a few f64 ULPs
  (:func:`_widen`), so f64 rounding inside the analysis itself can never
  produce a certificate tighter than the math;
* an interval that may contain non-finite values (``inf``/NaN) is
  *poisoned*: it becomes TOP ``[-inf, +inf]`` and :meth:`Interval.contains`
  accepts anything, including NaN — poison propagates through every
  operation, so a single overflow taints (and is reported at) its origin
  only, while downstream values stay soundly covered;
* :meth:`Interval.round_into` models executing a value in a narrow dtype:
  endpoints widen by one ULP of that dtype and saturate to ``inf`` beyond
  its finite range — the bridge between exact-math ranges and what a
  narrowed executable can actually produce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hlo.dtypes import finfo, ulp

_INF = math.inf


def _widen(lo: float, hi: float) -> tuple[float, float]:
    """Outward-round endpoints by 4 f64 ULPs (absorbs f64 transfer error)."""
    if math.isfinite(lo):
        for _ in range(4):
            lo = float(np.nextafter(lo, -_INF))
    if math.isfinite(hi):
        for _ in range(4):
            hi = float(np.nextafter(hi, _INF))
    return lo, hi


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]``; ``poisoned`` admits NaN as well."""

    lo: float
    hi: float
    poisoned: bool = False

    def __post_init__(self):
        if self.poisoned:
            object.__setattr__(self, "lo", -_INF)
            object.__setattr__(self, "hi", _INF)
        elif math.isnan(self.lo) or math.isnan(self.hi):
            object.__setattr__(self, "lo", -_INF)
            object.__setattr__(self, "hi", _INF)
            object.__setattr__(self, "poisoned", True)

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def top() -> "Interval":
        return Interval(-_INF, _INF, poisoned=True)

    @staticmethod
    def point(x: float) -> "Interval":
        return Interval.make(x, x)

    @staticmethod
    def make(lo: float, hi: float) -> "Interval":
        """Widened (sound) interval from possibly-unordered f64 endpoints."""
        if math.isnan(lo) or math.isnan(hi):
            return Interval.top()
        if lo > hi:
            lo, hi = hi, lo
        lo, hi = _widen(lo, hi)
        return Interval(lo, hi)

    @staticmethod
    def of_array(array: np.ndarray) -> "Interval":
        a = np.asarray(array, dtype=np.float64)
        if a.size == 0:
            return Interval.point(0.0)
        if not np.isfinite(a).all():
            return Interval.top()
        return Interval.make(float(a.min()), float(a.max()))

    @staticmethod
    def hull(*intervals: "Interval") -> "Interval":
        if any(i.poisoned for i in intervals):
            return Interval.top()
        return Interval(
            min(i.lo for i in intervals), max(i.hi for i in intervals)
        )

    # -- queries --------------------------------------------------------------

    @property
    def finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    @property
    def max_abs(self) -> float:
        return max(abs(self.lo), abs(self.hi))

    @property
    def min_abs(self) -> float:
        """Smallest magnitude any value in the interval can have."""
        if self.lo <= 0.0 <= self.hi:
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def contains(self, value: float) -> bool:
        if self.poisoned:
            return True
        if math.isnan(value):
            return False
        return self.lo <= value <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        if self.poisoned:
            return True
        if other.poisoned:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def __str__(self) -> str:
        if self.poisoned:
            return "[poisoned]"
        return f"[{self.lo:.6g}, {self.hi:.6g}]"

    # -- arithmetic transfer functions ---------------------------------------

    def _binop(self, other: "Interval", fn) -> "Interval":
        if self.poisoned or other.poisoned:
            return Interval.top()
        candidates = [
            fn(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        if any(math.isnan(c) for c in candidates):
            return Interval.top()
        return Interval.make(min(candidates), max(candidates))

    def add(self, other: "Interval") -> "Interval":
        return self._binop(other, lambda a, b: a + b)

    def sub(self, other: "Interval") -> "Interval":
        return self._binop(other, lambda a, b: a - b)

    def mul(self, other: "Interval") -> "Interval":
        def prod(a, b):
            # 0 * inf is NaN in IEEE; in exact math over a closed interval
            # the contribution of a zero endpoint is zero.
            if a == 0.0 or b == 0.0:
                return 0.0
            return a * b

        return self._binop(other, prod)

    def div(self, other: "Interval") -> "Interval":
        if self.poisoned or other.poisoned:
            return Interval.top()
        if other.lo <= 0.0 <= other.hi:
            # Divisor interval contains zero: unbounded (and possibly NaN).
            return Interval.top()
        return self._binop(other, lambda a, b: a / b)

    def neg(self) -> "Interval":
        if self.poisoned:
            return Interval.top()
        return Interval(-self.hi, -self.lo)

    def abs(self) -> "Interval":
        if self.poisoned:
            return Interval.top()
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        return Interval(0.0, self.max_abs)

    def maximum(self, other: "Interval") -> "Interval":
        return self._binop(other, max)

    def minimum(self, other: "Interval") -> "Interval":
        return self._binop(other, min)

    def monotone(self, fn) -> "Interval":
        """Apply a monotone (non-decreasing) scalar function elementwise."""
        if self.poisoned:
            return Interval.top()
        with np.errstate(all="ignore"):
            lo = float(fn(self.lo))
            hi = float(fn(self.hi))
        if math.isnan(lo) or math.isnan(hi):
            return Interval.top()
        return Interval.make(lo, hi)

    def scale(self, k: float) -> "Interval":
        """Multiply by a scalar (contraction sizes etc.)."""
        return self.mul(Interval.make(k, k))

    def widen_absolute(self, err: float) -> "Interval":
        """Grow both endpoints outward by an absolute error bound."""
        if self.poisoned:
            return Interval.top()
        if not math.isfinite(err):
            return Interval.top()
        return Interval.make(self.lo - err, self.hi + err)

    # -- dtype rounding --------------------------------------------------------

    def round_into(self, dtype: str) -> "Interval":
        """The interval of this value *as computed in* ``dtype``.

        Endpoints widen by one ULP of the dtype (each op rounds once) and
        saturate to ``±inf`` where they exceed the dtype's finite range —
        the certified interval of a narrowed instruction, guaranteed to
        cover every value its rounded execution can produce.
        """
        if self.poisoned:
            return Interval.top()
        info = finfo(dtype)
        lo = self.lo - ulp(dtype, self.lo)
        hi = self.hi + ulp(dtype, self.hi)
        if hi > info.max:
            hi = _INF
        if lo < -info.max:
            lo = -_INF
        return Interval(lo, hi)
