"""The seeded precision corpus: step programs with known safety verdicts.

Mirrors the other analysis corpora (:mod:`repro.analysis.tracing.models`,
:mod:`repro.analysis.memory.models`): a clean suite that must certify
with **zero** diagnostics even under the naive narrow-everything policy
(the zero-false-positive bar), plus seeded numerical hazards — each a
bug pattern a blind "cast the model to half" conversion really hits:

* ``overflow`` — ``exp`` of moderately large logits, and the classic
  unstabilized softmax: exact values exceed f16's 65504 and saturate
  to ``inf`` at run time;
* ``accum-drift`` — summing thousands of same-sign f16 values in an
  f16 accumulator: once the partial sum passes ``1/eps`` times the
  element magnitude, additions round away and the sum flatlines;
* ``underflow`` — gradient-sized products (the reason loss scaling
  exists): exact values below f16's smallest normal flush to zero;
* ``unsafe-cast`` — a value legitimately f32-sized narrowed through a
  ``convert``: the cast itself is the hazard.

Each program builds its own device; ``build`` returns
``(device, step_fn)``.  ``policy`` is the narrow dtype the program is
audited against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.tensor import LazyTensorBarrier, Tensor, lazy_device


@dataclass(frozen=True)
class PrecisionProgram:
    """One corpus entry: a step program plus its expected precision verdict."""

    name: str
    description: str
    #: "clean" | "overflow" | "underflow" | "accum-drift" | "unsafe-cast"
    expect: str
    #: The narrow dtype the program is audited against ("f16" | "bf16").
    policy: str
    steps: int
    build: Callable[[], tuple]


# ---------------------------------------------------------------------------
# Clean corpus: safe even when *everything* is narrowed.
# ---------------------------------------------------------------------------


def _build_mlp_forward_f16():
    """Two small dot/relu layers with O(1) activations: every interval
    stays far inside f16's range, so both policies certify clean."""
    device = lazy_device()
    rng = np.random.default_rng(10)
    x = Tensor(rng.uniform(-1.0, 1.0, (8, 16)).astype(np.float32), device)
    w1 = Tensor(rng.uniform(-0.2, 0.2, (16, 16)).astype(np.float32), device)
    w2 = Tensor(rng.uniform(-0.2, 0.2, (16, 8)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        y = ((x @ w1).relu() @ w2).relu()  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_scale_shift_f16():
    """Elementwise affine ``x * a + b``: the trivially-safe base case."""
    device = lazy_device()
    rng = np.random.default_rng(11)
    x = Tensor(rng.uniform(-4.0, 4.0, (32, 32)).astype(np.float32), device)
    a = Tensor(rng.uniform(0.5, 1.5, (32, 32)).astype(np.float32), device)
    b = Tensor(rng.uniform(-1.0, 1.0, (32, 32)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        y = x * a + b  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_softmax_stable():
    """Max-subtracted softmax over small logits: the stabilization keeps
    ``exp`` in (0, 1] and the normalizer's interval away from zero, so
    even naive f16 certifies clean — the mirror of the unstabilized
    hazard below."""
    device = lazy_device()
    rng = np.random.default_rng(12)
    z = Tensor(rng.uniform(-2.0, 2.0, (8, 10)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        shifted = z - z.max(axes=(1,), keepdims=True)
        e = shifted.exp()
        p = e / e.sum(axes=(1,), keepdims=True)  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_affine_tanh_bf16():
    """dot + bias + tanh under bf16: the f32-exponent-range dtype — wide
    dynamic range, coarse mantissa — certifies clean on O(1) values."""
    device = lazy_device()
    rng = np.random.default_rng(13)
    x = Tensor(rng.uniform(-1.0, 1.0, (8, 12)).astype(np.float32), device)
    w = Tensor(rng.uniform(-0.3, 0.3, (12, 6)).astype(np.float32), device)
    b = Tensor(rng.uniform(-0.1, 0.1, (6,)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        y = ((x @ w) + b).tanh()  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_sgd_update_bf16():
    """The fused parameter update ``w - lr * g`` at bf16: the update
    survives narrowing because bf16 keeps f32's exponent range."""
    device = lazy_device()
    rng = np.random.default_rng(14)
    state = {"w": Tensor(rng.uniform(-1.0, 1.0, (64,)).astype(np.float32), device)}
    g = Tensor(rng.uniform(-0.5, 0.5, (64,)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        state["w"] = state["w"] - g * 0.1
        LazyTensorBarrier(device)

    return device, step_fn


def _build_lenet_forward_bf16():
    """The Table 2/3 workload trace — a full LeNet forward — audited at
    bf16, the dtype such models actually train in: contraction intervals
    reach ~1e6 (far past f16's 65504, which is why the f16 audit of deep
    stacks wants the planner, not the naive policy) yet sit comfortably
    inside bf16's range."""
    from repro.nn import LeNet

    device = lazy_device()
    model = LeNet.create(device, seed=0)
    rng = np.random.default_rng(15)
    xv = rng.standard_normal((2, 28, 28, 1)).astype(np.float32)

    def step_fn(step: int) -> None:
        logits = model(Tensor(xv, device))  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_activation_halving_f16():
    """A 256x256 intermediate dwarfing its 256-element inputs: the
    program whose *memory* certificate moves — narrowing the activation
    halves the planner's certified peak even though the f32 parameters
    (and their one-off narrow copies) stay resident."""
    device = lazy_device()
    rng = np.random.default_rng(16)
    col = Tensor(rng.uniform(0.5, 1.0, (256, 1)).astype(np.float32), device)
    row = Tensor(rng.uniform(0.5, 1.0, (1, 256)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        # One expression: the 256x256 product must stay an *intermediate*
        # (a materialized local would pin it as an f32 output).
        r = (col @ row).max()  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


# ---------------------------------------------------------------------------
# Seeded hazards.
# ---------------------------------------------------------------------------


def _build_exp_overflow_f16():
    """``exp`` of logits reaching 12: e^12 ≈ 162754 > 65504, so the naive
    f16 lowering saturates to inf.  The planner keeps ``exp`` in f32."""
    device = lazy_device()
    rng = np.random.default_rng(20)
    xv = rng.uniform(-1.0, 12.0, (8, 8)).astype(np.float32)
    # Pin the interval's top so the hazard is in the data, not just the
    # distribution's tail.
    xv[0, 0] = 12.0
    x = Tensor(xv, device)

    def step_fn(step: int) -> None:
        y = x.exp()  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_softmax_unstabilized():
    """Softmax *without* max subtraction over logits up to 12: the
    textbook mixed-precision bug — exp overflows f16 and the normalizer
    turns inf/inf into NaN."""
    device = lazy_device()
    rng = np.random.default_rng(21)
    zv = rng.uniform(0.0, 12.0, (8, 10)).astype(np.float32)
    zv[:, 0] = 12.0
    z = Tensor(zv, device)

    def step_fn(step: int) -> None:
        e = z.exp()
        p = e / e.sum(axes=(1,), keepdims=True)  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_large_sum_drift_f16():
    """8192 same-sign values summed in an f16 accumulator: past ~2048 the
    running sum's ULP exceeds the elements and the sum flatlines near
    half its true value.  The fix-it (and the plan) is ``accum="f32"``."""
    device = lazy_device()
    rng = np.random.default_rng(22)
    x = Tensor(rng.uniform(0.8, 1.2, (8192,)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        total = x.sum()  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_grad_underflow_no_scale():
    """Gradient-sized products: activations ~1e-3 times upstream
    gradients ~1e-5 give ~1e-8 — below f16's smallest subnormal, so the
    naive lowering flushes the whole gradient to zero.  The reason loss
    scaling exists; the fix-it computes the needed power-of-two scale."""
    device = lazy_device()
    rng = np.random.default_rng(23)
    a = Tensor(rng.uniform(1e-3, 2e-3, (16, 16)).astype(np.float32), device)
    g = Tensor(rng.uniform(1e-5, 2e-5, (16, 16)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        dw = a * g  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


def _build_wide_range_unsafe_cast():
    """A value that is legitimately f32-sized (counts scaled to ~1e6)
    halved and narrowed: the ``convert`` the naive policy inserts at the
    f32 parameter boundary is itself the hazard — its incoming range
    cannot fit f16."""
    device = lazy_device()
    rng = np.random.default_rng(24)
    counts = Tensor(rng.uniform(1e5, 1e6, (8, 8)).astype(np.float32), device)

    def step_fn(step: int) -> None:
        scaled = counts * 0.5  # noqa: F841
        LazyTensorBarrier(device)

    return device, step_fn


CORPUS: tuple[PrecisionProgram, ...] = (
    PrecisionProgram(
        name="mlp_forward_f16",
        description="two small dot/relu layers; O(1) activations",
        expect="clean",
        policy="f16",
        steps=2,
        build=_build_mlp_forward_f16,
    ),
    PrecisionProgram(
        name="scale_shift_f16",
        description="elementwise x*a + b; trivially range-safe",
        expect="clean",
        policy="f16",
        steps=2,
        build=_build_scale_shift_f16,
    ),
    PrecisionProgram(
        name="softmax_stable",
        description="max-subtracted softmax; stabilization keeps exp <= 1",
        expect="clean",
        policy="f16",
        steps=2,
        build=_build_softmax_stable,
    ),
    PrecisionProgram(
        name="affine_tanh_bf16",
        description="dot + bias + tanh at bf16",
        expect="clean",
        policy="bf16",
        steps=2,
        build=_build_affine_tanh_bf16,
    ),
    PrecisionProgram(
        name="sgd_update_bf16",
        description="fused w - lr*g update at bf16",
        expect="clean",
        policy="bf16",
        steps=2,
        build=_build_sgd_update_bf16,
    ),
    PrecisionProgram(
        name="lenet_forward_bf16",
        description="full LeNet forward audited at bf16",
        expect="clean",
        policy="bf16",
        steps=1,
        build=_build_lenet_forward_bf16,
    ),
    PrecisionProgram(
        name="activation_halving_f16",
        description="256x256 intermediate; narrowing halves the peak",
        expect="clean",
        policy="f16",
        steps=1,
        build=_build_activation_halving_f16,
    ),
    PrecisionProgram(
        name="exp_overflow_f16",
        description="exp of logits up to 12; e^12 > f16 max",
        expect="overflow",
        policy="f16",
        steps=1,
        build=_build_exp_overflow_f16,
    ),
    PrecisionProgram(
        name="softmax_unstabilized",
        description="softmax without max subtraction; inf/inf -> NaN",
        expect="overflow",
        policy="f16",
        steps=1,
        build=_build_softmax_unstabilized,
    ),
    PrecisionProgram(
        name="large_sum_drift_f16",
        description="8192-element f16-accumulated sum flatlines",
        expect="accum-drift",
        policy="f16",
        steps=1,
        build=_build_large_sum_drift_f16,
    ),
    PrecisionProgram(
        name="grad_underflow_no_scale",
        description="1e-8-sized gradients flush to zero without loss scaling",
        expect="underflow",
        policy="f16",
        steps=1,
        build=_build_grad_underflow_no_scale,
    ),
    PrecisionProgram(
        name="wide_range_unsafe_cast",
        description="~1e6-sized value narrowed through a convert",
        expect="unsafe-cast",
        policy="f16",
        steps=1,
        build=_build_wide_range_unsafe_cast,
    ),
)


def get_program(name: str) -> PrecisionProgram:
    for program in CORPUS:
        if program.name == name:
            return program
    known = ", ".join(p.name for p in CORPUS)
    raise KeyError(f"unknown precision program {name!r} (known: {known})")
