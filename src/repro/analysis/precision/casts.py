"""The autocast planner: a verified per-op precision assignment.

Two policies produce a :class:`PrecisionAssignment` for an (unfused,
f32) module:

* :func:`naive_assignment` narrows *every* float compute op to the
  target dtype, narrow accumulators included.  This is the policy the
  hazard corpus is checked under — it surfaces every precision bug a
  blind "cast the whole model down" conversion would hit, and clean
  programs must still verify clean under it (the zero-false-positive
  bar).
* :func:`plan_casts` follows the AMP discipline: range-tolerant ops
  (matmul, conv, add, relu, ...) go narrow, transcendentals and division
  stay f32 (:data:`WIDE_OPS`), sum/mean reductions keep narrow storage
  but accumulate in f32, and any op whose exact interval escapes the
  narrow dtype's range is reverted to f32 with a recorded reason.

:func:`apply_plan` rewrites the module accordingly — cloning the DAG,
re-dtyping assigned ops, inserting explicit ``convert`` instructions at
every dtype boundary (parameters and constants stay f32; the root
converts back to its original dtype) — and runs the verifier before
returning.  The report then re-analyzes the planned module and requires
it to check clean: the plan is not a suggestion, it is a certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HloError
from repro.hlo.dtypes import finfo
from repro.hlo.ir import (
    F32,
    NARROW_DTYPES,
    PRED,
    HloComputation,
    HloInstruction,
    HloModule,
)
from repro.analysis.precision.ranges import RangeInfo

#: Ops kept in f32 by :func:`plan_casts`: transcendentals whose output
#: (or whose useful input resolution) exceeds narrow range, division,
#: and the fused loss kernels (internally exponential).
WIDE_OPS = frozenset(
    {
        "exponential",
        "log",
        "power",
        "logistic",
        "tanh",
        "sqrt",
        "rsqrt",
        "divide",
        "softmax_ce",
        "softmax_ce_grad",
    }
)

#: Ops never re-dtyped by any policy (structure, residents, predicates).
_SKIP_OPS = frozenset(
    {"parameter", "constant", "tuple", "fusion", "convert", "compare", "not"}
)

#: Widening order used when converging mixed operands of a kept-dtype op.
_ORDER = {"f16": 0, "bf16": 1, "f32": 2, "f64": 3}


@dataclass
class PrecisionAssignment:
    """A per-instruction precision decision for one module."""

    module_name: str
    #: The narrow dtype this plan targets ("f16" or "bf16").
    policy: str
    #: inst id -> assigned element type (unlisted ids keep their own).
    compute: dict[int, str] = field(default_factory=dict)
    #: reduce inst ids that accumulate in f32 despite narrow storage.
    accum_f32: set[int] = field(default_factory=set)
    #: inst id -> why the planner kept it wide ("wide-op",
    #: "range-overflow", "range-underflow", "range-unknown").
    reverted: dict[int, str] = field(default_factory=dict)

    def dtype_for(self, inst: HloInstruction) -> str | None:
        return self.compute.get(inst.id)

    @property
    def narrowed_count(self) -> int:
        return sum(1 for d in self.compute.values() if d in NARROW_DTYPES)

    def summary(self) -> str:
        reasons: dict[str, int] = {}
        for why in self.reverted.values():
            reasons[why] = reasons.get(why, 0) + 1
        kept = ", ".join(f"{k}={v}" for k, v in sorted(reasons.items()))
        return (
            f"{self.narrowed_count} ops -> {self.policy}, "
            f"{len(self.accum_f32)} f32 accumulators"
            + (f", kept wide: {kept}" if kept else "")
        )


def naive_assignment(module: HloModule, dtype: str) -> PrecisionAssignment:
    """Narrow every float compute op to ``dtype`` — no safety analysis.

    The straw-man policy a whole-model ``.half()`` conversion implies:
    transcendentals go narrow, reductions accumulate narrow.  Hazard
    programs must be *caught* under it and clean programs must pass.
    """
    _require_narrow(dtype)
    plan = PrecisionAssignment(module_name=module.name, policy=dtype)
    for inst in module.schedule():
        if inst.opcode in _SKIP_OPS or inst.shape.dtype != F32:
            continue
        plan.compute[inst.id] = dtype
    return plan


def plan_casts(
    module: HloModule, dtype: str, ranges: RangeInfo
) -> PrecisionAssignment:
    """The AMP-style plan, validated against the module's value ranges.

    ``ranges`` must come from :func:`~repro.analysis.precision.ranges.
    analyze_ranges` over the *original* (f32) module with the real
    parameter intervals: the planner compares each op's exact-math
    interval against the narrow dtype's representable range and keeps
    anything that escapes it in f32.
    """
    _require_narrow(dtype)
    info = finfo(dtype)
    plan = PrecisionAssignment(module_name=module.name, policy=dtype)
    for inst in module.schedule():
        if inst.opcode in _SKIP_OPS or inst.shape.dtype != F32:
            continue
        if inst.opcode in WIDE_OPS:
            plan.reverted[inst.id] = "wide-op"
            continue
        exact = ranges.exact.get(inst.id)
        if exact is None or exact.poisoned:
            plan.reverted[inst.id] = "range-unknown"
            continue
        if exact.max_abs > info.max:
            plan.reverted[inst.id] = "range-overflow"
            continue
        if exact.min_abs > 0.0 and exact.max_abs < info.smallest_normal:
            plan.reverted[inst.id] = "range-underflow"
            continue
        plan.compute[inst.id] = dtype
        if inst.opcode == "reduce" and inst.attrs.get("kind") in ("sum", "mean"):
            plan.accum_f32.add(inst.id)
    return plan


def apply_plan(module: HloModule, plan: PrecisionAssignment) -> HloModule:
    """Rewrite ``module`` under ``plan`` and verify the result.

    The rewrite clones the DAG: every assigned op is re-dtyped, every
    dtype boundary gets an explicit ``convert`` (the only legal way to
    change element type), parameters and constants keep their original
    storage, and the root converts back to its original dtype so the
    rewritten module is a drop-in replacement for the original.
    Expects an unfused module (plans are made before optimization).
    """
    from repro.hlo.verify import verify_module

    entry = HloComputation(f"{module.entry.name}_{plan.policy}")
    mapping: dict[int, HloInstruction] = {}

    def convert_to(inst: HloInstruction, dt: str) -> HloInstruction:
        if inst.shape.dtype == dt:
            return inst
        return entry.add(
            HloInstruction(
                "convert",
                [inst],
                inst.shape.with_dtype(dt),
                attrs={"new_dtype": dt},
            )
        )

    for inst in module.schedule():
        if inst.opcode == "fusion":
            raise HloError(
                f"apply_plan expects an unfused module; %{inst.name} in "
                f"{module.name!r} is a fusion (plan before optimize())"
            )
        if inst.opcode == "parameter":
            mapping[inst.id] = entry.add(
                HloInstruction(
                    "parameter",
                    [],
                    inst.shape,
                    parameter_number=inst.parameter_number,
                )
            )
            continue
        if inst.opcode == "constant":
            mapping[inst.id] = entry.add(
                HloInstruction("constant", [], inst.shape, literal=inst.literal)
            )
            continue

        target = plan.dtype_for(inst)
        operands = [mapping[op.id] for op in inst.operands]
        if target is None:
            # A kept op keeps its original element type — reverting an op
            # means computing it wide, so its float operands convert *up*
            # to it, never the op down to them.
            new_dtype = inst.shape.dtype
            if new_dtype in _ORDER:
                operands = [
                    convert_to(o, new_dtype) if o.shape.dtype in _ORDER else o
                    for o in operands
                ]
            elif new_dtype == PRED:
                # compare: its float operands only need to agree with
                # each other; converge mixed dtypes to the widest.
                float_dts = [
                    o.shape.dtype for o in operands if o.shape.dtype in _ORDER
                ]
                if len(set(float_dts)) > 1:
                    widest = max(float_dts, key=lambda d: _ORDER[d])
                    operands = [
                        convert_to(o, widest) if o.shape.dtype in _ORDER else o
                        for o in operands
                    ]
        else:
            operands = [
                convert_to(o, target) if o.shape.dtype in _ORDER else o
                for o in operands
            ]
            new_dtype = target

        attrs = dict(inst.attrs)
        if inst.id in plan.accum_f32:
            attrs["accum"] = "f32"
        mapping[inst.id] = entry.add(
            HloInstruction(
                inst.opcode,
                operands,
                inst.shape.with_dtype(new_dtype),
                attrs=attrs,
                literal=inst.literal,
            )
        )

    old_root = module.entry.root
    new_root = mapping[old_root.id]
    if old_root.opcode == "tuple":
        elements = [
            convert_to(mapping[op.id], op.shape.dtype)
            for op in old_root.operands
        ]
        if any(e is not mapping[op.id] for e, op in zip(elements, old_root.operands)):
            new_root = entry.add(
                HloInstruction("tuple", elements, old_root.shape)
            )
    else:
        new_root = convert_to(new_root, old_root.shape.dtype)
    entry.set_root(new_root)

    rewritten = HloModule(f"{module.name}_{plan.policy}", entry)
    verify_module(rewritten)
    return rewritten


def _require_narrow(dtype: str) -> None:
    if dtype not in NARROW_DTYPES:
        raise HloError(
            f"precision policy must be one of {NARROW_DTYPES}, got {dtype!r}"
        )
