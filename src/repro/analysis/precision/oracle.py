"""The dynamic oracle: instrumented runs that the certificates must cover.

Two entry points walk a module's schedule with
:func:`repro.hlo.compiler.evaluate_instruction`, recording per-instruction
observed value statistics:

* :func:`run_reference` — the original (f32) module fed f64 arguments;
  every float result is widened to f64 before use, so the run is the
  exact-math stand-in the output-error metrics compare against;
* :func:`run_observed` — a (possibly narrowed) module executed exactly as
  recorded: f16 ops round to half precision, bf16 ops quantize, narrow
  reductions accumulate serially in their own dtype.

The report then requires, per instruction and per trace, that the static
certified interval contains the observed ``[min, max]`` (NaN observed ⇒
the interval must be poisoned) — the "certified ⊇ observed" contract —
and compares outputs against the reference to confirm each statically
predicted hazard *manifests* (and that clean programs stay accurate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import HloError
from repro.hlo.compiler import evaluate_instruction
from repro.hlo.dtypes import finfo
from repro.hlo.ir import HloModule

#: NumPy float dtypes whose values the oracle records statistics for.
_FLOAT_KINDS = ("f",)


@dataclass(frozen=True)
class ObservedStats:
    """Elementwise min/max (over every element seen) plus NaN presence."""

    lo: float
    hi: float
    has_nan: bool

    @property
    def finite(self) -> bool:
        return (
            not self.has_nan
            and np.isfinite(self.lo)
            and np.isfinite(self.hi)
        )


@dataclass
class OracleRun:
    """One instrumented execution of one module."""

    module_name: str
    #: inst id -> observed stats (float-valued instructions only).
    observed: dict[int, ObservedStats] = field(default_factory=dict)
    #: Root outputs, widened to f64 (tuple roots flatten in order).
    outputs: list[np.ndarray] = field(default_factory=list)

    @property
    def has_nonfinite_output(self) -> bool:
        return any(not np.isfinite(o).all() for o in self.outputs)


def run_observed(module: HloModule, args: Sequence[np.ndarray]) -> OracleRun:
    """Execute ``module`` as recorded (narrow dtypes and all), instrumented."""
    return _walk(module, args, widen=False)


def run_reference(module: HloModule, args: Sequence[np.ndarray]) -> OracleRun:
    """Execute ``module`` at f64: arguments and every float result widen."""
    return _walk(module, [np.asarray(a, np.float64) for a in args], widen=True)


def _walk(module: HloModule, args: Sequence[np.ndarray], widen: bool) -> OracleRun:
    run = OracleRun(module_name=module.name)
    values: dict[int, object] = {}
    for inst in module.schedule():
        if inst.opcode == "parameter":
            result = np.asarray(args[inst.parameter_number])
        elif inst.opcode == "tuple":
            result = tuple(values[o.id] for o in inst.operands)
        elif inst.opcode == "fusion":
            raise HloError(
                f"the precision oracle walks unfused modules; %{inst.name} "
                f"in {module.name!r} is a fusion"
            )
        else:
            in_vals = [values[o.id] for o in inst.operands]
            # Narrowed hazard runs produce inf/NaN *by design* — that is
            # the manifestation being measured; keep NumPy quiet about it.
            with np.errstate(all="ignore"):
                result = evaluate_instruction(inst, in_vals)
            if widen and isinstance(result, np.ndarray) and result.dtype.kind in _FLOAT_KINDS:
                result = np.asarray(result, np.float64)
        values[inst.id] = result
        stats = _stats_of(result)
        if stats is not None:
            run.observed[inst.id] = stats
    root = values[module.entry.root.id]
    outputs = root if isinstance(root, tuple) else (root,)
    for o in outputs:
        # Rank-0 reductions come back as NumPy scalars, not arrays.
        if isinstance(o, np.ndarray) and o.dtype.kind in _FLOAT_KINDS:
            run.outputs.append(np.asarray(o, np.float64))
        elif isinstance(o, (float, np.floating)):
            run.outputs.append(np.asarray(o, np.float64))
    return run


def _stats_of(result) -> ObservedStats | None:
    if not isinstance(result, np.ndarray) or result.dtype.kind not in _FLOAT_KINDS:
        if isinstance(result, (float, np.floating)):
            v = float(result)
            return ObservedStats(v, v, has_nan=bool(np.isnan(v)))
        return None
    if result.size == 0:
        return None
    a = np.asarray(result, np.float64)
    has_nan = bool(np.isnan(a).any())
    finite_or_inf = a[~np.isnan(a)] if has_nan else a
    if finite_or_inf.size == 0:
        return ObservedStats(np.nan, np.nan, has_nan=True)
    return ObservedStats(
        float(finite_or_inf.min()), float(finite_or_inf.max()), has_nan
    )


@dataclass(frozen=True)
class OutputError:
    """Output deviation of an observed run from the f64 reference."""

    #: max over outputs of max|y - y_ref| / max(max|y_ref|, 1e-12).
    max_scaled: float
    #: max elementwise |y - y_ref| in units of ``dtype``'s ULP at the
    #: reference magnitude — "how many representable steps off".
    max_ulp: float
    #: The observed run produced inf/NaN where the reference did not.
    introduced_nonfinite: bool


def output_errors(
    observed: OracleRun, reference: OracleRun, dtype: str
) -> OutputError:
    """Compare two runs of semantically-equal modules output by output."""
    if len(observed.outputs) != len(reference.outputs):
        raise HloError(
            f"output arity mismatch: {len(observed.outputs)} observed vs "
            f"{len(reference.outputs)} reference"
        )
    info = finfo(dtype)
    max_scaled = 0.0
    max_ulp = 0.0
    introduced = False
    for y, ref in zip(observed.outputs, reference.outputs):
        ref_ok = np.isfinite(ref)
        y_bad = ~np.isfinite(y)
        if bool((ref_ok & y_bad).any()):
            introduced = True
            continue
        ok = ref_ok & ~y_bad
        if not bool(ok.any()):
            continue
        err = np.abs(y[ok] - ref[ok])
        scale = max(float(np.abs(ref[ok]).max()), 1e-12)
        max_scaled = max(max_scaled, float(err.max()) / scale)
        ulps = np.maximum(
            np.abs(ref[ok]) * info.eps, info.smallest_subnormal
        )
        max_ulp = max(max_ulp, float((err / ulps).max()))
    return OutputError(max_scaled, max_ulp, introduced)
