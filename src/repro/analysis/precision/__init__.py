"""Static precision-safety analysis (sweep 9).

Certifies that a mixed-precision (f16/bf16) lowering of a traced step
program is numerically safe *before* it runs, in three layers:

* :mod:`repro.analysis.precision.intervals` — a sound interval domain
  over f64 with outward rounding and non-finite poisoning;
* :mod:`repro.analysis.precision.ranges` — propagates per-value
  magnitude bounds over an HLO module schedule, modelling the rounding
  of every narrowed op (the certificate: certified ⊇ observed);
* :mod:`repro.analysis.precision.dtypeflow` — flags overflow-to-inf,
  underflow-to-zero, unsafe casts, and reductions that need f32
  accumulation, each with a located diagnostic and a fix-it;
* :mod:`repro.analysis.precision.casts` — the autocast planner: emits a
  per-op precision assignment following the AMP discipline (narrow
  compute, f32 accumulation, wide where ranges demand it) and verifies
  it clean before returning it.

The dynamic oracle (:mod:`repro.analysis.precision.oracle`) runs each
corpus trace at f64 reference precision, at the planned precision, and
under the naive narrow-everything policy, recording observed value
ranges and ULP errors under the canonical trace key; the report
(:mod:`repro.analysis.precision.report`) requires certified ⊇ observed
on every trace, hazard manifestation to agree with the static verdict,
and the memory planner's certified peak to shrink on narrowed modules.
"""

from repro.analysis.precision.casts import (
    PrecisionAssignment,
    apply_plan,
    naive_assignment,
    plan_casts,
)
from repro.analysis.precision.dtypeflow import check_dtype_flow
from repro.analysis.precision.intervals import Interval
from repro.analysis.precision.models import CORPUS, PrecisionProgram, get_program
from repro.analysis.precision.oracle import run_observed, run_reference
from repro.analysis.precision.ranges import RangeInfo, analyze_ranges
from repro.analysis.precision.report import (
    PrecisionReport,
    TracePrecisionCheck,
    analyze_all_precision_models,
    analyze_precision_model,
    analyze_precision_program,
)

__all__ = [
    "CORPUS",
    "analyze_all_precision_models",
    "analyze_precision_model",
    "Interval",
    "PrecisionAssignment",
    "PrecisionProgram",
    "PrecisionReport",
    "RangeInfo",
    "TracePrecisionCheck",
    "analyze_precision_program",
    "analyze_ranges",
    "apply_plan",
    "check_dtype_flow",
    "get_program",
    "naive_assignment",
    "plan_casts",
    "run_observed",
    "run_reference",
]
