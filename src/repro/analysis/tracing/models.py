"""The seeded trace-stability corpus: step programs with known verdicts.

Mirrors :mod:`repro.analysis.ownership.models`: a clean suite the analyzer
must pass with **zero** diagnostics (and exact cache-behavior
predictions), plus seeded hazards — one per failure mode Section 3.4 and
the LazyTensor paper name — each recording the verdict the analyzer must
produce.  The self-check sweep drives every program both statically and
dynamically and requires the two to agree.

Each program builds its own device so captures are independent; ``build``
returns ``(device, step_fn)`` and ``step_fn(step)`` runs one training
step.  The hand-built malformed traces at the bottom exercise the
pre-lowering shape checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn.losses import softmax_cross_entropy
from repro.tensor import LazyTensorBarrier, Tensor, lazy_device
from repro.tensor.lazy_backend import TraceNode


@dataclass(frozen=True)
class TraceProgram:
    """One corpus entry: a step program plus the expected verdict."""

    name: str
    description: str
    #: "clean" | "volatile-constant" | "unbounded-growth" |
    #: "auto-cut-reliance" | "structural-instability"
    expect: str
    steps: int
    build: Callable[[], tuple]


# ---------------------------------------------------------------------------
# Clean corpus: per-step traces must hash identically (steps 2..N all
# cache hits), with zero diagnostics.
# ---------------------------------------------------------------------------


def _build_sgd_scalar_clean():
    device = lazy_device()
    state = {"w": Tensor(np.ones(8, np.float32), device)}

    def step_fn(step: int) -> None:
        state["w"] = state["w"] - state["w"] * 0.1
        LazyTensorBarrier(device)

    return device, step_fn


def _build_affine_train_clean():
    device = lazy_device()
    rng = np.random.default_rng(0)
    xv = rng.standard_normal((4, 6)).astype(np.float32)
    state = {
        "w": Tensor(rng.standard_normal((6, 3)).astype(np.float32), device),
        "b": Tensor(np.zeros(3, np.float32), device),
    }

    def step_fn(step: int) -> None:
        x = Tensor(xv, device)
        h = (x @ state["w"] + state["b"]).relu()
        loss = h.sum()  # noqa: F841  (kept live; materialized by the barrier)
        state["w"] = state["w"] - state["w"] * 0.01
        state["b"] = state["b"] - state["b"] * 0.01
        LazyTensorBarrier(device)

    return device, step_fn


def _mlp_loss(model, x, y):
    return softmax_cross_entropy(model(x.reshaped((-1, 16))), y)


def _build_mlp_train_clean():
    """A real training step — gradient, in-place update, automatic
    barrier — on one fixed batch: the docstring claim of
    :mod:`repro.tensor.lazy_backend`, as a checkable corpus entry."""
    from repro.data import synthetic_mnist
    from repro.nn import MLP
    from repro.optim import SGD
    from repro.training import train_step

    device = lazy_device()
    data = synthetic_mnist(n=16, image_size=4)
    x, y = next(iter(data.batches(16, device=device, shuffle=False)))
    model = MLP.create(16, [8], 10, device=device, seed=0)
    optimizer = SGD(0.05)

    def step_fn(step: int) -> None:
        train_step(model, optimizer, _mlp_loss, x, y, device)

    return device, step_fn


def _build_observe_each_step_clean():
    device = lazy_device()
    state = {"w": Tensor(np.full(4, 2.0, np.float32), device)}

    def step_fn(step: int) -> None:
        loss = (state["w"] * state["w"]).sum()
        loss.item()  # observation cuts the trace; no barrier needed

    return device, step_fn


# ---------------------------------------------------------------------------
# Seeded hazards.
# ---------------------------------------------------------------------------


def _build_lr_schedule_storm():
    """A Python-side learning-rate schedule baked into the trace: the
    canonical silent-recompilation hazard."""
    device = lazy_device()
    state = {"w": Tensor(np.ones(8, np.float32), device)}

    def step_fn(step: int) -> None:
        lr = 0.1 / (1.0 + step)  # host float -> trace-embedded constant
        state["w"] = state["w"] - state["w"] * lr
        LazyTensorBarrier(device)

    return device, step_fn


def _build_step_counter_storm():
    """A step counter folded into the computation as a constant."""
    device = lazy_device()
    state = {"w": Tensor(np.ones(4, np.float32), device)}

    def step_fn(step: int) -> None:
        scaled = (state["w"] * float(step + 1)).sum()
        scaled.item()

    return device, step_fn


def _build_unrolled_no_barrier():
    """The accidental-unrolling hazard: nothing ever cuts the trace."""
    device = lazy_device()
    state = {"w": Tensor(np.ones(8, np.float32), device)}

    def step_fn(step: int) -> None:
        state["w"] = state["w"] - state["w"] * 0.1

    return device, step_fn


def _build_auto_cut_reliance():
    """Same loop, but bounded only by the runtime's _auto_cut fallback."""
    device = lazy_device(auto_barrier_threshold=6)
    state = {"w": Tensor(np.ones(8, np.float32), device)}

    def step_fn(step: int) -> None:
        state["w"] = state["w"] - state["w"] * 0.1

    return device, step_fn


def _build_shape_drift():
    """Per-step input shapes change, so every step is a new executable."""
    device = lazy_device()

    def step_fn(step: int) -> None:
        x = Tensor(np.ones(step + 1, np.float32), device)
        (x * 2.0).sum().item()

    return device, step_fn


CLEAN_PROGRAMS = [
    TraceProgram(
        "sgd_scalar_clean",
        "scalar-rate parameter decay with a per-step barrier",
        "clean",
        6,
        _build_sgd_scalar_clean,
    ),
    TraceProgram(
        "affine_train_clean",
        "affine forward + fixed-rate update, barrier per step",
        "clean",
        6,
        _build_affine_train_clean,
    ),
    TraceProgram(
        "mlp_train_clean",
        "real train_step (gradient + SGD + automatic barrier), fixed batch",
        "clean",
        4,
        _build_mlp_train_clean,
    ),
    TraceProgram(
        "observe_each_step_clean",
        "per-step observation (.item()) cuts the trace without a barrier",
        "clean",
        6,
        _build_observe_each_step_clean,
    ),
]

HAZARD_PROGRAMS = [
    TraceProgram(
        "lr_schedule_storm",
        "host-side LR schedule embedded as a step-volatile constant",
        "volatile-constant",
        6,
        _build_lr_schedule_storm,
    ),
    TraceProgram(
        "step_counter_storm",
        "step counter folded into the trace as a constant",
        "volatile-constant",
        6,
        _build_step_counter_storm,
    ),
    TraceProgram(
        "unrolled_no_barrier",
        "no barrier, no observation: the loop unrolls without bound",
        "unbounded-growth",
        6,
        _build_unrolled_no_barrier,
    ),
    TraceProgram(
        "auto_cut_reliance",
        "trace only ever cut by the _auto_cut fallback",
        "auto-cut-reliance",
        9,
        _build_auto_cut_reliance,
    ),
    TraceProgram(
        "shape_drift",
        "per-step shapes change: structural trace instability",
        "structural-instability",
        4,
        _build_shape_drift,
    ),
]

PROGRAMS = {p.name: p for p in CLEAN_PROGRAMS + HAZARD_PROGRAMS}


# ---------------------------------------------------------------------------
# Hand-built trace DAGs for the pre-lowering shape checker.
# ---------------------------------------------------------------------------


def _source(shape) -> TraceNode:
    return TraceNode(
        "source", [], tuple(shape), data=np.zeros(shape, np.float32)
    )


def wellformed_trace() -> list[TraceNode]:
    a = _source((2, 3))
    b = _source((3, 4))
    mm = TraceNode("matmul", [a, b], (2, 4))
    s = TraceNode(
        "reduce", [mm], (), attrs={"kind": "sum", "axes": None, "keepdims": False}
    )
    return [s]


def malformed_matmul_trace() -> list[TraceNode]:
    """Contraction dims disagree: 3 vs 5."""
    a = _source((2, 3))
    b = _source((5, 4))
    return [TraceNode("matmul", [a, b], (2, 4))]


def misdeclared_shape_trace() -> list[TraceNode]:
    """The recorded output shape contradicts broadcast inference."""
    a = _source((2, 3))
    b = _source((2, 3))
    return [TraceNode("add", [a, b], (2, 4))]


def unknown_op_trace() -> list[TraceNode]:
    """An op with no HLO lowering must be rejected before compilation."""
    a = _source((8,))
    return [TraceNode("fft", [a], (8,))]


def bad_reshape_trace() -> list[TraceNode]:
    """Element counts disagree: 6 -> 8."""
    a = _source((2, 3))
    return [TraceNode("reshape", [a], (2, 4), attrs={"dims": (2, 4)})]


#: (name, builder, substring that must appear in the first diagnostic)
MALFORMED_TRACES = [
    ("malformed_matmul", malformed_matmul_trace, "matmul"),
    ("misdeclared_shape", misdeclared_shape_trace, "disagrees"),
    ("unknown_op", unknown_op_trace, "no HLO lowering"),
    ("bad_reshape", bad_reshape_trace, "reshape"),
]
