"""Static trace-stability analysis for LazyTensor (the tracing layer).

PRs 1–2 gave the SIL and ownership layers static verification; this
package does the same for the tracing layer of Section 3.4, whose
performance model rests on two fragile dynamic properties: per-step
traces must hash identically (so the trace-hash → executable cache hits),
and traces must be cut before unrolled control flow grows them without
bound.  Four cooperating analyses prove those properties ahead of
execution instead of observing them after:

* :mod:`~repro.analysis.tracing.canonical` — alpha-renaming +
  data-abstraction canonicalizer producing the **static cache key**, with
  an equivalence checker proving two fragments share one executable;
* :mod:`~repro.analysis.tracing.stability` — the **retrace-storm
  detector**: cross-step canonical diffing that attributes silent
  recompilation to the exact step-volatile constants causing it, with
  promote-to-input fix-its;
* :mod:`~repro.analysis.tracing.growth` — the **unrolling/barrier
  analyzer**: bounds per-step trace growth, flags auto-cut reliance, and
  proposes barrier placement;
* :mod:`~repro.analysis.tracing.shapes` — forward shape/dtype inference
  over TraceNode DAGs against the :mod:`repro.hlo.shapes` rules, so
  malformed traces are rejected before lowering with located diagnostics.

Every report cross-checks its static cache predictions against the
instrumented runtime (``STATS.compiles`` / ``STATS.cache_hits``);
``python -m repro.analysis --trace <program|all>`` runs the analysis from
the command line over the seeded corpus in
:mod:`~repro.analysis.tracing.models`.
"""

from __future__ import annotations

from repro.analysis.tracing.canonical import (
    CanonicalTrace,
    ConstantSite,
    cache_key,
    canonicalize,
    diff_constants,
    explain_difference,
    same_skeleton,
    traces_equivalent,
)
from repro.analysis.tracing.capture import (
    Fragment,
    FragmentRecord,
    SnapNode,
    StepTraceCapture,
    capture_step_traces,
    snapshot_fragment,
)
from repro.analysis.tracing.growth import GrowthReport, analyze_growth
from repro.analysis.tracing.report import (
    TraceStabilityReport,
    analyze_step_program,
    analyze_trace_program,
    fingerprint_of_fragment,
)
from repro.analysis.tracing.shapes import check_trace, infer_trace_shapes
from repro.analysis.tracing.stability import (
    StabilityReport,
    VolatileConstant,
    analyze_stability,
)

__all__ = [
    "CanonicalTrace",
    "ConstantSite",
    "Fragment",
    "FragmentRecord",
    "GrowthReport",
    "SnapNode",
    "StabilityReport",
    "StepTraceCapture",
    "TraceStabilityReport",
    "VolatileConstant",
    "analyze_growth",
    "analyze_stability",
    "analyze_step_program",
    "analyze_trace_program",
    "cache_key",
    "canonicalize",
    "capture_step_traces",
    "check_trace",
    "diff_constants",
    "explain_difference",
    "fingerprint_of_fragment",
    "infer_trace_shapes",
    "same_skeleton",
    "snapshot_fragment",
    "traces_equivalent",
]
