"""Trace canonicalization: the static cache key of a LazyTensor fragment.

Section 3.4 stakes LazyTensor's performance on per-step traces hashing
identically so the trace-hash → executable cache hits.  The dynamic hash is
the HLO module fingerprint computed *after* lowering; this module computes
an equivalent key directly on the :class:`TraceNode` DAG, **before**
lowering, so cache behavior can be proven statically:

* node identities are alpha-renamed to their position in the exact
  traversal order :func:`repro.tensor.lazy_backend._lower_to_hlo` uses;
* sources are abstracted to parameters (shape + dtype only — the values a
  tensor holds never affect which executable runs);
* trace-embedded ``constant`` nodes keep their **values**, because HLO
  prints literals into the module text the compiler cache keys on — this
  is precisely why a step-volatile constant causes a retrace storm.

Two fragments with equal canonical keys lower to alpha-equivalent HLO
modules and therefore share one compiled executable; the self-check sweep
cross-validates this equivalence against real fingerprints and the
runtime's dynamic counters.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class ConstantSite:
    """A trace-embedded literal: canonical position + the embedded value."""

    position: int
    value: float


@dataclass(frozen=True)
class CanonicalTrace:
    """The canonical (alpha-renamed, data-abstracted) form of a fragment."""

    #: Full canonical text — equality ⇔ one shared compiled executable.
    key: str
    #: Canonical text with constant *values* abstracted away; two traces
    #: with equal skeletons but unequal keys differ only in embedded
    #: literals (the retrace-storm signature).
    skeleton: str
    lines: tuple[str, ...]
    constants: tuple[ConstantSite, ...]
    #: Node ids (TraceNode.id) by canonical position, for mapping
    #: diagnostics back onto a live trace or snapshot.
    node_ids: tuple[int, ...]
    n_params: int
    n_ops: int

    @property
    def digest(self) -> str:
        """Short stable hash of the key, for display."""
        return hashlib.sha256(self.key.encode()).hexdigest()[:12]

    @property
    def skeleton_digest(self) -> str:
        return hashlib.sha256(self.skeleton.encode()).hexdigest()[:12]


def _shape_text(shape: tuple, dtype: str) -> str:
    dims = "x".join(map(str, shape))
    return f"{dtype}[{dims}]"


def _attr_text(attrs: dict) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={attrs[k]!r}" for k in sorted(attrs))
    return " {" + inner + "}"


def canonicalize(roots: Sequence) -> CanonicalTrace:
    """Canonicalize the fragment materializing ``roots`` (in cut order).

    Accepts live :class:`TraceNode` roots or captured
    :class:`~repro.analysis.tracing.capture.SnapNode` roots alike.
    """
    roots = list(roots)
    # Identical traversal to _lower_to_hlo: per-root iterative post-order
    # sharing one visited map, sources/constants numbered at first sight.
    index: dict[int, int] = {}
    order: list = []

    def visit(root) -> None:
        stack: list[tuple] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in index:
                continue
            if node.is_source or node.op == "constant" or expanded:
                index[node.id] = len(order)
                order.append(node)
                continue
            stack.append((node, True))
            for operand in reversed(node.inputs):
                if operand.id not in index:
                    stack.append((operand, False))

    for root in roots:
        visit(root)

    lines: list[str] = []
    skeleton_lines: list[str] = []
    constants: list[ConstantSite] = []
    n_params = 0
    n_ops = 0
    for position, node in enumerate(order):
        shape = _shape_text(node.shape, node.dtype)
        if node.is_source:
            text = f"%{position} = param[{n_params}] {shape}"
            n_params += 1
            lines.append(text)
            skeleton_lines.append(text)
        elif node.op == "constant":
            value = float(node.attrs["value"])
            constants.append(ConstantSite(position, value))
            lines.append(f"%{position} = constant({value!r}) {shape}")
            skeleton_lines.append(f"%{position} = constant(·) {shape}")
        else:
            n_ops += 1
            operands = ", ".join(f"%{index[i.id]}" for i in node.inputs)
            text = (
                f"%{position} = {node.op}({operands}) {shape}"
                f"{_attr_text(node.attrs)}"
            )
            lines.append(text)
            skeleton_lines.append(text)
    root_line = "roots(" + ", ".join(f"%{index[r.id]}" for r in roots) + ")"
    lines.append(root_line)
    skeleton_lines.append(root_line)
    return CanonicalTrace(
        key="\n".join(lines),
        skeleton="\n".join(skeleton_lines),
        lines=tuple(lines),
        constants=tuple(constants),
        node_ids=tuple(node.id for node in order),
        n_params=n_params,
        n_ops=n_ops,
    )


def cache_key(roots: Sequence) -> str:
    """The static cache key (short digest) of a fragment."""
    return canonicalize(roots).digest


def traces_equivalent(a: CanonicalTrace, b: CanonicalTrace) -> bool:
    """True iff the two fragments will share one compiled executable."""
    return a.key == b.key


def same_skeleton(a: CanonicalTrace, b: CanonicalTrace) -> bool:
    """True iff the fragments differ at most in embedded constant values."""
    return a.skeleton == b.skeleton


def diff_constants(
    a: CanonicalTrace, b: CanonicalTrace
) -> list[tuple[int, float, float]]:
    """Per-site value differences ``(position, value_a, value_b)``.

    Only meaningful when ``same_skeleton(a, b)`` — positions then align.
    """
    return [
        (sa.position, sa.value, sb.value)
        for sa, sb in zip(a.constants, b.constants)
        if sa.value != sb.value
    ]


def explain_difference(a: CanonicalTrace, b: CanonicalTrace) -> Optional[str]:
    """Human-readable first divergence between two canonical traces, or
    ``None`` when they are equivalent (one shared executable)."""
    if traces_equivalent(a, b):
        return None
    if same_skeleton(a, b):
        position, va, vb = diff_constants(a, b)[0]
        return (
            f"traces differ only in embedded constants: "
            f"%{position} is {va!r} vs {vb!r}"
        )
    for i, (la, lb) in enumerate(zip(a.lines, b.lines)):
        if la != lb:
            return f"traces diverge at %{i}: {la!r} vs {lb!r}"
    return (
        f"traces differ in length: {len(a.lines)} vs {len(b.lines)} "
        "canonical nodes"
    )
