"""The combined trace-stability analysis and its dynamic cross-check.

:func:`analyze_step_program` drives a step program under the capture
harness, then runs the three static analyses over the recorded fragments:

1. shape/dtype inference (:mod:`~repro.analysis.tracing.shapes`) — every
   fragment must be well-formed before lowering;
2. cross-step canonical diffing (:mod:`~repro.analysis.tracing.stability`)
   — cache behavior proven from trace text alone;
3. growth/barrier auditing (:mod:`~repro.analysis.tracing.growth`).

Because the capture also records what the runtime *actually did* (compile
and cache-hit counters), every report carries its own falsifiability
check: ``cross_check_ok`` is true iff the static cache predictions match
the dynamic ``STATS`` deltas exactly — the same static-vs-dynamic
discipline the ownership checker applies to ``CowStats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Diagnostic

from repro.analysis.tracing.capture import (
    Fragment,
    StepTraceCapture,
    capture_step_traces,
)
from repro.analysis.tracing.growth import GrowthReport, analyze_growth
from repro.analysis.tracing.models import TraceProgram
from repro.analysis.tracing.shapes import infer_trace_shapes
from repro.analysis.tracing.stability import StabilityReport, analyze_stability


def fingerprint_of_fragment(fragment: Fragment) -> str:
    """The *dynamic* cache key: lower the snapshot to HLO and fingerprint
    it, exactly as ``compile_module`` would.  Used to cross-validate the
    static canonical key's equivalence claims."""
    from repro.hlo.compiler import fingerprint
    from repro.tensor.lazy_backend import _lower_to_hlo

    module, _params = _lower_to_hlo(fragment.to_trace_nodes())
    return fingerprint(module)


@dataclass
class TraceStabilityReport:
    """Everything proven (and observed) about one step program."""

    program: str
    capture: StepTraceCapture
    stability: StabilityReport
    growth: GrowthReport
    shape_diagnostics: list[Diagnostic] = field(default_factory=list)

    # -- static predictions vs dynamic observation ---------------------------

    @property
    def predicted_compiles(self) -> int:
        return self.stability.predicted_compiles

    @property
    def predicted_cache_hits(self) -> int:
        return self.stability.predicted_cache_hits

    @property
    def dynamic_compiles(self) -> int:
        return self.capture.dynamic_compiles

    @property
    def dynamic_cache_hits(self) -> int:
        return self.capture.dynamic_cache_hits

    @property
    def cross_check_ok(self) -> bool:
        """Static cache predictions match the instrumented runtime exactly."""
        return (
            self.predicted_compiles == self.dynamic_compiles
            and self.predicted_cache_hits == self.dynamic_cache_hits
            and self.stability.predicted_unique_keys
            == self.capture.dynamic_new_cache_entries
        )

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return (
            list(self.shape_diagnostics)
            + list(self.stability.diagnostics)
            + list(self.growth.diagnostics)
        )

    @property
    def ok(self) -> bool:
        return self.cross_check_ok and not any(
            d.is_error for d in self.diagnostics
        )

    def verdicts(self) -> set[str]:
        """The hazard classes found (``{"clean"}`` when none)."""
        found: set[str] = set()
        if self.stability.volatile_constants:
            found.add("volatile-constant")
        if self.stability.structurally_unstable_slots:
            found.add("structural-instability")
        if not self.growth.bounded:
            found.add("unbounded-growth")
        if self.growth.auto_cut_only:
            found.add("auto-cut-reliance")
        if any(d.is_error for d in self.shape_diagnostics):
            found.add("malformed-trace")
        return found or {"clean"}

    def render(self) -> str:
        check = "MATCH" if self.cross_check_ok else "MISMATCH"
        lines = [
            f"== trace-stability analysis: {self.program} ==",
            f"verdicts:                {', '.join(sorted(self.verdicts()))}",
            "",
            self.stability.render(),
            "",
            self.growth.render(),
            "",
            "static prediction vs dynamic runtime: " + check,
            f"  compiles:   predicted {self.predicted_compiles}, "
            f"observed {self.dynamic_compiles}",
            f"  cache hits: predicted {self.predicted_cache_hits}, "
            f"observed {self.dynamic_cache_hits}",
            f"  executables: predicted {self.stability.predicted_unique_keys}, "
            f"cached {self.capture.dynamic_new_cache_entries}",
        ]
        if self.shape_diagnostics:
            lines.append("")
            lines.extend(str(d) for d in self.shape_diagnostics)
        return "\n".join(lines)


def analyze_step_program(
    step_fn,
    steps: int,
    device,
    name: str = "<program>",
    isolate_cache: bool = True,
) -> TraceStabilityReport:
    """Capture ``steps`` iterations of ``step_fn`` on ``device`` and run
    the full static analysis over the recorded fragments."""
    capture = capture_step_traces(
        step_fn, steps, device, isolate_cache=isolate_cache
    )
    shape_diagnostics: list[Diagnostic] = []
    for record in capture.fragments:
        shape_diagnostics.extend(infer_trace_shapes(record.fragment.roots))
    return TraceStabilityReport(
        program=name,
        capture=capture,
        stability=analyze_stability(capture),
        growth=analyze_growth(capture),
        shape_diagnostics=shape_diagnostics,
    )


def analyze_trace_program(program: TraceProgram) -> TraceStabilityReport:
    """Build and analyze one corpus entry."""
    device, step_fn = program.build()
    return analyze_step_program(
        step_fn, program.steps, device, name=program.name
    )
