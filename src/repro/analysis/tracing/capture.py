"""Trace capture: immutable fragment snapshots of a step program.

Executing a trace *consumes* it — :meth:`LazyRuntime._execute` rewrites
every materialized :class:`TraceNode` into a source and drops its inputs —
so anything that wants to reason about traces after the fact must snapshot
them first.  This module hooks the runtime's ``fragment_observers``
callback to snapshot every fragment (observation, explicit barrier, or
``_auto_cut``) at the moment it is cut, *before* lowering, and records the
per-step growth measurements the unrolling analyzer needs.

The snapshots are the static analyzer's input; the dynamic counters
(``STATS.compiles`` / ``STATS.cache_hits`` deltas over the same window)
ride along so every static prediction can be cross-checked against what
the runtime actually did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.tensor.lazy_backend import TraceNode


class SnapNode:
    """An immutable copy of one :class:`TraceNode` (data abstracted away).

    Mirrors the TraceNode interface the canonicalizer and shape checker
    need (``op``/``inputs``/``attrs``/``shape``/``dtype``/``is_source``),
    so both accept live trace roots and snapshots interchangeably.
    """

    __slots__ = ("id", "op", "inputs", "attrs", "shape", "dtype", "_source", "data")

    def __init__(
        self, node: TraceNode, inputs: list["SnapNode"], keep_data: bool = False
    ) -> None:
        self.id = node.id
        self.op = node.op
        self.inputs = inputs
        self.attrs = dict(node.attrs)
        self.shape = tuple(node.shape)
        self.dtype = node.dtype
        self._source = node.is_source
        #: Source array, retained only under ``keep_data`` (the precision
        #: oracle needs real inputs; every other analysis is shape-only).
        self.data = (
            np.array(node.data, copy=True)
            if keep_data and node.is_source and node.data is not None
            else None
        )

    @property
    def is_source(self) -> bool:
        return self._source

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        src = " (source)" if self.is_source else ""
        return f"<SnapNode {self.op}.{self.id} {self.shape}{src}>"


@dataclass
class Fragment:
    """One cut trace fragment: the materialization targets and their DAG."""

    roots: list[SnapNode]

    def nodes(self) -> list[SnapNode]:
        """Every node of the fragment, deduplicated, operands first."""
        order: list[SnapNode] = []
        seen: set[int] = set()
        stack: list[tuple[SnapNode, bool]] = [(r, False) for r in reversed(self.roots)]
        while stack:
            node, expanded = stack.pop()
            if node.id in seen:
                continue
            if expanded or not node.inputs:
                seen.add(node.id)
                order.append(node)
            else:
                stack.append((node, True))
                for operand in reversed(node.inputs):
                    if operand.id not in seen:
                        stack.append((operand, False))
        return order

    @property
    def n_ops(self) -> int:
        return sum(1 for n in self.nodes() if not n.is_source)

    def to_trace_nodes(self) -> list[TraceNode]:
        """Rebuild real TraceNodes, e.g. for HLO lowering.

        Source data is abstracted to zeros of the right shape unless the
        snapshot retained it (``keep_source_data`` capture): the lowered
        module's fingerprint depends only on shapes, so either
        reconstruction is fingerprint-faithful.
        """
        rebuilt: dict[int, TraceNode] = {}
        for snap in self.nodes():
            if snap.is_source:
                node = TraceNode(
                    "source",
                    [],
                    snap.shape,
                    snap.dtype,
                    data=(
                        snap.data
                        if snap.data is not None
                        else np.zeros(snap.shape, np.float32)
                    ),
                )
            else:
                node = TraceNode(
                    snap.op,
                    [rebuilt[i.id] for i in snap.inputs],
                    snap.shape,
                    snap.dtype,
                    attrs=dict(snap.attrs),
                )
            rebuilt[snap.id] = node
        return [rebuilt[r.id] for r in self.roots]


def snapshot_fragment(targets, keep_data: bool = False) -> Fragment:
    """Deep-copy the DAG rooted at ``targets`` into :class:`SnapNode` form."""
    snapped: dict[int, SnapNode] = {}
    for target in targets:
        stack: list[tuple] = [(target, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in snapped:
                continue
            if expanded or not node.inputs:
                snapped[node.id] = SnapNode(
                    node, [snapped[i.id] for i in node.inputs], keep_data
                )
            else:
                stack.append((node, True))
                for operand in reversed(node.inputs):
                    if operand.id not in snapped:
                        stack.append((operand, False))
    return Fragment([snapped[t.id] for t in targets])


@dataclass
class FragmentRecord:
    """One fragment cut during capture, tagged with when and why."""

    step: int
    index: int  # cut order within the step
    reason: str  # "observe" | "barrier" | "auto_cut"
    fragment: Fragment


@dataclass
class StepTraceCapture:
    """Everything recorded while driving a step program for N steps."""

    steps: int
    fragments: list[FragmentRecord] = field(default_factory=list)
    #: Ops recorded into the trace during each step (tracing work).
    per_step_recorded: list[int] = field(default_factory=list)
    #: Un-cut ops still pending at the end of each step (trace growth).
    per_step_pending: list[int] = field(default_factory=list)
    auto_barrier_threshold: Optional[int] = None
    #: Dynamic counters over the capture window (the cross-check oracle).
    dynamic_compiles: int = 0
    dynamic_cache_hits: int = 0
    dynamic_new_cache_entries: int = 0
    dynamic_auto_cuts: int = 0

    def fragments_of_step(self, step: int) -> list[FragmentRecord]:
        return [f for f in self.fragments if f.step == step]

    @property
    def cut_reasons(self) -> set[str]:
        return {f.reason for f in self.fragments}


def _pending_ops(runtime) -> int:
    """Count the not-yet-materialized ops reachable from live tensors."""
    seen: set[int] = set()
    count = 0
    stack: list = []
    for tensor in list(runtime.live_tensors):
        node = tensor._impl
        if isinstance(node, TraceNode) and node.id not in seen:
            seen.add(node.id)
            stack.append(node)
    while stack:
        node = stack.pop()
        if not node.is_source and node.op != "constant":
            count += 1
        for operand in node.inputs:
            if operand.id not in seen:
                seen.add(operand.id)
                stack.append(operand)
    return count


def capture_step_traces(
    step_fn: Callable[[int], object],
    steps: int,
    device,
    isolate_cache: bool = True,
    keep_source_data: bool = False,
) -> StepTraceCapture:
    """Drive ``step_fn(step)`` for ``steps`` iterations on a lazy ``device``,
    snapshotting every trace fragment the runtime cuts.

    With ``isolate_cache`` (the default) the global compiler cache and
    stats are cleared first, so the dynamic compile/cache-hit counters —
    and hence the static predictions, which assume a cold cache — describe
    this program alone.
    """
    from repro.hlo.compiler import STATS, cache_size, clear_cache

    if device.kind != "lazy":
        raise ValueError(f"trace capture requires a lazy device, got {device.kind!r}")
    runtime = device.runtime
    capture = StepTraceCapture(
        steps=steps, auto_barrier_threshold=runtime.auto_barrier_threshold
    )
    if isolate_cache:
        clear_cache()
    compiles_before = STATS.compiles
    hits_before = STATS.cache_hits
    entries_before = cache_size()
    auto_cuts_before = runtime.auto_cuts
    current_step = 0
    cuts_this_step = 0

    def observer(targets, reason: str) -> None:
        nonlocal cuts_this_step
        capture.fragments.append(
            FragmentRecord(
                current_step,
                cuts_this_step,
                reason,
                snapshot_fragment(targets, keep_data=keep_source_data),
            )
        )
        cuts_this_step += 1

    runtime.fragment_observers.append(observer)
    try:
        for step in range(steps):
            current_step = step
            cuts_this_step = 0
            before = runtime.ops_traced
            step_fn(step)
            capture.per_step_recorded.append(runtime.ops_traced - before)
            capture.per_step_pending.append(_pending_ops(runtime))
    finally:
        runtime.fragment_observers.remove(observer)
    capture.dynamic_compiles = STATS.compiles - compiles_before
    capture.dynamic_cache_hits = STATS.cache_hits - hits_before
    capture.dynamic_new_cache_entries = cache_size() - entries_before
    capture.dynamic_auto_cuts = runtime.auto_cuts - auto_cuts_before
    return capture
