"""The retrace-storm detector: cross-step canonical trace diffing.

A LazyTensor training loop is only fast if the per-step trace hashes
identically across steps, so steps 2..N hit the trace-hash → executable
cache.  The failure mode — named "silent recompilation" by the LazyTensor
paper and familiar from ``tf.function`` input-signature churn — is a
*step-volatile* value embedded in the trace as a constant: a learning-rate
schedule, a step counter, an annealing temperature.  Every step then
produces a fresh canonical key and the JIT recompiles forever.

This detector diffs the canonical form of each step's fragments:

* identical keys across steps → *step-stable*: proven cache hits;
* identical skeletons, differing constant values → a **retrace storm**,
  attributed to the exact constant sites that change, with a fix-it
  (promote the value to a trace input so it becomes a parameter);
* differing skeletons → **structural instability** (shape or program
  changes per step — every step is a genuinely new program).

It also replays the compiler cache statically: walking fragments in cut
order against a simulated (cold) key set yields the exact compile and
cache-hit counts the runtime must observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Diagnostic, SourceLocation

from repro.analysis.tracing.canonical import (
    CanonicalTrace,
    canonicalize,
    diff_constants,
    same_skeleton,
)
from repro.analysis.tracing.capture import StepTraceCapture


@dataclass(frozen=True)
class VolatileConstant:
    """One step-volatile trace-embedded literal and its observed values."""

    slot: int  # fragment position within a step
    position: int  # canonical node position within the fragment
    values: tuple[float, ...]  # per-step values, in step order

    def fix_it(self) -> str:
        preview = ", ".join(f"{v:g}" for v in self.values[:4])
        if len(self.values) > 4:
            preview += ", …"
        return (
            f"promote the value at %{self.position} to a trace input "
            f"(pass it as a Tensor, not a Python number) so the per-step "
            f"trace hashes identically; embedded values were [{preview}]"
        )


@dataclass
class AnalyzedFragment:
    """A captured fragment paired with its canonical form."""

    step: int
    slot: int
    reason: str
    canonical: CanonicalTrace
    predicted_hit: bool = False


@dataclass
class StabilityReport:
    """Everything the detector proved about cross-step cache behavior."""

    steps: int
    fragments: list[AnalyzedFragment] = field(default_factory=list)
    predicted_compiles: int = 0
    predicted_cache_hits: int = 0
    predicted_unique_keys: int = 0
    volatile_constants: list[VolatileConstant] = field(default_factory=list)
    structurally_unstable_slots: list[int] = field(default_factory=list)
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def stable(self) -> bool:
        """True iff steps 2..N are proven all-cache-hits."""
        return (
            not self.volatile_constants
            and not self.structurally_unstable_slots
            and not any(d.is_error for d in self.diagnostics)
        )

    def render(self) -> str:
        lines = [
            f"steps analyzed:          {self.steps}",
            f"fragments cut:           {len(self.fragments)}",
            f"unique executables:      {self.predicted_unique_keys}",
            f"predicted compiles:      {self.predicted_compiles}",
            f"predicted cache hits:    {self.predicted_cache_hits}",
        ]
        for diag in self.diagnostics:
            lines.append(str(diag))
        if not self.diagnostics:
            lines.append("trace is step-stable: steps 2..N are all cache hits")
        return "\n".join(lines)


def _slot_location(slot: int) -> SourceLocation:
    return SourceLocation("<trace>", slot, 0)


def analyze_stability(capture: StepTraceCapture) -> StabilityReport:
    """Statically classify the capture's fragments and predict cache
    behavior, without consulting the compiler or its cache."""
    report = StabilityReport(steps=capture.steps)

    # 1. Canonicalize every fragment and replay the executable cache.
    seen_keys: set[str] = set()
    for record in capture.fragments:
        canonical = canonicalize(record.fragment.roots)
        hit = canonical.key in seen_keys
        if hit:
            report.predicted_cache_hits += 1
        else:
            report.predicted_compiles += 1
            seen_keys.add(canonical.key)
        report.fragments.append(
            AnalyzedFragment(record.step, record.index, record.reason, canonical, hit)
        )
    report.predicted_unique_keys = len(seen_keys)

    # 2. Diff fragments slot-by-slot across steps.  The first step is a
    # warm-up: any trace recorded before the loop (dataset preprocessing,
    # initialization) is swept into its first barrier, so the property to
    # prove — the lazy_backend docstring's claim — is that steps 2..N all
    # share the steady-state executables.  Step 0 merely earns a note when
    # it differs.
    by_step: dict[int, list[AnalyzedFragment]] = {}
    for fragment in report.fragments:
        by_step.setdefault(fragment.step, []).append(fragment)
    if not by_step:
        return report
    tail_steps = sorted(step for step in by_step if step >= 1)
    if len(tail_steps) < 2:
        tail_steps = sorted(by_step)  # too short for a warm-up split
    counts = {step: len(by_step[step]) for step in tail_steps}
    if len(set(counts.values())) > 1:
        report.structurally_unstable_slots.append(-1)
        report.diagnostics.append(
            Diagnostic(
                "warning",
                "steps cut differing numbers of trace fragments "
                f"({', '.join(f'step {s}: {counts[s]}' for s in tail_steps)}); "
                "cut points drift across steps, so fragments cannot be "
                "proven cache-stable",
                _slot_location(0),
            )
        )

    n_slots = min(counts.values()) if counts else 0
    stable_slots = 0
    for slot in range(n_slots):
        series = [by_step[step][slot] for step in tail_steps]
        if len(series) < 2:
            continue
        baseline = series[0].canonical
        if all(f.canonical.key == baseline.key for f in series[1:]):
            stable_slots += 1
            continue  # proven stable: identical executable every step
        if all(same_skeleton(f.canonical, baseline) for f in series[1:]):
            # Retrace storm: same program shape, different embedded values.
            changed: set[int] = set()
            for fragment in series[1:]:
                for position, _v0, _v1 in diff_constants(
                    baseline, fragment.canonical
                ):
                    changed.add(position)
            for position in sorted(changed):
                values = []
                for fragment in series:
                    for site in fragment.canonical.constants:
                        if site.position == position:
                            values.append(site.value)
                volatile = VolatileConstant(slot, position, tuple(values))
                report.volatile_constants.append(volatile)
                report.diagnostics.append(
                    Diagnostic(
                        "error",
                        f"retrace storm: the constant at %{position} is "
                        f"step-volatile — every step records a new trace "
                        f"key and recompiles; {volatile.fix_it()}",
                        _slot_location(position),
                    )
                )
        else:
            report.structurally_unstable_slots.append(slot)
            divergent = next(
                f for f in series[1:] if not same_skeleton(f.canonical, baseline)
            )
            detail = _skeleton_divergence(baseline, divergent.canonical)
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    f"trace structure varies across steps (fragment {slot}): "
                    f"{detail}; every step compiles a genuinely new "
                    "executable — make per-step shapes and program "
                    "structure uniform",
                    _slot_location(slot),
                )
            )

    # Warm-up note: the first step may legitimately compile its own
    # fragment (setup work swept into the first barrier).
    first_step = sorted(by_step)[0]
    if first_step not in tail_steps and stable_slots == n_slots and n_slots:
        tail_keys = {
            by_step[step][slot].canonical.key
            for step in tail_steps
            for slot in range(n_slots)
        }
        if any(
            f.canonical.key not in tail_keys for f in by_step[first_step]
        ):
            report.diagnostics.append(
                Diagnostic(
                    "note",
                    "the first step's trace differs from the steady state "
                    "(setup work recorded before the loop is swept into "
                    "its fragment); steps 2..N share one executable",
                    _slot_location(0),
                )
            )
    return report


def _skeleton_divergence(a: CanonicalTrace, b: CanonicalTrace) -> str:
    for i, (la, lb) in enumerate(zip(a.skeleton.splitlines(), b.skeleton.splitlines())):
        if la != lb:
            return f"step traces diverge at %{i} ({la!r} vs {lb!r})"
    return (
        f"step traces differ in size ({len(a.lines) - 1} vs "
        f"{len(b.lines) - 1} canonical nodes)"
    )
