"""The unrolling/barrier analyzer: bounding per-step trace growth.

Control flow is invisible to the tracer — loops unroll into the trace —
so a training loop that never observes a tensor and never calls
``LazyTensorBarrier()`` grows one unbounded trace (Section 3.4).  The
runtime's ``_auto_cut`` fallback bounds memory when a threshold is set,
but its cut points are op-count artifacts, not program structure, so
relying on it is a performance hazard rather than a crash.

Verdicts, from the per-step measurements the capture harness records:

* **error** — pending trace grows monotonically with the step index and
  nothing (barrier, observation, or auto-cut) ever cuts it: the loop is
  being unrolled without bound.  The fix-it proposes the barrier
  placement the training-loop library uses (cut after the optimizer
  update, at the end of each step).
* **warning** — every cut was an ``_auto_cut``: the program only
  terminates its traces via the fallback, so fragment boundaries are
  accidental and may drift across steps; an explicit barrier makes them
  semantic.
* clean — per-step pending work is bounded and cuts (if any) are
  program-placed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import Diagnostic, SourceLocation

from repro.analysis.tracing.capture import StepTraceCapture


@dataclass
class GrowthReport:
    """What the analyzer bounded (or failed to bound) about trace growth."""

    steps: int
    per_step_recorded: list[int] = field(default_factory=list)
    per_step_pending: list[int] = field(default_factory=list)
    cut_reasons: set = field(default_factory=set)
    auto_barrier_threshold: Optional[int] = None
    #: Largest fragment actually cut, in ops (the compile-size bound).
    max_fragment_ops: int = 0
    #: True iff the pending trace is proven not to grow with the step index.
    bounded: bool = True
    #: True iff fragments were only ever cut by the ``_auto_cut`` fallback.
    auto_cut_only: bool = False
    barrier_suggestion: Optional[str] = None
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not any(d.is_error for d in self.diagnostics)

    def render(self) -> str:
        lines = [
            f"per-step ops recorded:   {self.per_step_recorded}",
            f"per-step ops pending:    {self.per_step_pending}",
            f"cut reasons:             {sorted(self.cut_reasons) or ['(none)']}",
            f"max fragment size:       {self.max_fragment_ops} ops",
            f"growth bounded:          {self.bounded}",
        ]
        lines.extend(str(d) for d in self.diagnostics)
        if self.barrier_suggestion:
            lines.append(f"suggestion: {self.barrier_suggestion}")
        return "\n".join(lines)


def _grows_without_bound(pending: list[int]) -> bool:
    """Monotone non-decreasing with net positive slope ⇒ unbounded."""
    if len(pending) < 2:
        return False
    deltas = [b - a for a, b in zip(pending, pending[1:])]
    return all(d >= 0 for d in deltas) and sum(deltas) > 0


def analyze_growth(capture: StepTraceCapture) -> GrowthReport:
    """Bound per-step trace growth and audit how fragments get cut."""
    report = GrowthReport(
        steps=capture.steps,
        per_step_recorded=list(capture.per_step_recorded),
        per_step_pending=list(capture.per_step_pending),
        cut_reasons=set(capture.cut_reasons),
        auto_barrier_threshold=capture.auto_barrier_threshold,
        max_fragment_ops=max(
            (f.fragment.n_ops for f in capture.fragments), default=0
        ),
    )
    unbounded = _grows_without_bound(report.per_step_pending)
    report.bounded = not unbounded
    report.auto_cut_only = bool(report.cut_reasons) and report.cut_reasons == {
        "auto_cut"
    }

    if unbounded:
        growth_text = " → ".join(map(str, report.per_step_pending))
        if capture.auto_barrier_threshold is None:
            report.barrier_suggestion = (
                "insert LazyTensorBarrier(device) at the end of each step "
                "(after the optimizer update), or set an "
                "auto_barrier_threshold on the device as a backstop"
            )
            report.diagnostics.append(
                Diagnostic(
                    "error",
                    "unbounded trace growth: pending ops rise every step "
                    f"({growth_text}) and no barrier, observation, or "
                    "auto-cut ever cuts the trace — the loop is being "
                    f"unrolled; {report.barrier_suggestion}",
                    SourceLocation("<trace>", len(report.per_step_pending), 0),
                )
            )
        else:
            # A threshold exists but has not fired yet; growth is bounded
            # by it, not by the program.  Treated like auto-cut reliance.
            report.bounded = True
            report.auto_cut_only = True

    if report.auto_cut_only and not any(d.is_error for d in report.diagnostics):
        report.barrier_suggestion = (
            "place an explicit LazyTensorBarrier(device) where a step "
            "semantically ends so cut points stop depending on the op "
            "counter"
        )
        report.diagnostics.append(
            Diagnostic(
                "warning",
                "trace only terminates via the _auto_cut fallback "
                f"(threshold={capture.auto_barrier_threshold}): fragment "
                "boundaries are op-count artifacts and can drift across "
                f"steps; {report.barrier_suggestion}",
                SourceLocation("<trace>", 0, 0),
            )
        )
    return report
