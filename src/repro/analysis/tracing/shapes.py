"""Forward shape/dtype inference over TraceNode DAGs.

The tensor layer stamps a shape onto every :class:`TraceNode` as it
records, but nothing validates those stamps until the fragment is lowered
— at which point :mod:`repro.hlo.builder` re-infers shapes and a malformed
trace fails *inside* HLO compilation, far from the node that caused it.
This checker re-runs the same :mod:`repro.hlo.shapes` inference rules
directly over the trace DAG, so malformed traces are rejected **before
lowering** with diagnostics located at the offending trace node (its
canonical position doubles as the line number).

It also statically rejects ops with no HLO lowering — the ahead-of-time
version of the ``no HLO lowering for traced op`` error ``_emit`` raises
at materialization time.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import (
    Diagnostic,
    ReproError,
    SourceLocation,
    TraceError,
)
from repro.hlo import shapes as si
from repro.hlo.ir import Shape
from repro.tensor.lazy_backend import _BINARY, _UNARY


def _infer(node, input_shapes: list[tuple], input_dtypes: list[str]):
    """Expected ``(dims, dtype)`` of ``node`` per the HLO inference rules."""
    op = node.op
    attrs = node.attrs
    if op in _UNARY:
        return input_shapes[0], input_dtypes[0]
    if op in _BINARY:
        dims = si.broadcast_shapes(Shape(input_shapes[0]), Shape(input_shapes[1]))
        return dims, "f32"
    if op == "compare":
        dims = si.broadcast_shapes(Shape(input_shapes[0]), Shape(input_shapes[1]))
        return dims, "pred"
    if op == "select":
        dims = si.broadcast_shapes(Shape(input_shapes[0]), Shape(input_shapes[1]))
        dims = si.broadcast_shapes(Shape(dims), Shape(input_shapes[2]))
        return dims, input_dtypes[1]
    if op == "matmul":
        return si.infer_dot(Shape(input_shapes[0]), Shape(input_shapes[1])).dims, "f32"
    if op == "conv2d":
        return (
            si.infer_conv(
                Shape(input_shapes[0]),
                Shape(input_shapes[1]),
                attrs["stride"],
                attrs["padding"],
            ).dims,
            "f32",
        )
    if op == "conv2d_grad_input":
        return tuple(attrs["input_dims"]), "f32"
    if op == "conv2d_grad_filter":
        return tuple(attrs["filter_dims"]), "f32"
    if op == "reduce":
        return (
            si.infer_reduce(
                Shape(input_shapes[0]), attrs["axes"], attrs["keepdims"]
            ).dims,
            "f32",
        )
    if op == "reshape":
        return si.infer_reshape(Shape(input_shapes[0]), tuple(attrs["dims"])).dims, "f32"
    if op == "transpose":
        return (
            si.infer_transpose(Shape(input_shapes[0]), tuple(attrs["perm"])).dims,
            "f32",
        )
    if op == "broadcast_to":
        return (
            si.infer_broadcast(Shape(input_shapes[0]), tuple(attrs["dims"])).dims,
            "f32",
        )
    if op in ("avg_pool", "max_pool"):
        return (
            si.infer_pool(Shape(input_shapes[0]), attrs["pool"], attrs["stride"]).dims,
            "f32",
        )
    if op == "avg_pool_grad":
        return tuple(attrs["input_dims"]), "f32"
    if op == "max_pool_grad":
        return input_shapes[0], "f32"
    if op == "one_hot":
        return tuple(input_shapes[0]) + (attrs["depth"],), "f32"
    if op == "softmax_ce":
        if input_shapes[0] != input_shapes[1]:
            raise si.ShapeError(
                f"softmax_ce logits {input_shapes[0]} and labels "
                f"{input_shapes[1]} disagree"
            )
        return (), "f32"
    if op == "softmax_ce_grad":
        return input_shapes[0], "f32"
    if op == "pad":
        return si.infer_pad(Shape(input_shapes[0]), attrs["paddings"]).dims, "f32"
    if op == "slice":
        return (
            si.infer_slice(
                Shape(input_shapes[0]), attrs["starts"], attrs["sizes"]
            ).dims,
            "f32",
        )
    if op == "concat":
        return (
            si.infer_concat([Shape(s) for s in input_shapes], attrs["axis"]).dims,
            "f32",
        )
    raise si.ShapeError(f"no HLO lowering for traced op {op!r}")


def infer_trace_shapes(roots: Sequence) -> list[Diagnostic]:
    """Validate every node of the fragment against HLO shape inference.

    Returns the full batch of diagnostics (empty when the trace is
    well-formed).  Never raises; use :func:`check_trace` for the raising
    form.  On an inference failure the node's *declared* shape is trusted
    downstream, so one malformed node yields one diagnostic, not a
    cascade.
    """
    from repro.analysis.tracing.canonical import canonicalize

    canonical = canonicalize(roots)
    position_of = {nid: pos for pos, nid in enumerate(canonical.node_ids)}
    diagnostics: list[Diagnostic] = []
    # Walk in canonical (operands-first) order, re-inferring each op.
    order: list = []
    seen: set[int] = set()
    stack: list[tuple] = [(r, False) for r in reversed(list(roots))]
    while stack:
        node, expanded = stack.pop()
        if node.id in seen:
            continue
        if expanded or not node.inputs:
            seen.add(node.id)
            order.append(node)
        else:
            stack.append((node, True))
            for operand in reversed(node.inputs):
                if operand.id not in seen:
                    stack.append((operand, False))

    def located(severity: str, node, message: str) -> Diagnostic:
        position = position_of.get(node.id, -1)
        anchor = f"%{position} = {node.op}"
        return Diagnostic(
            severity,
            f"{anchor}: {message}",
            SourceLocation("<trace>", position, 0),
        )

    for node in order:
        if node.is_source or node.op == "constant":
            continue
        input_shapes = [tuple(i.shape) for i in node.inputs]
        input_dtypes = [i.dtype for i in node.inputs]
        try:
            dims, dtype = _infer(node, input_shapes, input_dtypes)
        except (ReproError, KeyError, IndexError, TypeError) as exc:
            detail = (
                f"missing attribute {exc}" if isinstance(exc, KeyError) else str(exc)
            )
            diagnostics.append(located("error", node, detail))
            continue
        if tuple(dims) != tuple(node.shape):
            diagnostics.append(
                located(
                    "error",
                    node,
                    f"recorded shape {tuple(node.shape)} disagrees with "
                    f"inferred shape {tuple(dims)} "
                    f"(inputs {', '.join(map(str, input_shapes))})",
                )
            )
        elif dtype != node.dtype:
            diagnostics.append(
                located(
                    "error",
                    node,
                    f"recorded dtype {node.dtype!r} disagrees with "
                    f"inferred dtype {dtype!r}",
                )
            )
    return diagnostics


def check_trace(roots: Sequence) -> None:
    """Raise :class:`~repro.errors.TraceError` carrying the full batch of
    shape/dtype diagnostics when the fragment is malformed."""
    diagnostics = infer_trace_shapes(roots)
    if any(d.is_error for d in diagnostics):
        raise TraceError(diagnostics)
