"""The analysis self-check: every verifier, over everything we can build.

Three sweeps, mirroring the three layers the subsystem spans:

1. **Primitive sweep** — for every primitive in the global registry
   (scalar, math, structural, and tensor primitives alike), build a small
   SIL wrapper function applying it, run structural + typed verification,
   then synthesize its VJP and/or JVP plan and verify the planned function
   again.  Non-differentiable primitives must instead be *rejected* by the
   differentiability linter with an error diagnostic — the linter's
   ahead-of-time property, checked both ways.

2. **HLO sweep** — record the LeNet-5 forward trace on a lazy device (the
   Figure 4 benchmark workload), lower it to an HLO module, verify it,
   optimize it with per-pass verification enabled, and verify the
   optimized (fused) module once more.

3. **Pipeline sweep** — lower a handful of representative differentiable
   Python functions (control flow included), run the default SIL pass
   pipeline with ``verify_each``, and lint them.

4. **Ownership sweep** — run the static borrow checker, the
   copy-materialization inference, and the pullback cost analyzer over
   every primitive wrapper from sweep 1, the lowerable optimizer update
   loops, and the clean borrow corpus (all must come back violation-free,
   and the optimizer loops must be all-in-place); then over the seeded
   exclusivity-violation suite, asserting the checker produces exactly the
   expected verdict for each program.

5. **Tracing sweep** — run the static trace-stability analysis over the
   seeded step-program corpus: every program must produce exactly its
   expected verdict (clean programs with zero diagnostics), every static
   cache prediction must match the instrumented runtime's ``STATS``
   deltas exactly, canonical-key equality must agree with the dynamic
   ``fingerprint`` on every captured fragment pair, the hand-built
   malformed traces must be rejected by pre-lowering shape inference,
   and the LeNet-5 forward trace must shape-check cleanly.

6. **Derivative sweep** — run the static derivative-correctness verifier
   (:mod:`repro.analysis.derivatives`): every registered pullback in the
   global primitive table must be proven a linear map (or be numerically
   opaque — never *dis*proven), every registered JVP/VJP pair must be
   mutual transposes with the seeded inner-product probe agreeing, and
   the derivative model corpus must produce exactly its expected
   verdicts — clean models with zero error diagnostics and gradients
   matching finite differences, every seeded hazard caught with a
   *located* diagnostic, and every ``prune_captures`` measurement
   showing bit-identical gradients.

7. **Concurrency sweep** — run the static concurrency-safety analysis
   (:mod:`repro.analysis.concurrency`) over the real parallel engine:
   the shared-state inventory must account for every mutable reachable
   from worker threads (zero unregistered fields), the lockset analysis
   must find zero unguarded accesses, the lock-order graph must be
   acyclic with every dynamically witnessed acquisition edge statically
   predicted, and every replica merge must verify replica-ordered or
   order-insensitive with its numeric probe agreeing.  Then over the
   seeded hazard corpus: every race, lock-order cycle, and
   order-sensitive merge must be caught with a located diagnostic, and
   every clean model must come back silent.

8. **Memory sweep** — run the static memory planner
   (:mod:`repro.analysis.memory`) over the seeded step-program corpus:
   every program must produce exactly its expected verdict, every
   certified peak must bound the dynamically observed per-trace peak
   (and equal it exactly on straight-line traces), every buffer plan
   must validate against its liveness intervals, and every seeded hazard
   (over-budget trace, unsafe in-place donation, tuple-aliasing reuse)
   must be caught with a *located* diagnostic — clean programs silent.

9. **Precision sweep** — run the static precision-safety analysis
   (:mod:`repro.analysis.precision`) over the seeded step-program
   corpus: every program's dtype-flow verdict under the naive
   narrow-everything lowering must match its expectation (clean
   programs with zero error diagnostics), every certified interval must
   contain every dynamically observed value across the reference, naive,
   and planned oracle runs, every statically predicted hazard must
   *manifest* in the naive run's outputs, every autocast plan must
   re-check clean and run accurately, and narrowing must shrink the
   memory planner's certified peak on at least one trace.

10. **Equivalence sweep** — run the translation validator
    (:mod:`repro.analysis.equivalence`) over the codegen corpus: every
    clean program's lowered modules must certify (the emitted flat-NumPy
    step function proven value-for-value equivalent to its HLO schedule)
    with zero error diagnostics and the dynamic differential check
    passing — interpreted ≡ generated, bit for bit — and every seeded
    miscompile (wrong broadcast, stale buffer reuse, dropped convert,
    reordered non-commutative op, f32-accumulation elision) must be
    rejected with a *located* diagnostic naming the divergent value,
    while its untransformed baseline still certifies.

``python -m repro.analysis --self-check`` runs all ten and exits 0 iff
everything holds.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.lint import check_differentiability, lint_function
from repro.core.synthesis import jvp_plan, vjp_plan
from repro.errors import DifferentiabilityError, ReproError
from repro.sil import ir
from repro.sil.primitives import PRIMITIVES, Primitive
from repro.sil.typecheck import verify_typed


@dataclass
class SelfCheckReport:
    """What the self-check covered and what it found."""

    primitives_checked: int = 0
    vjp_plans_verified: int = 0
    jvp_plans_verified: int = 0
    nondifferentiable_rejected: int = 0
    hlo_modules_verified: int = 0
    hlo_instructions_verified: int = 0
    functions_pipelined: int = 0
    ownership_functions_checked: int = 0
    exclusivity_violations_caught: int = 0
    mutation_sites_labeled: int = 0
    trace_programs_checked: int = 0
    trace_hazards_caught: int = 0
    trace_predictions_matched: int = 0
    trace_fragments_cross_validated: int = 0
    malformed_traces_rejected: int = 0
    derivative_rules_checked: int = 0
    pullbacks_proven_linear: int = 0
    transpose_pairs_consistent: int = 0
    derivative_models_checked: int = 0
    derivative_hazards_caught: int = 0
    pullback_captures_pruned: int = 0
    shared_fields_inventoried: int = 0
    guarded_accesses_proven: int = 0
    lock_edges_cross_checked: int = 0
    concurrency_models_checked: int = 0
    concurrency_hazards_caught: int = 0
    merges_verified: int = 0
    memory_programs_checked: int = 0
    memory_hazards_caught: int = 0
    peak_bounds_certified: int = 0
    exact_peak_matches: int = 0
    buffers_reused: int = 0
    precision_programs_checked: int = 0
    precision_hazards_caught: int = 0
    intervals_contained: int = 0
    autocast_plans_verified: int = 0
    narrow_peak_bytes_saved: int = 0
    codegen_modules_certified: int = 0
    codegen_values_checked: int = 0
    miscompiles_caught: int = 0
    differential_matches: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["ok"] = self.ok
        return payload

    def summary(self) -> str:
        lines = [
            f"primitives checked:            {self.primitives_checked}",
            f"VJP plans verified:            {self.vjp_plans_verified}",
            f"JVP plans verified:            {self.jvp_plans_verified}",
            f"non-differentiable rejected:   {self.nondifferentiable_rejected}",
            f"HLO modules verified:          {self.hlo_modules_verified}",
            f"HLO instructions verified:     {self.hlo_instructions_verified}",
            f"functions through verify_each: {self.functions_pipelined}",
            f"ownership-checked functions:   {self.ownership_functions_checked}",
            f"exclusivity violations caught: {self.exclusivity_violations_caught}",
            f"mutation sites labeled:        {self.mutation_sites_labeled}",
            f"trace programs checked:        {self.trace_programs_checked}",
            f"trace hazards caught:          {self.trace_hazards_caught}",
            f"cache predictions matched:     {self.trace_predictions_matched}",
            f"fragments cross-validated:     {self.trace_fragments_cross_validated}",
            f"malformed traces rejected:     {self.malformed_traces_rejected}",
            f"derivative rules checked:      {self.derivative_rules_checked}",
            f"pullbacks proven linear:       {self.pullbacks_proven_linear}",
            f"transpose pairs consistent:    {self.transpose_pairs_consistent}",
            f"derivative models checked:     {self.derivative_models_checked}",
            f"derivative hazards caught:     {self.derivative_hazards_caught}",
            f"pullback captures pruned:      {self.pullback_captures_pruned}",
            f"shared fields inventoried:     {self.shared_fields_inventoried}",
            f"guarded accesses proven:       {self.guarded_accesses_proven}",
            f"lock edges cross-checked:      {self.lock_edges_cross_checked}",
            f"concurrency models checked:    {self.concurrency_models_checked}",
            f"concurrency hazards caught:    {self.concurrency_hazards_caught}",
            f"merges verified:               {self.merges_verified}",
            f"memory programs checked:       {self.memory_programs_checked}",
            f"memory hazards caught:         {self.memory_hazards_caught}",
            f"peak bounds certified:         {self.peak_bounds_certified}",
            f"exact peak matches:            {self.exact_peak_matches}",
            f"buffers reused:                {self.buffers_reused}",
            f"precision programs checked:    {self.precision_programs_checked}",
            f"precision hazards caught:      {self.precision_hazards_caught}",
            f"intervals containing observed: {self.intervals_contained}",
            f"autocast plans verified:       {self.autocast_plans_verified}",
            f"narrowed peak bytes saved:     {self.narrow_peak_bytes_saved}",
            f"codegen modules certified:     {self.codegen_modules_certified}",
            f"codegen values proven:         {self.codegen_values_checked}",
            f"miscompiles caught:            {self.miscompiles_caught}",
            f"differential runs identical:   {self.differential_matches}",
        ]
        if self.failures:
            lines.append(f"FAILURES ({len(self.failures)}):")
            lines.extend(f"  - {f}" for f in self.failures)
        else:
            lines.append("all checks passed")
        return "\n".join(lines)


def _wrapper_function(prim: Primitive) -> ir.Function:
    """A minimal SIL function applying ``prim`` to fresh parameters."""
    lo, hi = prim.arity
    n_args = lo if lo > 0 else (2 if hi is None else max(hi, 1))
    func = ir.Function(f"selfcheck_{prim.name}", [f"a{i}" for i in range(n_args)])
    entry = func.new_block("entry")
    args = [entry.add_arg(ir.ANY, f"a{i}") for i in range(n_args)]
    apply = entry.append(ir.ApplyInst(ir.FunctionRef(prim), args))
    entry.append(ir.ReturnInst(apply.result))
    return func


def _check_primitives(report: SelfCheckReport) -> None:
    # Import for their registration side effects: tensor + structural prims.
    import repro.core  # noqa: F401
    import repro.tensor  # noqa: F401

    for name, prim in sorted(PRIMITIVES.items()):
        report.primitives_checked += 1
        try:
            func = _wrapper_function(prim)
            verify_typed(func)
        except ReproError as exc:
            report.failures.append(f"primitive {name!r}: wrapper rejected: {exc}")
            continue

        wrt = tuple(
            i for i in range(len(func.params)) if i not in prim.nondiff_args
        )
        if not wrt:
            continue
        if prim.differentiable:
            try:
                check_differentiability(func, wrt)
                if prim.vjp is not None:
                    plan = vjp_plan(func, wrt)
                    verify_typed(plan.func)
                    report.vjp_plans_verified += 1
                if prim.jvp is not None:
                    plan = jvp_plan(func, wrt)
                    verify_typed(plan.func)
                    report.jvp_plans_verified += 1
            except ReproError as exc:
                report.failures.append(
                    f"primitive {name!r}: synthesis/verification failed: {exc}"
                )
        else:
            try:
                check_differentiability(func, wrt)
            except DifferentiabilityError as exc:
                if any(d.is_error for d in exc.diagnostics):
                    report.nondifferentiable_rejected += 1
                else:  # pragma: no cover
                    report.failures.append(
                        f"primitive {name!r}: rejected without an error diag"
                    )
            else:
                report.failures.append(
                    f"primitive {name!r} has no derivative but the linter "
                    "accepted an active application of it"
                )


def _check_hlo(report: SelfCheckReport) -> None:
    from repro.hlo.passes import optimize
    from repro.hlo.verify import verify_module
    from repro.nn import LeNet
    from repro.runtime.costmodel import S4TF_LAZY, TPU_V3_CORE
    from repro.tensor import Device, Tensor
    from repro.tensor.lazy_backend import _lower_to_hlo
    from repro.viz import capture_forward_trace

    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = LeNet.create(device, seed=0)
    x = Tensor(np.zeros((1, 28, 28, 1), np.float32), device)
    root = capture_forward_trace(model, x)

    module, _params = _lower_to_hlo([root])
    try:
        verify_module(module)
        report.hlo_modules_verified += 1
        report.hlo_instructions_verified += module.entry.instruction_count()
        optimize(module, fuse=True, verify_each=True)
        verify_module(module)
        report.hlo_modules_verified += 1
        report.hlo_instructions_verified += module.entry.instruction_count()
    except ReproError as exc:
        report.failures.append(f"HLO trace module: {exc}")


def _representative_functions():
    def polynomial(x):
        return 3.0 * x * x + 2.0 * x + 1.0

    def smooth_abs(x):
        if x < 0.0:
            return -x
        return x

    def geometric(x, n):
        total = 0.0
        term = 1.0
        for _ in range(n):
            term = term * x
            total = total + term
        return total

    return [(polynomial, (0,)), (smooth_abs, (0,)), (geometric, (0,))]


def _check_pipeline(report: SelfCheckReport) -> None:
    from repro.sil.frontend import lower_function
    from repro.sil.passes.pipeline import run_default_pipeline

    for pyfunc, wrt in _representative_functions():
        try:
            func = lower_function(pyfunc)
            run_default_pipeline(func, verify_each=True)
            lint_function(func, wrt)
            plan = vjp_plan(func, wrt)
            verify_typed(plan.func)
            report.functions_pipelined += 1
        except ReproError as exc:
            report.failures.append(f"pipeline over {pyfunc.__name__!r}: {exc}")


def _check_ownership(report: SelfCheckReport) -> None:
    from repro.analysis.ownership import analyze_ownership
    from repro.analysis.ownership import models
    from repro.sil.frontend import lower_function

    # Every primitive wrapper must be ownership-clean (no formal accesses,
    # hence no possible violations — the zero-false-positive baseline).
    for name, prim in sorted(PRIMITIVES.items()):
        try:
            ownership = analyze_ownership(_wrapper_function(prim))
        except ReproError as exc:
            report.failures.append(f"ownership over primitive {name!r}: {exc}")
            continue
        report.ownership_functions_checked += 1
        if not ownership.ok:
            report.failures.append(
                f"ownership over primitive {name!r}: spurious violation"
            )

    # Clean corpus: optimizer update loops and well-scoped borrows.  The
    # optimizer loops additionally must be *all in-place* — the statically
    # proven half of the zero-copy parameter-update claim (Section 4.3).
    for pyfunc in models.CLEAN_SUITE:
        try:
            ownership = analyze_ownership(lower_function(pyfunc))
        except ReproError as exc:
            report.failures.append(f"ownership over {pyfunc.__name__!r}: {exc}")
            continue
        report.ownership_functions_checked += 1
        report.mutation_sites_labeled += ownership.copies.mutation_sites
        if ownership.diagnostics:
            report.failures.append(
                f"ownership over {pyfunc.__name__!r}: false positive: "
                + ownership.diagnostics[0].message
            )
        if pyfunc.__name__ in models.OPTIMIZER_MODELS and (
            ownership.copies.must_copy
            or ownership.copies.may_copy
            or not ownership.copies.in_place
        ):
            report.failures.append(
                f"ownership over {pyfunc.__name__!r}: update loop not "
                "proven copy-free"
            )

    # Seeded violations: the borrow checker must produce each expected
    # verdict (error = certain trap, warning = dynamic check required).
    for pyfunc, expected in models.VIOLATION_SUITE:
        try:
            ownership = analyze_ownership(lower_function(pyfunc))
        except ReproError as exc:
            report.failures.append(f"ownership over {pyfunc.__name__!r}: {exc}")
            continue
        report.ownership_functions_checked += 1
        severities = {
            "error" if d.is_error else "warning" for d in ownership.diagnostics
        }
        if expected in severities:
            report.exclusivity_violations_caught += 1
        else:
            report.failures.append(
                f"ownership over {pyfunc.__name__!r}: expected a(n) "
                f"{expected} verdict, got {sorted(severities) or ['none']}"
            )


def _check_tracing(report: SelfCheckReport) -> None:
    from repro.analysis.tracing import models as trace_models
    from repro.analysis.tracing.report import (
        analyze_trace_program,
        fingerprint_of_fragment,
    )
    from repro.analysis.tracing.shapes import infer_trace_shapes

    # Corpus sweep: exact verdicts, exact cache predictions, and — on every
    # captured fragment pair — agreement between the static canonical key
    # and the dynamic HLO fingerprint (the equivalence claim itself).
    for program in trace_models.PROGRAMS.values():
        try:
            result = analyze_trace_program(program)
        except ReproError as exc:
            report.failures.append(f"trace program {program.name!r}: {exc}")
            continue
        report.trace_programs_checked += 1

        verdicts = result.verdicts()
        if verdicts != {program.expect}:
            report.failures.append(
                f"trace program {program.name!r}: expected verdict "
                f"{program.expect!r}, got {sorted(verdicts)}"
            )
        elif program.expect != "clean":
            report.trace_hazards_caught += 1

        if program.expect == "clean" and any(
            d.is_error for d in result.diagnostics
        ):
            report.failures.append(
                f"trace program {program.name!r}: false positive: "
                + next(d for d in result.diagnostics if d.is_error).message
            )

        if result.cross_check_ok:
            report.trace_predictions_matched += 1
        else:
            report.failures.append(
                f"trace program {program.name!r}: static cache prediction "
                f"(compiles={result.predicted_compiles}, "
                f"hits={result.predicted_cache_hits}) diverges from the "
                f"runtime (compiles={result.dynamic_compiles}, "
                f"hits={result.dynamic_cache_hits})"
            )

        analyzed = result.stability.fragments
        records = result.capture.fragments
        fingerprints = [fingerprint_of_fragment(r.fragment) for r in records]
        for i in range(len(records)):
            for j in range(i + 1, len(records)):
                static_eq = analyzed[i].canonical.key == analyzed[j].canonical.key
                dynamic_eq = fingerprints[i] == fingerprints[j]
                if static_eq != dynamic_eq:
                    report.failures.append(
                        f"trace program {program.name!r}: canonical keys of "
                        f"fragments {i} and {j} "
                        f"{'agree' if static_eq else 'differ'} but their HLO "
                        f"fingerprints "
                        f"{'agree' if dynamic_eq else 'differ'}"
                    )
                else:
                    report.trace_fragments_cross_validated += 1

    # Malformed hand-built traces must be rejected before lowering.
    for name, builder, needle in trace_models.MALFORMED_TRACES:
        diagnostics = infer_trace_shapes(builder())
        errors = [d for d in diagnostics if d.is_error]
        if errors and needle in errors[0].message:
            report.malformed_traces_rejected += 1
        else:
            report.failures.append(
                f"malformed trace {name!r}: expected an error mentioning "
                f"{needle!r}, got {[d.message for d in diagnostics] or 'none'}"
            )
    well = infer_trace_shapes(trace_models.wellformed_trace())
    if well:
        report.failures.append(
            f"wellformed trace: spurious diagnostic: {well[0].message}"
        )

    # The LeNet-5 forward trace (the Figure 4 workload) must shape-check
    # cleanly pre-lowering — the same DAG sweep 2 verifies post-lowering.
    from repro.nn import LeNet
    from repro.runtime.costmodel import S4TF_LAZY, TPU_V3_CORE
    from repro.tensor import Device, Tensor
    from repro.viz import capture_forward_trace

    device = Device("lazy", TPU_V3_CORE, S4TF_LAZY)
    model = LeNet.create(device, seed=0)
    x = Tensor(np.zeros((1, 28, 28, 1), np.float32), device)
    root = capture_forward_trace(model, x)
    lenet_diags = infer_trace_shapes([root])
    if lenet_diags:
        report.failures.append(
            f"LeNet forward trace: shape inference diagnostic: "
            f"{lenet_diags[0].message}"
        )


def _check_derivatives(report: SelfCheckReport) -> None:
    from repro.analysis.derivatives.linearity import check_primitive_linearity
    from repro.analysis.derivatives.models import MODELS
    from repro.analysis.derivatives.report import analyze_derivative_model
    from repro.analysis.derivatives.transpose import check_primitive_transpose

    # Registry sweep: every registered pullback must be a provably linear
    # map of the cotangent (or numerically opaque — never *dis*proven),
    # with the abstract verdict agreeing with the linear-map probes; every
    # registered JVP/VJP pair must satisfy ⟨Jv, w⟩ = ⟨v, Jᵀw⟩.
    for name, prim in sorted(PRIMITIVES.items()):
        if prim.vjp is None:
            continue
        lin = check_primitive_linearity(prim)
        report.derivative_rules_checked += 1
        if lin.is_linear:
            report.pullbacks_proven_linear += 1
        elif any(d.is_error for d in lin.diagnostics()):
            report.failures.append(
                f"primitive {name!r}: registered pullback judged "
                f"{lin.verdict}: {lin.reason}"
            )
        if not lin.cross_check_ok:
            report.failures.append(
                f"primitive {name!r}: linearity verdict {lin.verdict!r} "
                "disagrees with the numeric linear-map probes"
            )

        pair = check_primitive_transpose(prim)
        if pair is None:
            continue
        if pair.verdict == "consistent":
            report.transpose_pairs_consistent += 1
        elif pair.verdict == "inconsistent":
            report.failures.append(
                f"primitive {name!r}: VJP is not the transpose of the "
                f"registered JVP: {pair.reason}"
            )
        if not pair.cross_check_ok:
            report.failures.append(
                f"primitive {name!r}: transpose verdict {pair.verdict!r} "
                "disagrees with the inner-product probe"
            )

    # Corpus sweep: exact verdicts.  Clean models must carry zero error
    # diagnostics (the zero-false-positive baseline) and match finite
    # differences; every seeded hazard must be caught with a *located*
    # diagnostic; every pruning measurement must leave gradients
    # bit-identical.
    for model in MODELS.values():
        try:
            result = analyze_derivative_model(model)
        except ReproError as exc:
            report.failures.append(f"derivative model {model.name!r}: {exc}")
            continue
        report.derivative_models_checked += 1

        verdicts = result.verdicts()
        if model.expect not in verdicts:
            report.failures.append(
                f"derivative model {model.name!r}: expected verdict "
                f"{model.expect!r}, got {sorted(verdicts)}"
            )
        elif model.expect != "clean":
            located = [
                d for d in result.diagnostics() if d.location.line > 0
            ]
            if located:
                report.derivative_hazards_caught += 1
            else:
                report.failures.append(
                    f"derivative model {model.name!r}: hazard caught but "
                    "no diagnostic carries a source location"
                )

        if model.expect == "clean" and any(
            d.is_error for d in result.diagnostics()
        ):
            report.failures.append(
                f"derivative model {model.name!r}: false positive: "
                + next(
                    d for d in result.diagnostics() if d.is_error
                ).message
            )

        if not result.cross_check_ok:
            report.failures.append(
                f"derivative model {model.name!r}: static verdicts "
                "disagree with the numeric probes"
            )

        if result.pruning is not None:
            if not result.pruning.gradients_identical:
                report.failures.append(
                    f"derivative model {model.name!r}: prune_captures "
                    "changed the gradient"
                )
            report.pullback_captures_pruned += result.pruning.entries_saved


def _check_concurrency(report: SelfCheckReport) -> None:
    from repro.analysis.concurrency.report import analyze_corpus, analyze_runtime

    # Runtime sweep: the real parallel engine must be provably clean —
    # every shared mutable accounted for, every guarded access holding
    # its lock, the lock-order graph acyclic, every dynamically
    # witnessed edge statically predicted, every merge deterministic.
    try:
        runtime = analyze_runtime(run_witness=True)
    except ReproError as exc:  # pragma: no cover
        report.failures.append(f"concurrency runtime analysis: {exc}")
        runtime = None
    if runtime is not None:
        report.shared_fields_inventoried += len(runtime.inventory.fields)
        report.guarded_accesses_proven += sum(
            1 for a in runtime.lockset.accesses if a.required is not None and a.ok
        )
        report.lock_edges_cross_checked += len(runtime.dynamic_edges)
        report.merges_verified += sum(
            1 for f in runtime.determinism.findings if f.ok
        )
        if runtime.inventory.unregistered:
            report.failures.append(
                "concurrency runtime: unregistered shared state: "
                + ", ".join(f.qualname for f in runtime.inventory.unregistered)
            )
        if runtime.verdicts() != ("clean",):
            report.failures.append(
                "concurrency runtime: expected a clean engine, got "
                f"{', '.join(runtime.verdicts())}: "
                + "; ".join(
                    d.message for d in runtime.diagnostics() if d.is_error
                )
            )
        if not runtime.cross_check_ok:
            report.failures.append(
                "concurrency runtime: static model diverges from the "
                "dynamic witness or numeric probes"
            )

    # Corpus sweep: exact verdicts — seeded races, the lock-order cycle,
    # and the completion-order merge all caught with located
    # diagnostics; clean models silent (zero false positives).
    corpus = analyze_corpus(run_witness=True)
    for result in corpus.results:
        report.concurrency_models_checked += 1
        report.lock_edges_cross_checked += len(result.dynamic_edges)
        if not result.matches:
            report.failures.append(
                f"concurrency model {result.model.name!r}: expected "
                f"{result.model.expect!r}, got {', '.join(result.verdicts)}"
                + ("" if result.cross_check_ok else " (cross-check diverged)")
            )
            continue
        if result.model.expect != "clean":
            located = [
                d for d in result.diagnostics
                if d.is_error and d.location.line > 0
            ]
            if located:
                report.concurrency_hazards_caught += 1
            else:
                report.failures.append(
                    f"concurrency model {result.model.name!r}: hazard "
                    "caught but no diagnostic carries a source location"
                )
        else:
            if result.model.merges:
                report.merges_verified += len(result.model.merges)


def _check_memory(report: SelfCheckReport) -> None:
    from repro.analysis.memory import CORPUS, analyze_memory_program

    # Corpus sweep: exact verdicts, sound (and exact where promised) peak
    # bounds, validated buffer plans.  Clean programs must carry zero
    # error diagnostics; every seeded hazard must be caught with a
    # *located* diagnostic.
    for program in CORPUS:
        try:
            result = analyze_memory_program(program)
        except ReproError as exc:  # pragma: no cover
            report.failures.append(f"memory program {program.name!r}: {exc}")
            continue
        report.memory_programs_checked += 1

        verdicts = result.verdicts()
        if verdicts != {program.expect}:
            report.failures.append(
                f"memory program {program.name!r}: expected verdict "
                f"{program.expect!r}, got {sorted(verdicts)}"
            )
        elif program.expect != "clean":
            located = [
                d
                for c in result.checks
                for d in c.diagnostics
                if d.is_error and d.location.line > 0
            ]
            if located:
                report.memory_hazards_caught += 1
            else:
                report.failures.append(
                    f"memory program {program.name!r}: hazard caught but "
                    "no diagnostic carries a source location"
                )

        if program.expect == "clean" and any(
            d.is_error for d in result.diagnostics()
        ):
            report.failures.append(
                f"memory program {program.name!r}: false positive: "
                + next(d for d in result.diagnostics() if d.is_error).message
            )

        if not result.cross_check_ok:
            divergent = [
                f"trace {c.trace_key}: certified "
                f"{c.certificate.certified_peak_bytes} vs observed "
                f"{c.observed_peak_bytes}"
                for c in result.checks
                if not c.sound or (c.liveness.straight_line and not c.exact)
            ]
            report.failures.append(
                f"memory program {program.name!r}: certified peak bound "
                "diverges from the dynamic tracker ("
                + ("; ".join(divergent) or "straight-line mismatch")
                + ")"
            )
            continue

        for check in result.checks:
            report.peak_bounds_certified += 1
            if check.liveness.straight_line:
                report.exact_peak_matches += 1
            report.buffers_reused += check.plan.buffers_reused


def _check_precision(report: SelfCheckReport) -> None:
    from repro.analysis.precision import CORPUS, analyze_precision_program

    # Corpus sweep: verdicts under the naive narrow-everything lowering
    # (clean programs with zero error diagnostics, hazards with *located*
    # diagnostics), certified ⊇ observed on every oracle run, every
    # statically predicted hazard manifesting dynamically, every autocast
    # plan re-checking clean and running accurately — and, across the
    # corpus, at least one trace whose certified peak shrinks.
    best_saved = 0
    for program in CORPUS:
        try:
            result = analyze_precision_program(program)
        except ReproError as exc:  # pragma: no cover
            report.failures.append(f"precision program {program.name!r}: {exc}")
            continue
        report.precision_programs_checked += 1

        if not result.verdict_matches:
            report.failures.append(
                f"precision program {program.name!r}: expected verdict "
                f"{program.expect!r}, got {sorted(result.verdicts())}"
            )
        elif program.expect != "clean":
            located = [
                d
                for d in result.diagnostics()
                if d.is_error and d.location.line > 0
            ]
            if located:
                report.precision_hazards_caught += 1
            else:
                report.failures.append(
                    f"precision program {program.name!r}: hazard caught "
                    "but no diagnostic carries a source location"
                )

        if program.expect == "clean" and any(
            d.is_error for d in result.diagnostics()
        ):
            report.failures.append(
                f"precision program {program.name!r}: false positive: "
                + next(d for d in result.diagnostics() if d.is_error).message
            )

        if not result.cross_check_ok:
            divergent = [
                failure
                for c in result.checks
                for failure in c.containment_failures
            ] + [
                f"trace {c.trace_key}: "
                + (
                    "hazard does not manifest"
                    if not c.manifestation_agrees
                    else "planned lowering not clean"
                )
                for c in result.checks
                if not c.manifestation_agrees or not c.planned_ok
            ]
            report.failures.append(
                f"precision program {program.name!r}: static verdicts "
                "diverge from the dynamic oracle ("
                + ("; ".join(divergent) or "no traces captured")
                + ")"
            )
            continue

        for check in result.checks:
            report.intervals_contained += 1
            report.autocast_plans_verified += 1
        best_saved = max(best_saved, result.bytes_saved)
        report.narrow_peak_bytes_saved += max(result.bytes_saved, 0)

    if report.precision_programs_checked and best_saved <= 0:
        report.failures.append(
            "precision sweep: no corpus trace's certified peak shrank "
            "under the autocast plan — narrowing must be visible in bytes"
        )


def _check_equivalence(report: SelfCheckReport) -> None:
    from repro.analysis.equivalence import CORPUS, analyze_equivalence_program
    from repro.errors import ReproError

    # Corpus sweep: every clean program certifies every unique trace with
    # zero error diagnostics (no false positives) and passes the dynamic
    # differential check bit for bit; every seeded miscompile's baseline
    # certifies while the transformed source is rejected with a *located*
    # diagnostic carrying exactly its expected verdict.
    for program in CORPUS:
        try:
            result = analyze_equivalence_program(program)
        except ReproError as exc:  # pragma: no cover
            report.failures.append(f"equivalence program {program.name!r}: {exc}")
            continue

        verdicts = result.verdicts()
        if verdicts != {program.expect}:
            report.failures.append(
                f"equivalence program {program.name!r}: expected verdict "
                f"{program.expect!r}, got {sorted(verdicts)}"
            )
            continue

        if program.expect == "clean":
            if any(d.is_error for d in result.diagnostics()):
                report.failures.append(
                    f"equivalence program {program.name!r}: false positive: "
                    + next(d for d in result.diagnostics() if d.is_error).message
                )
                continue
            for check in result.checks:
                if check.result.certified:
                    report.codegen_modules_certified += 1
                    report.codegen_values_checked += check.result.checked_values
                if check.bit_identical:
                    report.differential_matches += 1
        else:
            located = [
                c
                for c in result.checks
                if not c.result.certified and c.located
            ]
            if located:
                report.miscompiles_caught += 1
            else:
                report.failures.append(
                    f"equivalence program {program.name!r}: miscompile "
                    "rejected but no diagnostic carries a source location"
                )

        if not result.cross_check_ok:
            report.failures.append(
                f"equivalence program {program.name!r}: static certificate "
                "diverges from the dynamic differential check"
            )


def self_check(verbose: bool = False) -> SelfCheckReport:
    """Run all sweeps; the report's ``ok`` says whether everything held."""
    report = SelfCheckReport()
    _check_primitives(report)
    _check_hlo(report)
    _check_pipeline(report)
    _check_ownership(report)
    _check_tracing(report)
    _check_derivatives(report)
    _check_concurrency(report)
    _check_memory(report)
    _check_precision(report)
    _check_equivalence(report)
    if verbose:  # pragma: no cover
        print(report.summary())
    return report
