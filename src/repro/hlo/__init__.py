"""The XLA-analogue domain-specific compiler (HLO IR + JIT backend)."""

from repro.hlo.builder import HloBuilder
from repro.hlo.codegen import (
    CodegenExecutable,
    GeneratedStep,
    compile_step,
    emit_module,
    generate_certified,
)
from repro.hlo.compiler import (
    STATS,
    Executable,
    cache_keys,
    cache_size,
    clear_cache,
    compile_module,
    fingerprint,
)
from repro.hlo.ir import (
    ELEMENTWISE,
    F32,
    PRED,
    HloComputation,
    HloInstruction,
    HloModule,
    Shape,
)
from repro.hlo.parser import parse_module
from repro.hlo.passes import (
    algebraic_simplify,
    constant_fold,
    cse,
    dce,
    fuse_elementwise,
    optimize,
)
from repro.hlo.printer import print_module
from repro.hlo.verify import verify_computation, verify_module

__all__ = [
    "HloBuilder",
    "CodegenExecutable",
    "GeneratedStep",
    "compile_step",
    "emit_module",
    "generate_certified",
    "STATS",
    "Executable",
    "cache_keys",
    "cache_size",
    "clear_cache",
    "compile_module",
    "fingerprint",
    "ELEMENTWISE",
    "F32",
    "PRED",
    "HloComputation",
    "HloInstruction",
    "HloModule",
    "Shape",
    "parse_module",
    "algebraic_simplify",
    "constant_fold",
    "cse",
    "dce",
    "fuse_elementwise",
    "optimize",
    "print_module",
    "verify_computation",
    "verify_module",
]
