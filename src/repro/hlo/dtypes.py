"""Element-type support for the HLO layer.

The NumPy backend stores each HLO dtype as follows:

=======  ==================  =========================================
dtype    NumPy storage       notes
=======  ==================  =========================================
f16      ``np.float16``      native half precision (2 bytes)
bf16     ``np.float32``      *emulated*: values quantized to the bf16
                             grid (8-bit exponent, 7-bit mantissa)
                             after every operation, stored in f32
f32      ``np.float32``      the default compute type
f64      ``np.float64``      the dynamic-oracle reference type
pred     ``np.bool_``        comparison masks
=======  ==================  =========================================

NumPy has no bfloat16, so ``bf16`` is emulated by rounding every result
to the nearest representable bf16 value (round-to-nearest-even on the
top 16 bits of the f32 encoding).  The emulation is value-exact — every
intermediate holds a number representable in bf16 — but the *buffers*
are 4 bytes per element, which is why dynamic byte-exact memory
cross-checks are restricted to f16/f32/pred traces (see
:mod:`repro.analysis.memory`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HloError
from repro.hlo.ir import BF16, F16, F32, F64, PRED

#: HLO dtype -> NumPy storage dtype.
NUMPY_STORAGE = {
    F16: np.float16,
    BF16: np.float32,  # emulated (see module docstring)
    F32: np.float32,
    F64: np.float64,
    PRED: np.bool_,
}


def np_dtype_of(dtype: str) -> type:
    """The NumPy storage dtype backing an HLO element type."""
    try:
        return NUMPY_STORAGE[dtype]
    except KeyError:
        raise HloError(f"unknown element type {dtype!r}") from None


def quantize_bf16(array: np.ndarray) -> np.ndarray:
    """Round an f32 array to the nearest bf16-representable values.

    Works on the bit pattern: bf16 is the top 16 bits of an IEEE f32, so
    rounding adds half a ULP (adjusted for round-to-nearest-even) and
    truncates the low 16 bits.  Infinities pass through; NaNs stay NaN
    (the payload may change, which is fine — HLO has no NaN payloads).
    """
    a = np.ascontiguousarray(array, dtype=np.float32)
    bits = a.view(np.uint32)
    # Round-to-nearest-even: bias by 0x7FFF plus the current LSB of the
    # kept mantissa, then truncate.  NaNs are preserved explicitly so the
    # bias cannot carry a NaN encoding into the infinity encoding.
    nan_mask = np.isnan(a)
    rounded = ((bits + (0x7FFF + ((bits >> 16) & 1))) & 0xFFFF0000).astype(np.uint32)
    out = rounded.view(np.float32).copy()
    if nan_mask.any():
        out[nan_mask] = np.float32(np.nan)
    return out.reshape(array.shape)


def cast_array(array: np.ndarray, dtype: str) -> np.ndarray:
    """Cast a NumPy array to the storage of an HLO dtype.

    For bf16 this quantizes to the bf16 grid (keeping f32 storage); for
    every other dtype it is a plain ``astype``.  Casting to a narrower
    float saturates to ``inf`` exactly as hardware does (NumPy's float
    casts already overflow to inf).
    """
    array = np.asarray(array)
    if dtype == BF16:
        return quantize_bf16(array.astype(np.float32, copy=False))
    storage = np_dtype_of(dtype)
    if array.dtype == storage:
        return array
    with np.errstate(over="ignore"):
        return array.astype(storage)


@dataclass(frozen=True)
class DTypeInfo:
    """Float characteristics of an HLO element type (f64 math)."""

    dtype: str
    max: float  # largest finite magnitude
    smallest_normal: float  # below this, precision degrades (subnormals)
    smallest_subnormal: float  # below this, values flush to exactly zero
    eps: float  # spacing of 1.0 (2**-mantissa_bits)
    mantissa_bits: int  # explicit mantissa bits


def _np_info(dtype: str, np_dtype: type, mantissa_bits: int) -> DTypeInfo:
    fi = np.finfo(np_dtype)
    return DTypeInfo(
        dtype=dtype,
        max=float(fi.max),
        smallest_normal=float(fi.smallest_normal),
        smallest_subnormal=float(fi.smallest_subnormal),
        eps=float(fi.eps),
        mantissa_bits=mantissa_bits,
    )


#: bf16 by hand: f32 exponent range, 7 mantissa bits, no subnormal use in
#: practice (the emulation quantizes f32 subnormals, so keep f32's floor).
_BF16_INFO = DTypeInfo(
    dtype=BF16,
    max=3.3895313892515355e38,  # 0x7F7F0000
    smallest_normal=1.1754943508222875e-38,
    smallest_subnormal=9.183549615799121e-41,  # smallest bf16 subnormal
    eps=0.0078125,  # 2**-7
    mantissa_bits=7,
)

FINFO = {
    F16: _np_info(F16, np.float16, 10),
    BF16: _BF16_INFO,
    F32: _np_info(F32, np.float32, 23),
    F64: _np_info(F64, np.float64, 52),
}


def finfo(dtype: str) -> DTypeInfo:
    """Float characteristics of an HLO dtype (raises for ``pred``)."""
    try:
        return FINFO[dtype]
    except KeyError:
        raise HloError(f"{dtype!r} is not a float element type") from None


def ulp(dtype: str, magnitude: float) -> float:
    """The unit-in-the-last-place of ``dtype`` at ``magnitude``.

    Uses the dtype's relative spacing (``eps``) scaled to the magnitude,
    floored at the subnormal spacing so ULPs near zero stay positive.
    """
    info = finfo(dtype)
    return max(abs(magnitude) * info.eps, info.smallest_subnormal)
