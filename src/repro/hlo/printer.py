"""Text format for HLO modules (printer half of the round-trip)."""

from __future__ import annotations

from repro.hlo.ir import HloComputation, HloInstruction, HloModule


def _literal_text(inst: HloInstruction) -> str:
    arr = inst.literal
    if arr.ndim == 0:
        return repr(float(arr))
    return repr(arr.tolist())


def print_instruction(inst: HloInstruction, root: bool = False) -> str:
    prefix = "ROOT " if root else ""
    ops = ", ".join(f"%{o.name}" for o in inst.operands)
    extra = ""
    if inst.opcode == "constant":
        extra = _literal_text(inst)
    elif inst.opcode == "parameter":
        extra = str(inst.parameter_number)
    body = f"{inst.opcode}({ops}"
    if extra:
        body = f"{inst.opcode}({extra}" if not ops else f"{inst.opcode}({ops}; {extra}"
    body += inst.attr_string()
    body += ")"
    return f"{prefix}%{inst.name} = {inst.shape} {body}"


def print_computation(comp: HloComputation, indent: str = "") -> str:
    lines = [f"{indent}{comp.name} {{"]
    order = comp.post_order()
    ordered_ids = {i.id for i in order}
    # Parameters always print (even if unused) so signatures survive DCE.
    for param in comp.parameters:
        if param.id not in ordered_ids:
            lines.append(f"{indent}  {print_instruction(param)}")
    for inst in order:
        if inst.opcode == "fusion":
            inner = print_computation(inst.fused_computation, indent + "  ")
            lines.append(f"{indent}  // fused computation:\n{inner}")
        lines.append(
            f"{indent}  {print_instruction(inst, root=inst is comp.root)}"
        )
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def print_module(module: HloModule) -> str:
    header = f"HloModule {module.name}"
    return f"{header}\n\nENTRY {print_computation(module.entry)}\n"
