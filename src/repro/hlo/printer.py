"""Text format for HLO modules (printer half of the round-trip).

With ``annotate_buffers=True``, :func:`print_module` appends the static
memory planner's verdict to every instruction — ``{buf=N, live=[i..j]}``
for planned buffers, ``{alias}``/``{resident}`` for zero-byte values —
so buffer assignments are readable next to the IR.  The default output is
byte-identical to the unannotated printer.
"""

from __future__ import annotations

from typing import Optional

from repro.hlo.ir import HloComputation, HloInstruction, HloModule


def _literal_text(inst: HloInstruction) -> str:
    arr = inst.literal
    if arr.ndim == 0:
        return repr(float(arr))
    return repr(arr.tolist())


def print_instruction(
    inst: HloInstruction, root: bool = False, annotation: Optional[str] = None
) -> str:
    prefix = "ROOT " if root else ""
    ops = ", ".join(f"%{o.name}" for o in inst.operands)
    extra = ""
    if inst.opcode == "constant":
        extra = _literal_text(inst)
    elif inst.opcode == "parameter":
        extra = str(inst.parameter_number)
    body = f"{inst.opcode}({ops}"
    if extra:
        body = f"{inst.opcode}({extra}" if not ops else f"{inst.opcode}({ops}; {extra}"
    body += inst.attr_string()
    body += ")"
    line = f"{prefix}%{inst.name} = {inst.shape} {body}"
    if annotation:
        line += f"  {annotation}"
    return line


def print_computation(
    comp: HloComputation,
    indent: str = "",
    annotations: Optional[dict[int, str]] = None,
) -> str:
    lines = [f"{indent}{comp.name} {{"]
    order = comp.post_order()
    ordered_ids = {i.id for i in order}
    # Parameters always print (even if unused) so signatures survive DCE.
    for param in comp.parameters:
        if param.id not in ordered_ids:
            lines.append(f"{indent}  {print_instruction(param)}")
    for inst in order:
        if inst.opcode == "fusion":
            inner = print_computation(inst.fused_computation, indent + "  ")
            lines.append(f"{indent}  // fused computation:\n{inner}")
        note = annotations.get(inst.id) if annotations else None
        lines.append(
            f"{indent}  "
            f"{print_instruction(inst, root=inst is comp.root, annotation=note)}"
        )
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def print_module(module: HloModule, annotate_buffers: bool = False) -> str:
    header = f"HloModule {module.name}"
    annotations = None
    if annotate_buffers:
        # Lazy import: the printer is a leaf module the analysis layer
        # depends on; only the opt-in path reaches back up.
        from repro.analysis.memory import buffer_annotations

        annotations = buffer_annotations(module)
    body = print_computation(module.entry, annotations=annotations)
    return f"{header}\n\nENTRY {body}\n"
