"""Flat-NumPy codegen: one Python step function per scheduled module.

``emit_module`` turns an optimized (scheduled) HLO module into the source
text of a single flat Python function: every instruction becomes one
assignment (fusion regions are inlined), constants are hoisted into a
per-module pool, and values the PR-7 buffer plan assigns to the same
buffer share one Python variable — rebinding the name is what retires the
old array, so the generated code realizes the planner's reuse certificate
directly.  Dtype-narrowing semantics follow the interpreted backend
exactly: narrow results round through ``cast_array``, f16 contraction
operands widen for f32 accumulation, and reduces without an
``accum="f32"`` override run the element-serial narrow accumulator.

Nothing emitted here runs unverified: :func:`generate_certified` hands
the source to the translation validator (``repro.analysis.equivalence``)
and installs a :class:`CodegenExecutable` only when the equivalence proof
goes through; a rejected translation falls back to the interpreted
executable unchanged.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import HloError
from repro.hlo.compiler import (
    _BINARY_KERNELS,
    _COMPARE,
    _UNARY_KERNELS,
    _f32_accum,
    _instruction_cost,
    _narrow_accum_reduce,
    Executable,
    fingerprint,
)
from repro.hlo.dtypes import cast_array, np_dtype_of
from repro.hlo.ir import (
    BF16,
    F16,
    F64,
    NARROW_DTYPES,
    HloInstruction,
    HloModule,
)
from repro.locks import named_rlock
from repro.runtime import memory
from repro.runtime.kernels import ITEMSIZE, KERNELS
#: Element dtypes whose results the interpreted backend coerces after
#: every instruction (``evaluate_instruction``); codegen must match.
_COERCED_DTYPES = (F16, BF16, F64)

_REDUCE_KERNELS = {"sum": "reduce_sum", "mean": "reduce_mean", "max": "reduce_max"}


def freeze(value):
    """Canonicalize an attribute literal for source emission / term keys.

    Lists become tuples (NumPy accepts either; the emitted source and the
    validator's term payloads must agree on one), NumPy scalars become
    Python scalars.  Shared with ``repro.analysis.equivalence`` so both
    sides of the translation proof freeze literals identically.
    """
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, np.generic):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise HloError(f"unsupported attribute literal for codegen: {value!r}")


def _lit(value) -> str:
    return repr(freeze(value))


@dataclass(frozen=True)
class GeneratedStep:
    """The emitted flat function for one module (pure data, no code object).

    ``source`` is deterministic for a canonical module: variable names
    derive from parameter numbers, buffer-plan slots, and schedule
    positions — never from global instruction ids.
    """

    module_name: str
    source: str
    #: Hoisted constant pool, exactly the values ``evaluate_instruction``
    #: would produce for each constant (narrow literals pre-coerced).
    consts: tuple
    n_parameters: int
    #: Device-cost replay: (bump_busy_until, n_ops, flops, traffic) per
    #: launch, in schedule order — identical accounting to the interpreter.
    launches: tuple
    #: (value label, source line number) per emitted assignment, in order.
    emitted: tuple
    filename: str

    @property
    def line_count(self) -> int:
        return len(self.source.splitlines())


def _hoisted_constant(inst: HloInstruction):
    """The exact run-time value of a constant under the interpreter."""
    dt = inst.shape.dtype
    if dt in _COERCED_DTYPES:
        return cast_array(inst.literal, dt)
    return inst.literal


def _acc_operand(operand: HloInstruction, expr: str) -> str:
    """Wrap an f16 contraction operand for f32 accumulation (PR-8)."""
    return f"f32acc({expr})" if operand.shape.dtype == F16 else expr


def _raw_expr(inst: HloInstruction, a: list[str]) -> str:
    """The expression computing ``inst`` before result coercion — a
    source-level mirror of ``_evaluate_raw``."""
    op = inst.opcode
    at = inst.attrs
    if op == "convert":
        return f"cast({a[0]}, {at['new_dtype']!r})"
    if op in _UNARY_KERNELS:
        return f"K[{_UNARY_KERNELS[op]!r}]({a[0]})"
    if op in _BINARY_KERNELS:
        return f"K[{_BINARY_KERNELS[op]!r}]({a[0]}, {a[1]})"
    if op == "compare":
        return f"CMP[{at['direction']!r}]({a[0]}, {a[1]})"
    if op == "not":
        return f"np.logical_not({a[0]})"
    if op == "select":
        return f"K['select']({a[0]}, {a[1]}, {a[2]})"
    if op == "broadcast":
        return f"K['broadcast_to']({a[0]}, {_lit(at['dims'])})"
    if op == "reshape":
        return f"K['reshape']({a[0]}, {_lit(at['dims'])})"
    if op == "transpose":
        return f"K['transpose']({a[0]}, {_lit(at['perm'])})"
    if op == "pad":
        return f"K['pad']({a[0]}, {_lit(at['paddings'])})"
    if op == "slice":
        return f"K['slice']({a[0]}, {_lit(at['starts'])}, {_lit(at['sizes'])})"
    if op == "concatenate":
        return "K['concat'](" + ", ".join(a) + f", {_lit(at['axis'])})"
    if op == "dot":
        x = _acc_operand(inst.operands[0], a[0])
        y = _acc_operand(inst.operands[1], a[1])
        return f"K['matmul']({x}, {y})"
    if op == "convolution":
        x = _acc_operand(inst.operands[0], a[0])
        y = _acc_operand(inst.operands[1], a[1])
        return (
            f"K['conv2d']({x}, {y}, {_lit(at['stride'])}, {_lit(at['padding'])})"
        )
    if op == "conv_grad_input":
        return (
            f"K['conv2d_grad_input']({a[0]}, {a[1]}, {_lit(at['input_dims'])}, "
            f"{_lit(at['stride'])}, {_lit(at['padding'])})"
        )
    if op == "conv_grad_filter":
        return (
            f"K['conv2d_grad_filter']({a[0]}, {a[1]}, {_lit(at['filter_dims'])}, "
            f"{_lit(at['stride'])}, {_lit(at['padding'])})"
        )
    if op == "reduce":
        kind = at["kind"]
        x = a[0]
        if at.get("accum") == "f32":
            # The AMP discipline: widen any non-f32 storage before summing.
            if np_dtype_of(inst.operands[0].shape.dtype) != np.float32:
                x = f"{x}.astype(np.float32)"
        elif inst.shape.dtype in NARROW_DTYPES and kind in ("sum", "mean"):
            return (
                f"narrow_reduce({x}, {_lit(at['axes'])}, "
                f"{_lit(at['keepdims'])}, {kind!r}, {inst.shape.dtype!r})"
            )
        return (
            f"K[{_REDUCE_KERNELS[kind]!r}]({x}, {_lit(at['axes'])}, "
            f"{_lit(at['keepdims'])})"
        )
    if op == "avg_pool":
        return f"K['avg_pool2d']({a[0]}, {_lit(at['pool'])}, {_lit(at['stride'])})"
    if op == "avg_pool_grad":
        return (
            f"K['avg_pool2d_grad']({a[0]}, {_lit(at['input_dims'])}, "
            f"{_lit(at['pool'])}, {_lit(at['stride'])})"
        )
    if op == "max_pool":
        return f"K['max_pool2d']({a[0]}, {_lit(at['pool'])}, {_lit(at['stride'])})"
    if op == "max_pool_grad":
        return (
            f"K['max_pool2d_grad']({a[0]}, {a[1]}, {_lit(at['pool'])}, "
            f"{_lit(at['stride'])})"
        )
    if op == "one_hot":
        return f"K['one_hot']({a[0]}, {_lit(at['depth'])})"
    if op == "iota":
        return f"K['iota']({_lit(at['n'])})"
    if op == "softmax_ce":
        return f"K['softmax_cross_entropy']({a[0]}, {a[1]})"
    if op == "softmax_ce_grad":
        return f"K['softmax_cross_entropy_grad']({a[0]}, {a[1]})"
    raise HloError(f"no codegen lowering for opcode {op!r}")


def _coerced_expr(inst: HloInstruction, a: list[str]) -> str:
    raw = _raw_expr(inst, a)
    dt = inst.shape.dtype
    if inst.opcode != "convert" and dt in _COERCED_DTYPES:
        # convert is already a single cast; re-casting would be redundant
        # (cast_array is idempotent per dtype).
        return f"cast({raw}, {dt!r})"
    return raw


def emit_module(module: HloModule, key: Optional[str] = None) -> GeneratedStep:
    """Emit the flat step function for ``module`` (already optimized).

    ``key`` is a short display key used only for the synthetic filename
    and the buffer plan's metadata; it never affects the emitted source.
    """
    # The planner lives in the analysis layer but depends only on the HLO
    # IR; import lazily to keep the layering acyclic.
    from repro.analysis.memory.bufferplan import plan_buffers
    from repro.analysis.memory.liveness import analyze_liveness

    schedule = module.schedule()
    plan = plan_buffers(analyze_liveness(module), key)
    root = module.entry.root
    n_params = len(module.entry.parameters)

    consts: list = []
    names: dict[int, str] = {}
    lines: list[str] = []
    emitted: list[tuple[str, int]] = []
    launches: list[tuple[bool, int, float, float]] = []

    def hoist(inst: HloInstruction) -> str:
        consts.append(_hoisted_constant(inst))
        return f"C[{len(consts) - 1}]"

    def emit_line(target: str, expr: str, label: str) -> None:
        lines.append(f"{target} = {expr}")
        # Line 1 is the def header, so body line i is source line i + 1.
        emitted.append((label, len(lines) + 1))

    def target_name(inst: HloInstruction, pos: int) -> str:
        assignment = plan.assignments.get(inst.id)
        if assignment is not None:
            return f"b{assignment.buffer}"
        return f"v{pos}"

    def emit_fusion(fusion: HloInstruction, ext: list[str], pos: int) -> str:
        inner = fusion.fused_computation
        inner_names: dict[int, str] = {}
        inner_root = inner.root
        target = target_name(fusion, pos)
        n_ops = 0
        flops_total = 0.0
        for j, inst in enumerate(inner.post_order()):
            if inst.opcode == "parameter":
                inner_names[inst.id] = ext[inst.parameter_number]
                continue
            if inst.opcode == "constant":
                inner_names[inst.id] = hoist(inst)
                continue
            expr = _coerced_expr(inst, [inner_names[o.id] for o in inst.operands])
            if inst is inner_root:
                tname, label = target, f"%{fusion.name}"
            else:
                tname, label = f"t{pos}_{j}", f"%{fusion.name}.{inst.name}"
            emit_line(tname, expr, label)
            inner_names[inst.id] = tname
            n_ops += 1
            flops, _ = _instruction_cost(
                inst, [o.shape.dims for o in inst.operands]
            )
            flops_total += flops
        if inner_root.opcode in ("parameter", "constant"):
            emit_line(target, inner_names[inner_root.id], f"%{fusion.name}")
        # One launch; traffic counts only the region's inputs + output.
        traffic = (
            fusion.shape.num_elements
            + sum(o.shape.num_elements for o in fusion.operands)
        ) * ITEMSIZE
        launches.append((False, max(n_ops, 1), flops_total, traffic))
        return target

    for pos, inst in enumerate(schedule):
        op = inst.opcode
        if op == "parameter":
            names[inst.id] = f"p{inst.parameter_number}"
            continue
        if op == "constant":
            names[inst.id] = hoist(inst)
            continue
        if op == "tuple":
            if inst is root:
                continue  # emitted directly in the return statement
            operands = [names[o.id] for o in inst.operands]
            tail = "," if len(operands) == 1 else ""
            target = target_name(inst, pos)
            emit_line(target, "(" + ", ".join(operands) + tail + ")", f"%{inst.name}")
            names[inst.id] = target
            continue
        a = [names[o.id] for o in inst.operands]
        if op == "fusion":
            names[inst.id] = emit_fusion(inst, a, pos)
            continue
        target = target_name(inst, pos)
        emit_line(target, _coerced_expr(inst, a), f"%{inst.name}")
        names[inst.id] = target
        flops, traffic = _instruction_cost(
            inst, [o.shape.dims for o in inst.operands]
        )
        launches.append((True, 1, flops, traffic))

    if root.opcode == "tuple":
        operands = [names[o.id] for o in root.operands]
        tail = "," if len(operands) == 1 else ""
        ret = "(" + ", ".join(operands) + tail + ")"
    else:
        ret = names[root.id]

    header = "def step(" + ", ".join(f"p{i}" for i in range(n_params)) + "):\n"
    body = "".join(f"    {line}\n" for line in lines)
    source = header + body + f"    return {ret}\n"
    return GeneratedStep(
        module_name=module.name,
        source=source,
        consts=tuple(consts),
        n_parameters=n_params,
        launches=tuple(launches),
        emitted=tuple(emitted),
        filename=f"<codegen:{key}>" if key else "<codegen>",
    )


def compile_step(generated: GeneratedStep) -> Callable:
    """``compile()``/``exec`` the emitted source once, returning the function.

    The namespace binds exactly the helpers the emitter references — the
    kernel table, the compare table, the constant pool, and the three
    dtype-semantics helpers shared with the interpreter.
    """
    namespace = {
        "np": np,
        "K": KERNELS,
        "CMP": _COMPARE,
        "C": generated.consts,
        "cast": cast_array,
        "f32acc": _f32_accum,
        "narrow_reduce": _narrow_accum_reduce,
    }
    code = compile(generated.source, generated.filename, "exec")
    exec(code, namespace)
    return namespace["step"]


class CodegenExecutable:
    """A certified generated step function with the ``Executable`` interface.

    Immutable after construction: the compiled function is pure (locals
    only), the cost replay is a static tuple, and the wrapped interpreted
    executable handles the memory-tracked path — so instances are shared
    read-only across replica threads exactly like ``Executable``.
    """

    def __init__(
        self,
        module: HloModule,
        interpreted: Executable,
        generated: GeneratedStep,
        fn: Callable,
    ) -> None:
        self.module = module
        self.interpreted = interpreted
        self.generated = generated
        self.order = interpreted.order
        self.n_parameters = interpreted.n_parameters
        self.kernel_count = interpreted.kernel_count
        self._fn = fn
        self._launches = generated.launches

    def run(
        self,
        args: Sequence[np.ndarray],
        device=None,
        host_time: float = 0.0,
    ):
        if len(args) != self.n_parameters:
            raise HloError(
                f"executable expects {self.n_parameters} args, got {len(args)}"
            )
        if memory.intermediates_tracked():
            # The memory oracle observes per-instruction buffers; only the
            # interpreted executor surfaces them.  Same values either way —
            # that is exactly what the certificate proves.
            return self.interpreted.run(args, device, host_time)
        result = self._fn(*[np.asarray(a) for a in args])
        if device is not None:
            for bump, n_ops, flops, traffic in self._launches:
                if bump:
                    device.busy_until = max(device.busy_until, host_time)
                device.launch_fused(n_ops, flops, traffic, host_time)
        return result


@dataclass
class CodegenStats:
    """Counters of the codegen pipeline (guarded by the codegen lock)."""

    emitted: int = 0
    certified: int = 0
    rejected: int = 0
    installs: int = 0
    source_cache_hits: int = 0

    def reset(self) -> None:
        with _LOCK:
            self.emitted = 0
            self.certified = 0
            self.rejected = 0
            self.installs = 0
            self.source_cache_hits = 0


STATS = CodegenStats()

#: Guards the emitted-source cache and STATS: compile workers, replicas,
#: and analysis sweeps all reach ``generate_certified`` concurrently.
#: A leaf lock — never held while taking any other repro lock.
_LOCK = named_rlock("hlo.codegen.cache")

#: Emitted source + validation verdict per compiler cache key: emission
#: and validation are deterministic, so one proof serves every recompile.
_SOURCE_CACHE: dict[str, tuple] = {}


def clear_source_cache() -> None:
    with _LOCK:
        _SOURCE_CACHE.clear()


def source_cache_size() -> int:
    with _LOCK:
        return len(_SOURCE_CACHE)


def _short_key(cache_key: str) -> str:
    return hashlib.sha256(cache_key.encode()).hexdigest()[:12]


def generate_certified(
    module: HloModule,
    interpreted: Executable,
    key: Optional[str] = None,
):
    """Emit + validate ``module``; return certified codegen or the fallback.

    Only a *certified* translation is wrapped in :class:`CodegenExecutable`;
    a rejected one returns ``interpreted`` unchanged (the caller's cache
    then serves the interpreted executable for this key, the same fallback
    path a cold async compile charges).
    """
    # The validator lives in the analysis layer; import lazily so the HLO
    # package never depends on analysis at import time.
    from repro.analysis.equivalence.validator import validate_translation

    cache_key = key if key is not None else fingerprint(module)
    with _LOCK:
        cached = _SOURCE_CACHE.get(cache_key)
        if cached is not None:
            STATS.source_cache_hits += 1
    if cached is None:
        generated = emit_module(module, _short_key(cache_key))
        result = validate_translation(
            module, generated.source, generated.consts, filename=generated.filename
        )
        with _LOCK:
            cached = _SOURCE_CACHE.get(cache_key)
            if cached is None:
                _SOURCE_CACHE[cache_key] = cached = (generated, result)
                STATS.emitted += 1
                if result.certified:
                    STATS.certified += 1
                else:
                    STATS.rejected += 1
    generated, result = cached
    if not result.certified:
        return interpreted
    fn = compile_step(generated)
    with _LOCK:
        STATS.installs += 1
    return CodegenExecutable(module, interpreted, generated, fn)
