"""HLO module verification.

The builder (:mod:`repro.hlo.builder`) runs shape inference while the graph
is constructed, but nothing re-checks the invariants after optimization
passes rewrite the module.  This verifier closes that gap:

* **operand consistency / def-before-use** — every operand of every
  reachable instruction is a member of its computation;
* **acyclicity** — the instruction graph is a DAG (a rewrite that
  accidentally creates a cycle would hang ``post_order``'s consumers);
* **shape/dtype agreement** — re-runs :mod:`repro.hlo.shapes` inference
  against each instruction's recorded :class:`~repro.hlo.ir.Shape`;
* **parameter discipline** — parameter numbers are present, unique, and
  dense ``0..n-1``; constants carry literals matching their shape;
* **fusion-region well-formedness** — a ``fusion`` instruction's inner
  computation has one parameter per outer operand with matching shapes, a
  root whose shape equals the fusion's, and contains only elementwise ops,
  constants, broadcasts, and parameters.

All problems found are reported in a single :class:`~repro.errors.HloError`
with instruction-level locations (``computation:%name``), mirroring the
batched-diagnostics style of the SIL verifiers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HloError, ShapeError
from repro.hlo import shapes as si
from repro.hlo.ir import (
    ELEMENTWISE,
    ELEMENTWISE_BINARY,
    ELEMENTWISE_UNARY,
    HloComputation,
    HloInstruction,
    HloModule,
    Shape,
)

#: Opcodes legal inside a fusion region.
_FUSION_REGION_OPCODES = ELEMENTWISE | {"constant", "broadcast", "parameter"}


def verify_module(module: HloModule) -> None:
    """Raise :class:`HloError` listing every invariant violated by
    ``module``; returns normally on a well-formed module."""
    problems = verify_computation(module.entry, path=module.name)
    if problems:
        raise HloError(
            f"HLO module {module.name!r}: {len(problems)} verification "
            "problem(s):\n" + "\n".join(problems)
        )


def verify_computation(comp: HloComputation, path: str = "") -> list[str]:
    """Collect (not raise) every problem in ``comp`` and nested regions."""
    where = f"{path}/{comp.name}" if path else comp.name
    problems: list[str] = []

    if comp.root is None:
        return [f"{where}: computation has no root"]

    members = {id(i) for i in comp.instructions}
    if id(comp.root) not in members:
        problems.append(
            f"{where}: root %{comp.root.name} is not a member instruction"
        )

    cycle = _find_cycle(comp)
    if cycle is not None:
        problems.append(
            f"{where}: instruction graph has a cycle through "
            + " -> ".join(f"%{i.name}" for i in cycle)
        )
        return problems  # shape inference below would not terminate sanely

    # Reachable = root plus everything feeding it; parameters always checked.
    reachable = comp.post_order()
    reachable_ids = {i.id for i in reachable}
    checked = list(reachable) + [
        p for p in comp.parameters if p.id not in reachable_ids
    ]

    param_numbers: list[int] = []
    for inst in checked:
        loc = f"{where}:%{inst.name}"
        for op in inst.operands:
            if id(op) not in members:
                problems.append(
                    f"{loc}: operand %{op.name} is not defined in this "
                    "computation (def-before-use violation)"
                )
        if inst.opcode == "parameter":
            if inst.parameter_number is None:
                problems.append(f"{loc}: parameter without a parameter_number")
            else:
                param_numbers.append(inst.parameter_number)
        problems.extend(_check_shape(inst, loc))
        if inst.opcode == "fusion":
            problems.extend(_check_fusion(inst, loc, where))

    if param_numbers and sorted(param_numbers) != list(range(len(param_numbers))):
        problems.append(
            f"{where}: parameter numbers {sorted(param_numbers)} are not "
            f"dense 0..{len(param_numbers) - 1}"
        )
    return problems


def _find_cycle(comp: HloComputation) -> list[HloInstruction] | None:
    """Iterative three-color DFS over the operand graph."""
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    for start in comp.instructions:
        if color.get(start.id, WHITE) != WHITE:
            continue
        stack: list[tuple[HloInstruction, int]] = [(start, 0)]
        color[start.id] = GREY
        trail = [start]
        while stack:
            inst, idx = stack.pop()
            if idx < len(inst.operands):
                stack.append((inst, idx + 1))
                op = inst.operands[idx]
                c = color.get(op.id, WHITE)
                if c == GREY:
                    return trail + [op]
                if c == WHITE:
                    color[op.id] = GREY
                    trail.append(op)
                    stack.append((op, 0))
            else:
                color[inst.id] = BLACK
                if trail and trail[-1] is inst:
                    trail.pop()
    return None


# ---------------------------------------------------------------------------
# Shape re-inference.
# ---------------------------------------------------------------------------


def _check_shape(inst: HloInstruction, loc: str) -> list[str]:
    try:
        expected = _infer_shape(inst)
    except ShapeError as exc:
        return [f"{loc}: shape inference failed: {exc}"]
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        return [f"{loc}: malformed instruction: {exc!r}"]
    if expected is None:
        return []
    if expected.dims != inst.shape.dims or expected.dtype != inst.shape.dtype:
        return [
            f"{loc}: recorded shape {inst.shape} does not match inferred "
            f"shape {expected}"
        ]
    return []


def _infer_shape(inst: HloInstruction) -> Shape | None:
    op = inst.opcode
    operands = inst.operands
    attrs = inst.attrs

    if op == "parameter":
        return None  # parameter shapes are the signature; nothing to infer
    if op == "constant":
        if inst.literal is None:
            raise ShapeError("constant without a literal")
        return Shape(tuple(int(d) for d in np.asarray(inst.literal).shape),
                     inst.shape.dtype)
    if op in ELEMENTWISE_BINARY:
        return si.infer_elementwise_binary(op, operands[0].shape, operands[1].shape)
    if op in ELEMENTWISE_UNARY:
        return operands[0].shape
    if op == "select":
        return si.infer_select(
            operands[0].shape, operands[1].shape, operands[2].shape
        )
    if op == "broadcast":
        return si.infer_broadcast(operands[0].shape, tuple(attrs["dims"]))
    if op == "reshape":
        return si.infer_reshape(operands[0].shape, tuple(attrs["dims"]))
    if op == "transpose":
        return si.infer_transpose(operands[0].shape, tuple(attrs["perm"]))
    if op == "convert":
        return si.infer_convert(operands[0].shape, attrs["new_dtype"])
    if op == "dot":
        return si.infer_dot(operands[0].shape, operands[1].shape)
    if op == "convolution":
        return si.infer_conv(
            operands[0].shape, operands[1].shape, attrs["stride"], attrs["padding"]
        )
    if op == "conv_grad_input":
        return Shape(tuple(attrs["input_dims"]), inst.shape.dtype)
    if op == "conv_grad_filter":
        return Shape(tuple(attrs["filter_dims"]), inst.shape.dtype)
    if op == "reduce":
        return si.infer_reduce(operands[0].shape, attrs["axes"], attrs["keepdims"])
    if op == "pad":
        return si.infer_pad(operands[0].shape, attrs["paddings"])
    if op == "slice":
        return si.infer_slice(operands[0].shape, attrs["starts"], attrs["sizes"])
    if op == "concatenate":
        return si.infer_concat([o.shape for o in operands], attrs["axis"])
    if op == "iota":
        return Shape((attrs["n"],), inst.shape.dtype)
    if op == "one_hot":
        return Shape(operands[0].shape.dims + (attrs["depth"],), inst.shape.dtype)
    if op in ("avg_pool", "max_pool"):
        return si.infer_pool(operands[0].shape, attrs["pool"], attrs["stride"])
    if op == "avg_pool_grad":
        return Shape(tuple(attrs["input_dims"]), inst.shape.dtype)
    if op == "max_pool_grad":
        return operands[0].shape
    if op == "softmax_ce":
        return Shape((), inst.shape.dtype)
    if op == "softmax_ce_grad":
        return operands[0].shape
    if op == "tuple":
        return Shape((len(operands),), "tuple")
    if op == "fusion":
        inner = inst.fused_computation
        if inner is None or inner.root is None:
            raise ShapeError("fusion without a fused computation root")
        return inner.root.shape
    return None  # unknown opcodes are rejected by HloInstruction.__init__


def _check_fusion(inst: HloInstruction, loc: str, path: str) -> list[str]:
    problems: list[str] = []
    inner = inst.fused_computation
    if inner is None:
        return [f"{loc}: fusion instruction without a fused computation"]
    if len(inner.parameters) != len(inst.operands):
        problems.append(
            f"{loc}: fusion region has {len(inner.parameters)} parameter(s) "
            f"for {len(inst.operands)} operand(s)"
        )
    by_number = sorted(
        inner.parameters, key=lambda p: (p.parameter_number is None, p.parameter_number)
    )
    for param, operand in zip(by_number, inst.operands):
        if param.shape.dims != operand.shape.dims:
            problems.append(
                f"{loc}: fusion parameter %{param.name} shape {param.shape} "
                f"!= operand %{operand.name} shape {operand.shape}"
            )
    if inner.root is not None and inner.root.shape.dims != inst.shape.dims:
        problems.append(
            f"{loc}: fusion shape {inst.shape} != region root shape "
            f"{inner.root.shape}"
        )
    for region_inst in inner.instructions:
        if region_inst.opcode not in _FUSION_REGION_OPCODES:
            problems.append(
                f"{loc}: non-fusable opcode {region_inst.opcode!r} inside "
                "fusion region"
            )
    problems.extend(verify_computation(inner, path=path))
    return problems
