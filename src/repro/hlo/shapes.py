"""Shape inference for HLO instructions.

Each builder call runs inference before constructing the instruction, so an
ill-shaped graph is rejected at trace-lowering time with a precise
diagnostic (XLA behaves the same way).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ShapeError
from repro.hlo.ir import DTYPE_BYTES, PRED, Shape


def broadcast_shapes(a: Shape, b: Shape) -> tuple[int, ...]:
    try:
        return tuple(int(d) for d in np.broadcast_shapes(a.dims, b.dims))
    except ValueError as exc:
        raise ShapeError(f"cannot broadcast {a} with {b}") from exc


def promote_dtypes(a: Shape, b: Shape, what: str) -> str:
    """The element type of a binary op over ``a`` and ``b``.

    Matching dtypes pass through; a predicate promotes to the other
    operand's dtype (masks act as 0/1 values); anything else is a dtype
    mismatch — mixed-precision programs must insert explicit ``convert``
    instructions rather than rely on implicit promotion.
    """
    if a.dtype == b.dtype:
        return a.dtype
    if a.dtype == PRED:
        return b.dtype
    if b.dtype == PRED:
        return a.dtype
    raise ShapeError(f"{what} dtype mismatch: {a} vs {b} (insert a convert)")


def infer_elementwise_binary(opcode: str, a: Shape, b: Shape) -> Shape:
    dims = broadcast_shapes(a, b)
    dtype = promote_dtypes(a, b, opcode)
    if opcode == "compare":
        dtype = PRED
    return Shape(dims, dtype)


def infer_select(pred: Shape, on_true: Shape, on_false: Shape) -> Shape:
    if on_true.dims != on_false.dims:
        raise ShapeError(f"select branches disagree: {on_true} vs {on_false}")
    dims = broadcast_shapes(pred, on_true)
    return Shape(dims, promote_dtypes(on_true, on_false, "select"))


def infer_convert(operand: Shape, new_dtype: str) -> Shape:
    if new_dtype not in DTYPE_BYTES:
        raise ShapeError(f"convert to unknown element type {new_dtype!r}")
    return Shape(operand.dims, new_dtype)


def infer_broadcast(operand: Shape, out_dims: tuple[int, ...]) -> Shape:
    try:
        np.broadcast_shapes(operand.dims, out_dims)
    except ValueError as exc:
        raise ShapeError(f"cannot broadcast {operand} to {out_dims}") from exc
    return Shape(tuple(out_dims), operand.dtype)


def infer_reshape(operand: Shape, new_dims: tuple[int, ...]) -> Shape:
    if math.prod(new_dims) != operand.num_elements:
        raise ShapeError(
            f"reshape of {operand} to {new_dims}: element count mismatch"
        )
    return Shape(tuple(new_dims), operand.dtype)


def infer_transpose(operand: Shape, perm: tuple[int, ...]) -> Shape:
    if sorted(perm) != list(range(operand.rank)):
        raise ShapeError(f"bad transpose permutation {perm} for {operand}")
    return Shape(tuple(operand.dims[p] for p in perm), operand.dtype)


def infer_dot(a: Shape, b: Shape) -> Shape:
    if a.rank < 1 or b.rank < 2:
        raise ShapeError(f"dot needs matrices, got {a} and {b}")
    if a.dims[-1] != b.dims[-2]:
        raise ShapeError(f"dot contraction mismatch: {a} @ {b}")
    dtype = promote_dtypes(a, b, "dot")
    batch = a.dims[:-2] if a.rank > 2 else ()
    lead = a.dims[-2:-1] if a.rank >= 2 else ()
    return Shape(batch + lead + (b.dims[-1],), dtype)


def infer_reduce(operand: Shape, axes, keepdims: bool) -> Shape:
    if axes is None:
        axes = tuple(range(operand.rank))
    axes = tuple(a % operand.rank for a in axes)
    dims = []
    for i, d in enumerate(operand.dims):
        if i in axes:
            if keepdims:
                dims.append(1)
        else:
            dims.append(d)
    return Shape(tuple(dims), operand.dtype)


def conv_output_dims(
    input_dims: tuple[int, ...],
    filter_dims: tuple[int, ...],
    stride: int,
    padding: str,
) -> tuple[int, ...]:
    n, h, w, cin = input_dims
    kh, kw, fcin, cout = filter_dims
    if cin != fcin:
        raise ShapeError(
            f"conv input channels {cin} != filter channels {fcin}"
        )
    if padding == "same":
        oh = math.ceil(h / stride)
        ow = math.ceil(w / stride)
    elif padding == "valid":
        if h < kh or w < kw:
            raise ShapeError("conv window larger than input")
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
    else:
        raise ShapeError(f"unknown padding {padding!r}")
    return (n, oh, ow, cout)


def infer_conv(input: Shape, filters: Shape, stride: int, padding: str) -> Shape:
    if input.rank != 4 or filters.rank != 4:
        raise ShapeError(f"conv expects NHWC and KKIO, got {input}, {filters}")
    dtype = promote_dtypes(input, filters, "convolution")
    return Shape(conv_output_dims(input.dims, filters.dims, stride, padding), dtype)


def infer_pool(input: Shape, pool: int, stride: int) -> Shape:
    if input.rank != 4:
        raise ShapeError(f"pool expects NHWC, got {input}")
    n, h, w, c = input.dims
    if h < pool or w < pool:
        raise ShapeError("pool window larger than input")
    oh = (h - pool) // stride + 1
    ow = (w - pool) // stride + 1
    return Shape((n, oh, ow, c), input.dtype)


def infer_pad(operand: Shape, paddings) -> Shape:
    if len(paddings) != operand.rank:
        raise ShapeError("pad config rank mismatch")
    dims = tuple(
        d + lo + hi for d, (lo, hi) in zip(operand.dims, paddings)
    )
    return Shape(dims, operand.dtype)


def infer_slice(operand: Shape, starts, sizes) -> Shape:
    if len(starts) != operand.rank or len(sizes) != operand.rank:
        raise ShapeError("slice config rank mismatch")
    for d, b, s in zip(operand.dims, starts, sizes):
        if b < 0 or b + s > d:
            raise ShapeError(f"slice [{b}:{b+s}] out of bounds for dim {d}")
    return Shape(tuple(sizes), operand.dtype)


def infer_concat(shapes: list[Shape], axis: int) -> Shape:
    first = shapes[0]
    axis %= first.rank
    total = 0
    for s in shapes:
        if s.rank != first.rank:
            raise ShapeError("concat rank mismatch")
        for i in range(first.rank):
            if i != axis and s.dims[i] != first.dims[i]:
                raise ShapeError(f"concat dim {i} mismatch: {s} vs {first}")
        total += s.dims[axis]
    dims = list(first.dims)
    dims[axis] = total
    return Shape(tuple(dims), first.dtype)
