"""HLO-like intermediate representation.

The LazyTensor backend lowers recorded traces into this IR, which the
compiler (:mod:`repro.hlo.compiler`) optimizes and turns into fused NumPy
executables — the reproduction of the XLA JIT path of Section 3.3.

The IR is a DAG of :class:`HloInstruction` nodes inside an
:class:`HloComputation`; every instruction has a static :class:`Shape`
(XLA's static-shape expectation, which is why shape changes trigger
recompilation — Section 3.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import HloError

F16 = "f16"
BF16 = "bf16"
F32 = "f32"
F64 = "f64"
PRED = "pred"

#: Bytes per element of each element type — what a buffer of that dtype
#: occupies on a real accelerator.  The NumPy backend *emulates* bf16 in
#: f32 storage (NumPy has no native bfloat16), so dynamic byte-exact
#: cross-checks only run for f16/f32/pred traces; certificates for bf16
#: modules describe the hardware layout, not the emulation.
DTYPE_BYTES = {F16: 2, BF16: 2, F32: 4, F64: 8, PRED: 1}

#: Floating element types, narrowest first.
FLOAT_DTYPES = (F16, BF16, F32, F64)

#: The narrow compute dtypes a mixed-precision plan may assign.
NARROW_DTYPES = (F16, BF16)


@dataclass(frozen=True)
class Shape:
    """A static tensor shape with element type."""

    dims: tuple[int, ...]
    dtype: str = F32

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def byte_size(self) -> int:
        return self.num_elements * DTYPE_BYTES.get(self.dtype, 4)

    @property
    def storage_bytes(self) -> int:
        """Bytes a buffer of this shape occupies (dtype-aware: predicates
        are byte masks, f16/bf16 are half-width, f64 double-width)."""
        return self.num_elements * DTYPE_BYTES.get(self.dtype, 4)

    def __str__(self) -> str:
        dims = ",".join(map(str, self.dims))
        return f"{self.dtype}[{dims}]"

    def with_dtype(self, dtype: str) -> "Shape":
        return Shape(self.dims, dtype)

    @classmethod
    def of(cls, array: np.ndarray) -> "Shape":
        if array.dtype == np.bool_:
            dtype = PRED
        elif array.dtype == np.float16:
            dtype = F16
        elif array.dtype == np.float64:
            dtype = F64
        else:
            dtype = F32
        return cls(tuple(int(d) for d in array.shape), dtype)


#: Opcodes grouped by structure.  Elementwise opcodes are fusion candidates.
ELEMENTWISE_UNARY = {
    "negate",
    "exponential",
    "log",
    "tanh",
    "sqrt",
    "rsqrt",
    "logistic",
    "sign",
    "abs",
    "relu",
    "not",
}
ELEMENTWISE_BINARY = {
    "add",
    "subtract",
    "multiply",
    "divide",
    "power",
    "maximum",
    "minimum",
    "compare",
}
ELEMENTWISE_OTHER = {"select"}
ELEMENTWISE = ELEMENTWISE_UNARY | ELEMENTWISE_BINARY | ELEMENTWISE_OTHER

#: Opcodes whose value lives in memory the caller already owns: parameters
#: alias the argument buffers, constants alias the module's literal pool.
#: The memory planner counts them as *resident*, never as plan buffers.
RESIDENT_OPS = frozenset({"parameter", "constant"})

#: Opcodes the backend always executes as a zero-copy view of operand 0
#: (``np.broadcast_to`` never copies): pure aliases, zero plan bytes.
VIEW_ALIAS_OPS = frozenset({"broadcast"})

#: Opcodes the backend executes as a view *when layout permits* (NumPy
#: reshape/transpose): the planner must both reserve output bytes (the
#: copying case) and extend the operand's storage lifetime (the view case).
MAY_ALIAS_OPS = frozenset({"reshape", "transpose"})

OPCODES = (
    ELEMENTWISE
    | {
        "parameter",
        "constant",
        "broadcast",
        "reshape",
        "transpose",
        "convert",
        "dot",
        "convolution",
        "reduce",
        "pad",
        "slice",
        "concatenate",
        "iota",
        "one_hot",
        "avg_pool",
        "avg_pool_grad",
        "max_pool",
        "max_pool_grad",
        "conv_grad_input",
        "conv_grad_filter",
        "softmax_ce",
        "softmax_ce_grad",
        "tuple",
        "fusion",
    }
)


class HloInstruction:
    """One node of the HLO DAG."""

    _ids = itertools.count()

    __slots__ = (
        "id",
        "opcode",
        "operands",
        "shape",
        "attrs",
        "literal",
        "parameter_number",
        "fused_computation",
        "name",
    )

    def __init__(
        self,
        opcode: str,
        operands: Sequence["HloInstruction"],
        shape: Shape,
        attrs: Optional[dict] = None,
        literal: Optional[np.ndarray] = None,
        parameter_number: Optional[int] = None,
        fused_computation: Optional["HloComputation"] = None,
    ) -> None:
        if opcode not in OPCODES:
            raise HloError(f"unknown opcode {opcode!r}")
        self.id = next(HloInstruction._ids)
        self.opcode = opcode
        self.operands = list(operands)
        self.shape = shape
        self.attrs = dict(attrs or {})
        self.literal = literal
        self.parameter_number = parameter_number
        self.fused_computation = fused_computation
        self.name = f"{opcode}.{self.id}"

    @property
    def is_elementwise(self) -> bool:
        return self.opcode in ELEMENTWISE

    def attr_string(self) -> str:
        if not self.attrs:
            return ""
        parts = [f"{k}={self.attrs[k]!r}" for k in sorted(self.attrs)]
        return ", " + ", ".join(parts)

    def __repr__(self) -> str:
        ops = ", ".join(f"%{o.name}" for o in self.operands)
        return f"%{self.name} = {self.shape} {self.opcode}({ops}{self.attr_string()})"


class HloComputation:
    """A DAG with named parameters and a single root instruction."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.instructions: list[HloInstruction] = []
        self.parameters: list[HloInstruction] = []
        self.root: Optional[HloInstruction] = None

    def add(self, inst: HloInstruction) -> HloInstruction:
        self.instructions.append(inst)
        if inst.opcode == "parameter":
            self.parameters.append(inst)
        return inst

    def set_root(self, inst: HloInstruction) -> None:
        self.root = inst

    def post_order(self) -> list[HloInstruction]:
        """Topological (post-)order of instructions reachable from the root."""
        if self.root is None:
            raise HloError(f"computation {self.name} has no root")
        order: list[HloInstruction] = []
        seen: set[int] = set()
        stack: list[tuple[HloInstruction, bool]] = [(self.root, False)]
        while stack:
            inst, expanded = stack.pop()
            if inst.id in seen:
                continue
            if expanded:
                seen.add(inst.id)
                order.append(inst)
            else:
                stack.append((inst, True))
                for op in reversed(inst.operands):
                    if op.id not in seen:
                        stack.append((op, False))
        return order

    def users(self) -> dict[int, list[HloInstruction]]:
        table: dict[int, list[HloInstruction]] = {}
        for inst in self.post_order():
            for op in inst.operands:
                table.setdefault(op.id, []).append(inst)
        return table

    def use_counts(self) -> dict[int, int]:
        """Operand-slot use counts over the schedule (an operand appearing
        twice in one instruction counts twice — the executor decrements
        once per slot when freeing at last use)."""
        counts: dict[int, int] = {}
        for inst in self.post_order():
            for op in inst.operands:
                counts[op.id] = counts.get(op.id, 0) + 1
        return counts

    def instruction_count(self) -> int:
        return len(self.post_order())


class HloModule:
    """A compilation unit: one entry computation."""

    def __init__(self, name: str, entry: HloComputation) -> None:
        self.name = name
        self.entry = entry

    def schedule(self) -> list[HloInstruction]:
        """The execution order: the entry computation's post-order, which is
        exactly the order ``Executable.run`` evaluates (and frees) values —
        the schedule the static memory planner reasons over."""
        return self.entry.post_order()

    def __repr__(self) -> str:
        from repro.hlo.printer import print_module

        return print_module(self)
