"""Parser half of the HLO text round-trip.

Parses the output of :mod:`repro.hlo.printer` back into an
:class:`HloModule`.  Fused modules are a compiler-internal form and are not
parsed; round-trip is defined for pre-fusion modules (tests enforce this).
"""

from __future__ import annotations

import ast
import re

import numpy as np

from repro.errors import HloError
from repro.hlo.ir import HloComputation, HloInstruction, HloModule, Shape

_INST_RE = re.compile(
    r"^(ROOT )?%(?P<name>[\w.\-]+) = (?P<dtype>\w+)\[(?P<dims>[\d,]*)\] "
    r"(?P<opcode>\w+)\((?P<body>.*)\)"
    # Trailing `{...}` printer annotations (opt-in buffer verdicts) are
    # accepted and discarded so annotated output still parses.
    r"(?:\s+\{[^{}]*\})?$"
)


def parse_module(text: str) -> HloModule:
    lines = [ln.strip() for ln in text.strip().splitlines()]
    lines = [ln for ln in lines if ln and not ln.startswith("//")]
    if not lines or not lines[0].startswith("HloModule"):
        raise HloError("missing HloModule header")
    module_name = lines[0].split(None, 1)[1].strip()

    entry_idx = next(
        (i for i, ln in enumerate(lines) if ln.startswith("ENTRY")), None
    )
    if entry_idx is None:
        raise HloError("missing ENTRY computation")
    comp_name = lines[entry_idx].removeprefix("ENTRY").strip().rstrip("{").strip()
    comp = HloComputation(comp_name)

    by_name: dict[str, HloInstruction] = {}
    root = None
    for ln in lines[entry_idx + 1 :]:
        if ln == "}":
            break
        if "fused computation" in ln or ln.endswith("{"):
            raise HloError("parsing fused modules is unsupported")
        inst, is_root = _parse_instruction(ln, by_name)
        comp.add(inst)
        by_name[inst.name] = inst
        if is_root:
            root = inst
    if root is None:
        raise HloError("computation has no ROOT instruction")
    comp.set_root(root)
    return HloModule(module_name, comp)


def _parse_instruction(line: str, by_name) -> tuple[HloInstruction, bool]:
    m = _INST_RE.match(line)
    if m is None:
        raise HloError(f"cannot parse instruction: {line!r}")
    is_root = bool(m.group(1))
    name = m.group("name")
    dims = tuple(int(d) for d in m.group("dims").split(",") if d)
    shape = Shape(dims, m.group("dtype"))
    opcode = m.group("opcode")
    body = m.group("body")

    operands_part, extra, attrs = _split_body(body)
    operands = []
    for token in operands_part:
        token = token.strip()
        if not token:
            continue
        if not token.startswith("%"):
            raise HloError(f"bad operand {token!r} in {line!r}")
        ref = token[1:]
        if ref not in by_name:
            raise HloError(f"operand %{ref} not yet defined")
        operands.append(by_name[ref])

    literal = None
    parameter_number = None
    if opcode == "constant":
        from repro.hlo.dtypes import cast_array

        # The declared dtype is authoritative: literals print as Python
        # floats, so the array must be rebuilt in the dtype's storage
        # (bf16 literals re-quantize to the same values — round-trip safe).
        literal = cast_array(np.asarray(ast.literal_eval(extra)), shape.dtype)
        shape = Shape(tuple(int(d) for d in literal.shape), shape.dtype)
    elif opcode == "parameter":
        parameter_number = int(extra)

    inst = HloInstruction(
        opcode,
        operands,
        shape,
        attrs=attrs,
        literal=literal,
        parameter_number=parameter_number,
    )
    inst.name = name
    return inst, is_root


def _split_body(body: str):
    """Split ``%a, %b; extra, key=value, ...`` into parts.

    Returns (operand tokens, extra text, attrs dict)."""
    # Attrs are `ident=python-literal` segments at the end.
    depth = 0
    segments = []
    current = ""
    for ch in body:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            segments.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        segments.append(current)

    operands: list[str] = []
    extra = ""
    attrs: dict = {}
    for seg in segments:
        seg = seg.strip()
        if "=" in seg and re.match(r"^\w+=", seg):
            key, value = seg.split("=", 1)
            attrs[key] = ast.literal_eval(value)
        elif ";" in seg:
            op_part, extra = seg.split(";", 1)
            if op_part.strip():
                operands.append(op_part)
            extra = extra.strip()
        elif seg.startswith("%"):
            operands.append(seg)
        elif seg:
            extra = seg
    return operands, extra, attrs
