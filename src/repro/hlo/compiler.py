"""HLO backend: NumPy codegen, executables, and the compilation cache.

``compile_module`` optimizes the module, emits an :class:`Executable`, and
memoizes it by the module's canonical fingerprint — the reproduction of
the XLA-program cache of Section 3.4 ("each unique trace is only compiled
by XLA once").

:class:`AsyncCompiler` is the concurrent face of that cache: a cache miss
hands compilation to a background worker and returns immediately, so the
host can fall back to op-by-op execution instead of stalling on the JIT —
the dispatch/compile pipelining XLA-style runtimes use.  Submissions are
deduplicated per canonical cache key (*single-flight*): however many
replicas race on the same fresh trace, exactly one compile runs.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import HloError
from repro.hlo.dtypes import cast_array
from repro.hlo.ir import BF16, F16, F64, HloInstruction, HloModule, NARROW_DTYPES
from repro.hlo.passes import optimize
from repro.hlo.printer import print_module
from repro.runtime import memory
from repro.runtime.device import SimDevice
from repro.runtime.kernels import ITEMSIZE, KERNELS
from repro.locks import named_rlock

_K = KERNELS

_UNARY_KERNELS = {
    "negate": "neg",
    "exponential": "exp",
    "log": "log",
    "tanh": "tanh",
    "sqrt": "sqrt",
    "rsqrt": "rsqrt",
    "logistic": "sigmoid",
    "relu": "relu",
    "abs": "abs",
    "sign": "sign",
}

_BINARY_KERNELS = {
    "add": "add",
    "subtract": "sub",
    "multiply": "mul",
    "divide": "div",
    "power": "pow",
    "maximum": "maximum",
    "minimum": "minimum",
}

_COMPARE = {
    "gt": np.greater,
    "ge": np.greater_equal,
    "lt": np.less,
    "le": np.less_equal,
    "eq": np.equal,
    "ne": np.not_equal,
}


def evaluate_instruction(inst: HloInstruction, args: Sequence[np.ndarray]):
    """Evaluate one (non-parameter, non-fusion) instruction numerically.

    Results are coerced to the instruction's recorded element type, so a
    narrowed module computes genuinely narrowed values: f16 ops run in
    half precision, bf16 ops quantize every result to the bf16 grid (f32
    storage — NumPy has no bfloat16), f64 is the oracle's reference
    precision.  f32/pred results pass through untouched (the pre-dtype
    fast path is byte-identical).
    """
    result = _evaluate_raw(inst, args)
    dt = inst.shape.dtype
    if dt == F16 or dt == BF16 or dt == F64:
        return cast_array(result, dt)
    return result


def _evaluate_raw(inst: HloInstruction, args: Sequence[np.ndarray]):
    op = inst.opcode
    if op == "constant":
        return inst.literal
    if op == "convert":
        return cast_array(args[0], inst.attrs["new_dtype"])
    if op in _UNARY_KERNELS:
        return _K[_UNARY_KERNELS[op]](args[0])
    if op in _BINARY_KERNELS:
        return _K[_BINARY_KERNELS[op]](args[0], args[1])
    if op == "compare":
        return _COMPARE[inst.attrs["direction"]](args[0], args[1])
    if op == "not":
        return np.logical_not(args[0])
    if op == "select":
        return _K["select"](args[0], args[1], args[2])
    if op == "broadcast":
        return _K["broadcast_to"](args[0], inst.attrs["dims"])
    if op == "reshape":
        return _K["reshape"](args[0], inst.attrs["dims"])
    if op == "transpose":
        return _K["transpose"](args[0], inst.attrs["perm"])
    if op == "pad":
        return _K["pad"](args[0], inst.attrs["paddings"])
    if op == "slice":
        return _K["slice"](args[0], inst.attrs["starts"], inst.attrs["sizes"])
    if op == "concatenate":
        return _K["concat"](*args, inst.attrs["axis"])
    if op == "dot":
        # Tensor-core semantics for narrow dtypes: multiply narrow,
        # accumulate in f32, round the result (the outer coercion).
        return _K["matmul"](_f32_accum(args[0]), _f32_accum(args[1]))
    if op == "convolution":
        return _K["conv2d"](
            _f32_accum(args[0]),
            _f32_accum(args[1]),
            inst.attrs["stride"],
            inst.attrs["padding"],
        )
    if op == "conv_grad_input":
        return _K["conv2d_grad_input"](
            args[0],
            args[1],
            inst.attrs["input_dims"],
            inst.attrs["stride"],
            inst.attrs["padding"],
        )
    if op == "conv_grad_filter":
        return _K["conv2d_grad_filter"](
            args[0],
            args[1],
            inst.attrs["filter_dims"],
            inst.attrs["stride"],
            inst.attrs["padding"],
        )
    if op == "reduce":
        kind = inst.attrs["kind"]
        x = args[0]
        if inst.attrs.get("accum") == "f32" and x.dtype != np.float32:
            # The AMP discipline: narrow inputs, f32 accumulation.
            x = x.astype(np.float32)
        elif inst.shape.dtype in NARROW_DTYPES and kind in ("sum", "mean"):
            # No accumulator override: accumulate *in the narrow dtype*,
            # serially, like a hardware accumulator register would.
            return _narrow_accum_reduce(
                x, inst.attrs["axes"], inst.attrs["keepdims"], kind,
                inst.shape.dtype,
            )
        kernel = {"sum": "reduce_sum", "mean": "reduce_mean", "max": "reduce_max"}[
            kind
        ]
        return _K[kernel](x, inst.attrs["axes"], inst.attrs["keepdims"])
    if op == "avg_pool":
        return _K["avg_pool2d"](args[0], inst.attrs["pool"], inst.attrs["stride"])
    if op == "avg_pool_grad":
        return _K["avg_pool2d_grad"](
            args[0], inst.attrs["input_dims"], inst.attrs["pool"], inst.attrs["stride"]
        )
    if op == "max_pool":
        return _K["max_pool2d"](args[0], inst.attrs["pool"], inst.attrs["stride"])
    if op == "max_pool_grad":
        return _K["max_pool2d_grad"](
            args[0], args[1], inst.attrs["pool"], inst.attrs["stride"]
        )
    if op == "one_hot":
        return _K["one_hot"](args[0], inst.attrs["depth"])
    if op == "iota":
        return _K["iota"](inst.attrs["n"])
    if op == "softmax_ce":
        return _K["softmax_cross_entropy"](args[0], args[1])
    if op == "softmax_ce_grad":
        return _K["softmax_cross_entropy_grad"](args[0], args[1])
    raise HloError(f"no backend lowering for opcode {op!r}")


def _f32_accum(x: np.ndarray) -> np.ndarray:
    """Upcast a half-precision contraction operand to f32 (bf16 operands
    already live in f32 storage, so only native float16 needs widening)."""
    return x.astype(np.float32) if x.dtype == np.float16 else x


def _narrow_accum_reduce(x, axes, keepdims: bool, kind: str, dtype: str):
    """Sum/mean with a *narrow* accumulator, element-serial.

    NumPy's pairwise summation would hide most of the drift a narrow
    accumulator suffers on real hardware, so this models the worst
    (and common) case faithfully: one running register in the reduce
    dtype, rounded after every addition.  Once the partial sum exceeds
    ``1/eps`` times the element magnitude, additions round to zero and
    the sum flatlines — exactly the hazard the static analysis flags
    (and the reason the autocast planner always assigns ``accum="f32"``).
    """
    x = np.asarray(x)
    rank = x.ndim
    reduce_axes = (
        tuple(range(rank)) if axes is None else tuple(a % rank for a in axes)
    )
    kept = [i for i in range(rank) if i not in reduce_axes]
    moved = np.transpose(x, kept + list(reduce_axes))
    kept_dims = tuple(x.shape[i] for i in kept)
    n = 1
    for i in reduce_axes:
        n *= x.shape[i]
    flat = cast_array(moved.reshape(kept_dims + (n,)), dtype)
    total = cast_array(np.zeros(kept_dims, np.float32), dtype)
    for i in range(n):
        # float16 + float16 rounds natively; bf16 re-quantizes explicitly.
        total = cast_array(total + flat[..., i], dtype)
    if kind == "mean":
        total = cast_array(total / np.float32(n), dtype)
    if keepdims:
        out_dims = tuple(
            1 if i in reduce_axes else x.shape[i] for i in range(rank)
        )
        total = total.reshape(out_dims)
    return total


def _instruction_cost(inst: HloInstruction, in_shapes) -> tuple[float, float]:
    """(flops, traffic bytes) of one instruction for the device model."""
    out_elems = inst.shape.num_elements
    per_element = {
        "exponential": 10.0,
        "log": 10.0,
        "tanh": 10.0,
        "logistic": 10.0,
        "power": 10.0,
        "sqrt": 4.0,
        "rsqrt": 4.0,
    }.get(inst.opcode, 1.0)
    if inst.opcode == "dot":
        k = in_shapes[0][-1] if in_shapes[0] else 1
        flops = 2.0 * out_elems * k
    elif inst.opcode in ("convolution", "conv_grad_input", "conv_grad_filter"):
        if inst.opcode == "convolution":
            kh, kw, cin, _ = in_shapes[1]
        elif inst.opcode == "conv_grad_input":
            kh, kw, cin, _ = in_shapes[1]
        else:
            kh, kw, cin, _ = inst.attrs["filter_dims"]
        flops = 2.0 * out_elems * kh * kw * cin
    elif inst.opcode == "reduce":
        flops = float(np.prod(in_shapes[0])) if in_shapes[0] else 1.0
    else:
        flops = per_element * out_elems
    traffic = (out_elems + sum(int(np.prod(s)) if s else 1 for s in in_shapes)) * (
        ITEMSIZE
    )
    return flops, traffic


@dataclass
class CompilerStats:
    compiles: int = 0
    cache_hits: int = 0
    instructions_compiled: int = 0
    compile_time: float = 0.0

    def reset(self) -> None:
        # Guarded like every other STATS mutation: tests and benchmarks
        # reset counters while replica threads may still be compiling.
        with _LOCK:
            self.compiles = 0
            self.cache_hits = 0
            self.instructions_compiled = 0
            self.compile_time = 0.0


STATS = CompilerStats()

#: Guards the fingerprint cache and STATS counters: concurrent replicas
#: (and the async compile worker) all funnel through ``compile_module``.
_LOCK = named_rlock("hlo.compiler.cache")


class Executable:
    """A compiled HLO module, runnable on a simulated device."""

    def __init__(self, module: HloModule) -> None:
        self.module = module
        self.order = module.entry.post_order()
        self.n_parameters = len(module.entry.parameters)
        #: Number of device kernels one run launches (fusion collapses many
        #: instructions into one kernel).
        self.kernel_count = sum(
            1
            for inst in self.order
            if inst.opcode not in ("parameter", "constant", "tuple")
        )
        #: Operand-slot use counts: run() frees each value at its last use,
        #: which is what makes the static liveness intervals of the memory
        #: planner (repro.analysis.memory) exact on straight-line traces.
        self._use_counts = module.entry.use_counts()
        self._root_id = module.entry.root.id

    def run(
        self,
        args: Sequence[np.ndarray],
        device: Optional[SimDevice] = None,
        host_time: float = 0.0,
    ) -> np.ndarray:
        """Execute; if ``device`` is given, account simulated kernel time."""
        if len(args) != self.n_parameters:
            raise HloError(
                f"executable expects {self.n_parameters} args, got {len(args)}"
            )
        # Inside a trace_attribution scope, account every *owning* result
        # buffer so the dynamic per-trace peak is observable; views
        # (broadcast, and reshape/transpose when layout permits) allocate
        # nothing.  Off by default: finalizers per instruction cost time.
        tracked = memory.intermediates_tracked()
        remaining = dict(self._use_counts)
        values: dict[int, np.ndarray] = {}
        for inst in self.order:
            if inst.opcode == "parameter":
                values[inst.id] = np.asarray(args[inst.parameter_number])
                continue
            in_vals = [values[o.id] for o in inst.operands]
            if inst.opcode == "tuple":
                values[inst.id] = tuple(in_vals)
            elif inst.opcode == "fusion":
                result = self._run_fused(inst, in_vals, device, host_time)
                values[inst.id] = result
                if (
                    tracked
                    and isinstance(result, np.ndarray)
                    and result.base is None
                ):
                    memory.track_buffer(result)
            else:
                result = evaluate_instruction(inst, in_vals)
                values[inst.id] = result
                if (
                    tracked
                    and inst.opcode != "constant"
                    and isinstance(result, np.ndarray)
                    and result.base is None
                ):
                    memory.track_buffer(result)
                if device is not None and inst.opcode != "constant":
                    flops, traffic = _instruction_cost(
                        inst, [o.shape.dims for o in inst.operands]
                    )
                    device.busy_until = max(device.busy_until, host_time)
                    device.launch_fused(1, flops, traffic, host_time)
            # Free dead values: drop each operand at its last use (the root
            # is the caller's result and always survives).  Clearing the
            # locals matters — a lingering reference would delay the free
            # past the next allocation and break the planner's certificate.
            for o in inst.operands:
                left = remaining[o.id] - 1
                remaining[o.id] = left
                if left == 0 and o.id != self._root_id:
                    values.pop(o.id, None)
            in_vals = result = None  # noqa: F841
        return values[self._root_id]

    def _run_fused(self, fusion, external_args, device, host_time):
        inner = fusion.fused_computation
        values: dict[int, np.ndarray] = {}
        n_ops = 0
        flops_total = 0.0
        for inst in inner.post_order():
            if inst.opcode == "parameter":
                values[inst.id] = external_args[inst.parameter_number]
                continue
            in_vals = [values[o.id] for o in inst.operands]
            values[inst.id] = evaluate_instruction(inst, in_vals)
            if inst.opcode != "constant":
                n_ops += 1
                flops, _ = _instruction_cost(
                    inst, [o.shape.dims for o in inst.operands]
                )
                flops_total += flops
        if device is not None:
            # One launch; traffic counts only the region's inputs + output.
            traffic = (
                fusion.shape.num_elements
                + sum(o.shape.num_elements for o in fusion.operands)
            ) * ITEMSIZE
            device.launch_fused(max(n_ops, 1), flops_total, traffic, host_time)
        return values[inner.root.id]


#: The XLA-program cache: canonical module text -> Executable.
_CACHE: dict[str, Executable] = {}

#: Modules currently being compiled, keyed by fingerprint: the second
#: thread to ask for an in-flight key blocks on the first one's Future
#: instead of compiling again (single-flight, synchronous face).
_INFLIGHT: dict[str, Future] = {}


def fingerprint(module: HloModule) -> str:
    """Canonical key of a module (its printed text, modulo value names)."""
    text = print_module(module)
    # Names embed global instruction ids; canonicalize them.
    import re

    mapping: dict[str, str] = {}

    def rename(match):
        name = match.group(0)
        if name not in mapping:
            mapping[name] = f"%v{len(mapping)}"
        return mapping[name]

    return re.sub(r"%[\w.\-]+", rename, text)


def _codegen(
    module: HloModule,
    fuse: bool,
    codegen: bool = False,
    key: Optional[str] = None,
) -> Executable:
    """Optimize + emit, updating the compile counters.

    Under ``codegen`` the interpreted executable is additionally lowered
    to a flat-NumPy step function — installed only if the translation
    validator certifies it (``repro.analysis.equivalence``); a rejected
    translation silently falls back to the interpreted executable.
    """
    optimize(module, fuse=fuse)
    executable = Executable(module)
    with _LOCK:
        STATS.compiles += 1
        STATS.instructions_compiled += len(executable.order)
    if codegen:
        from repro.hlo.codegen import generate_certified

        executable = generate_certified(module, executable, key=key)
    return executable


def compile_module(
    module: HloModule,
    use_cache: bool = True,
    fuse: bool = True,
    codegen: bool = False,
) -> Executable:
    """Optimize + codegen, memoized by fingerprint.

    Thread-safe and single-flight: concurrent replicas materializing the
    same fresh trace produce exactly one compile — the first caller runs
    it, the rest block on its result and count as cache hits.
    """
    if not use_cache:
        return _codegen(module, fuse, codegen=codegen)
    key = fingerprint(module)
    if codegen:
        # Certified-codegen executables live under their own keyspace so a
        # mixed workload never hands an interpreted caller a generated step
        # function (or vice versa).
        key = "codegen:" + key
    with _LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            STATS.cache_hits += 1
            return cached
        pending = _INFLIGHT.get(key)
        if pending is None:
            pending = Future()
            _INFLIGHT[key] = pending
            owner = True
        else:
            owner = False
    if not owner:
        executable = pending.result()
        with _LOCK:
            STATS.cache_hits += 1
        return executable
    try:
        executable = _codegen(module, fuse, codegen=codegen, key=key)
    except BaseException as exc:
        with _LOCK:
            _INFLIGHT.pop(key, None)
        pending.set_exception(exc)
        raise
    with _LOCK:
        _CACHE[key] = executable
        _INFLIGHT.pop(key, None)
    pending.set_result(executable)
    return executable


def clear_cache() -> None:
    with _LOCK:
        _CACHE.clear()


def cache_size() -> int:
    with _LOCK:
        return len(_CACHE)


def cache_keys() -> tuple[str, ...]:
    """Canonical fingerprints currently cached (insertion order).

    The static trace-stability analyzer cross-checks its predicted
    distinct-executable count against the growth of this set.
    """
    with _LOCK:
        return tuple(_CACHE)


# ---------------------------------------------------------------------------
# Asynchronous compilation (the concurrent execution engine's JIT face).
# ---------------------------------------------------------------------------


@dataclass
class AsyncCompileStats:
    """Counters of one :class:`AsyncCompiler` (all monotonic except the
    ``compile_inflight`` gauge reported by :meth:`AsyncCompiler.stats`)."""

    #: Steps that found a ready executable for their canonical key.
    compile_hits: int = 0
    #: Steps that ran op-by-op because their compile was still in flight.
    fallback_steps: int = 0
    #: Distinct keys handed to the background worker.
    submitted: int = 0
    #: Submissions coalesced onto an already-in-flight compile
    #: (single-flight dedup: these never reached the worker).
    deduplicated: int = 0
    completed: int = 0
    failed: int = 0


class AsyncCompiler:
    """Background JIT with a single-flight, key-addressed executable cache.

    Keys are *canonical trace keys* (``repro.analysis.tracing.canonical``)
    computed before lowering, so a lookup costs no HLO printing.  A miss
    never blocks: :meth:`submit` schedules the build on a worker thread
    and returns; the caller executes its fragment op-by-op in the meantime
    and finds the executable ready on a later step.
    """

    def __init__(self, workers: int = 1) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="hlo-compile"
        )
        self._lock = named_rlock("hlo.async_compiler")
        self._ready: dict[str, Executable] = {}
        self._inflight: dict[str, Future] = {}
        self.stats = AsyncCompileStats()

    # -- cache interface -----------------------------------------------------

    def lookup(self, key: str) -> Optional[Executable]:
        """The non-blocking cache probe; counts a hit iff ready."""
        with self._lock:
            executable = self._ready.get(key)
            if executable is not None:
                self.stats.compile_hits += 1
            return executable

    def submit(self, key: str, build: Callable[[], Executable]) -> Future:
        """Schedule ``build`` for ``key`` unless ready or already in flight.

        Returns the Future tracking the key's compilation (already
        resolved if the executable is ready).  Exactly one ``build`` runs
        per key, however many threads race here — the single-flight
        guarantee the stress tests pin down.
        """
        with self._lock:
            executable = self._ready.get(key)
            if executable is not None:
                done: Future = Future()
                done.set_result(executable)
                return done
            pending = self._inflight.get(key)
            if pending is not None:
                self.stats.deduplicated += 1
                return pending
            self.stats.submitted += 1
            pending = self._executor.submit(self._build, key, build)
            self._inflight[key] = pending
            return pending

    def note_fallback(self) -> None:
        """Record one step that executed eagerly under an in-flight compile."""
        with self._lock:
            self.stats.fallback_steps += 1

    def _build(self, key: str, build: Callable[[], Executable]) -> Executable:
        try:
            executable = build()
        except BaseException:
            with self._lock:
                self._inflight.pop(key, None)
                self.stats.failed += 1
            raise
        with self._lock:
            self._ready[key] = executable
            self._inflight.pop(key, None)
            self.stats.completed += 1
        return executable

    # -- introspection -------------------------------------------------------

    @property
    def compile_inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def cached_keys(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._ready)

    def wait(self, timeout: Optional[float] = None) -> None:
        """Block until every in-flight compile has finished (for tests and
        deterministic benchmark boundaries)."""
        while True:
            with self._lock:
                pending = list(self._inflight.values())
            if not pending:
                return
            for future in pending:
                future.exception(timeout=timeout)

    def stats_dict(self) -> dict:
        """The stats surface: counters plus the in-flight gauge."""
        with self._lock:
            return {
                "compile_inflight": len(self._inflight),
                "compile_hits": self.stats.compile_hits,
                "fallback_steps": self.stats.fallback_steps,
                "submitted": self.stats.submitted,
                "deduplicated": self.stats.deduplicated,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "cached_executables": len(self._ready),
            }

    def reset(self) -> None:
        """Drop cached executables and zero the counters (idle only)."""
        self.wait()
        with self._lock:
            self._ready.clear()
            self.stats = AsyncCompileStats()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)


#: The process-wide async compiler shared by replicas that don't bring
#: their own (mirrors the global fingerprint cache above).
ASYNC_COMPILER = AsyncCompiler()
