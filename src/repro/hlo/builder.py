"""Convenience builder for HLO computations with inline shape inference."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import HloError
from repro.hlo import shapes as si
from repro.hlo.ir import (
    ELEMENTWISE_BINARY,
    ELEMENTWISE_UNARY,
    HloComputation,
    HloInstruction,
    HloModule,
    Shape,
)


class HloBuilder:
    """Builds one :class:`HloComputation`, inferring shapes as it goes."""

    def __init__(self, name: str) -> None:
        self.computation = HloComputation(name)

    def _add(self, inst: HloInstruction) -> HloInstruction:
        return self.computation.add(inst)

    # -- leaves ---------------------------------------------------------------

    def parameter(self, shape: Shape, number: Optional[int] = None) -> HloInstruction:
        if number is None:
            number = len(self.computation.parameters)
        return self._add(
            HloInstruction("parameter", [], shape, parameter_number=number)
        )

    def constant(self, value, dtype: Optional[str] = None) -> HloInstruction:
        if dtype is None:
            array = np.asarray(value, dtype=np.float32)
            shape = Shape.of(array)
        else:
            from repro.hlo.dtypes import cast_array

            array = cast_array(np.asarray(value), dtype)
            shape = Shape(tuple(int(d) for d in array.shape), dtype)
        return self._add(
            HloInstruction("constant", [], shape, literal=array)
        )

    def iota(self, n: int) -> HloInstruction:
        return self._add(HloInstruction("iota", [], Shape((n,)), attrs={"n": n}))

    # -- elementwise -----------------------------------------------------------

    def unary(self, opcode: str, x: HloInstruction) -> HloInstruction:
        if opcode not in ELEMENTWISE_UNARY:
            raise HloError(f"{opcode} is not a unary elementwise op")
        return self._add(HloInstruction(opcode, [x], x.shape))

    def binary(self, opcode: str, a, b, comparison: str = "") -> HloInstruction:
        if opcode not in ELEMENTWISE_BINARY:
            raise HloError(f"{opcode} is not a binary elementwise op")
        shape = si.infer_elementwise_binary(opcode, a.shape, b.shape)
        attrs = {"direction": comparison} if opcode == "compare" else {}
        return self._add(HloInstruction(opcode, [a, b], shape, attrs=attrs))

    def select(self, pred, on_true, on_false) -> HloInstruction:
        shape = si.infer_select(pred.shape, on_true.shape, on_false.shape)
        return self._add(HloInstruction("select", [pred, on_true, on_false], shape))

    def convert(self, x, new_dtype: str) -> HloInstruction:
        """Element-type conversion (the only legal dtype boundary)."""
        if x.shape.dtype == new_dtype:
            return x
        shape = si.infer_convert(x.shape, new_dtype)
        return self._add(
            HloInstruction("convert", [x], shape, attrs={"new_dtype": new_dtype})
        )

    # -- shape ops --------------------------------------------------------------

    def broadcast(self, x, dims: Sequence[int]) -> HloInstruction:
        shape = si.infer_broadcast(x.shape, tuple(dims))
        if shape.dims == x.shape.dims:
            return x
        return self._add(
            HloInstruction("broadcast", [x], shape, attrs={"dims": tuple(dims)})
        )

    def reshape(self, x, dims: Sequence[int]) -> HloInstruction:
        shape = si.infer_reshape(x.shape, tuple(dims))
        return self._add(
            HloInstruction("reshape", [x], shape, attrs={"dims": tuple(dims)})
        )

    def transpose(self, x, perm: Sequence[int]) -> HloInstruction:
        shape = si.infer_transpose(x.shape, tuple(perm))
        return self._add(
            HloInstruction("transpose", [x], shape, attrs={"perm": tuple(perm)})
        )

    def pad(self, x, paddings) -> HloInstruction:
        shape = si.infer_pad(x.shape, paddings)
        return self._add(
            HloInstruction(
                "pad", [x], shape, attrs={"paddings": tuple(map(tuple, paddings))}
            )
        )

    def slice(self, x, starts, sizes) -> HloInstruction:
        shape = si.infer_slice(x.shape, starts, sizes)
        return self._add(
            HloInstruction(
                "slice",
                [x],
                shape,
                attrs={"starts": tuple(starts), "sizes": tuple(sizes)},
            )
        )

    def concatenate(self, xs, axis: int) -> HloInstruction:
        shape = si.infer_concat([x.shape for x in xs], axis)
        return self._add(
            HloInstruction("concatenate", list(xs), shape, attrs={"axis": axis})
        )

    # -- linear algebra ----------------------------------------------------------

    def dot(self, a, b) -> HloInstruction:
        shape = si.infer_dot(a.shape, b.shape)
        return self._add(HloInstruction("dot", [a, b], shape))

    def convolution(self, x, filters, stride: int, padding: str) -> HloInstruction:
        shape = si.infer_conv(x.shape, filters.shape, stride, padding)
        return self._add(
            HloInstruction(
                "convolution",
                [x, filters],
                shape,
                attrs={"stride": stride, "padding": padding},
            )
        )

    def conv_grad_input(self, grad, filters, input_dims, stride, padding):
        return self._add(
            HloInstruction(
                "conv_grad_input",
                [grad, filters],
                Shape(tuple(input_dims), grad.shape.dtype),
                attrs={
                    "input_dims": tuple(input_dims),
                    "stride": stride,
                    "padding": padding,
                },
            )
        )

    def conv_grad_filter(self, x, grad, filter_dims, stride, padding):
        return self._add(
            HloInstruction(
                "conv_grad_filter",
                [x, grad],
                Shape(tuple(filter_dims), grad.shape.dtype),
                attrs={
                    "filter_dims": tuple(filter_dims),
                    "stride": stride,
                    "padding": padding,
                },
            )
        )

    def reduce(
        self,
        x,
        kind: str,
        axes,
        keepdims: bool = False,
        accum: Optional[str] = None,
    ) -> HloInstruction:
        shape = si.infer_reduce(x.shape, axes, keepdims)
        axes_t = (
            tuple(a % x.shape.rank for a in axes) if axes is not None else None
        )
        attrs = {"kind": kind, "axes": axes_t, "keepdims": keepdims}
        if accum is not None:
            # Accumulator dtype (the AMP discipline: narrow inputs may
            # still demand f32 accumulation).  Absent means "accumulate
            # in the operand dtype".
            attrs["accum"] = accum
        return self._add(HloInstruction("reduce", [x], shape, attrs=attrs))

    # -- pooling / fused training ops ---------------------------------------------

    def avg_pool(self, x, pool: int, stride: int) -> HloInstruction:
        shape = si.infer_pool(x.shape, pool, stride)
        return self._add(
            HloInstruction(
                "avg_pool", [x], shape, attrs={"pool": pool, "stride": stride}
            )
        )

    def avg_pool_grad(self, grad, input_dims, pool: int, stride: int):
        return self._add(
            HloInstruction(
                "avg_pool_grad",
                [grad],
                Shape(tuple(input_dims), grad.shape.dtype),
                attrs={
                    "input_dims": tuple(input_dims),
                    "pool": pool,
                    "stride": stride,
                },
            )
        )

    def max_pool(self, x, pool: int, stride: int) -> HloInstruction:
        shape = si.infer_pool(x.shape, pool, stride)
        return self._add(
            HloInstruction(
                "max_pool", [x], shape, attrs={"pool": pool, "stride": stride}
            )
        )

    def max_pool_grad(self, x, grad, pool: int, stride: int):
        return self._add(
            HloInstruction(
                "max_pool_grad",
                [x, grad],
                x.shape,
                attrs={"pool": pool, "stride": stride},
            )
        )

    def one_hot(self, indices, depth: int) -> HloInstruction:
        shape = Shape(indices.shape.dims + (depth,))
        return self._add(
            HloInstruction("one_hot", [indices], shape, attrs={"depth": depth})
        )

    def softmax_ce(self, logits, labels) -> HloInstruction:
        return self._add(
            HloInstruction("softmax_ce", [logits, labels], Shape(()))
        )

    def softmax_ce_grad(self, logits, labels) -> HloInstruction:
        return self._add(
            HloInstruction("softmax_ce_grad", [logits, labels], logits.shape)
        )

    def tuple(self, elements: Sequence[HloInstruction]) -> HloInstruction:
        """Multi-output root: execution returns a Python tuple of arrays."""
        return self._add(
            HloInstruction(
                "tuple", list(elements), Shape((len(elements),), "tuple")
            )
        )

    # -- finalize -------------------------------------------------------------------

    def build(self, root: HloInstruction, module_name: str = "") -> HloModule:
        self.computation.set_root(root)
        return HloModule(module_name or self.computation.name, self.computation)
