"""HLO optimization passes: simplify, fold, CSE, DCE, and fusion.

The pipeline mirrors XLA's scalar/fusion pipeline at small scale.  Fusion
is the pass that delivers the LazyTensor performance result of Table 3:
maximal connected regions of elementwise instructions collapse into single
``fusion`` instructions that the backend executes as one kernel.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.analysis import attribution
from repro.errors import HloError
from repro.hlo.dtypes import cast_array
from repro.hlo.ir import (
    HloComputation,
    HloInstruction,
    HloModule,
)


def _replace_uses(comp: HloComputation, old: HloInstruction, new: HloInstruction):
    for inst in comp.instructions:
        inst.operands = [new if op is old else op for op in inst.operands]
    if comp.root is old:
        comp.root = new


def _prune(comp: HloComputation) -> None:
    """Dead-code elimination: keep parameters plus everything reachable."""
    reachable = {i.id for i in comp.post_order()}
    comp.instructions = [
        i
        for i in comp.instructions
        if i.id in reachable or i.opcode == "parameter"
    ]


def dce(module: HloModule) -> bool:
    before = len(module.entry.instructions)
    _prune(module.entry)
    return len(module.entry.instructions) != before


def algebraic_simplify(module: HloModule) -> bool:
    """Local rewrites: identities, double negation, reshape/transpose chains."""
    comp = module.entry
    changed = False
    for inst in list(comp.post_order()):
        new = _simplify_one(comp, inst)
        if new is not None and new is not inst:
            _replace_uses(comp, inst, new)
            changed = True
    if changed:
        _prune(comp)
    return changed


def _is_const_scalar(inst: HloInstruction, value: float) -> bool:
    if inst.opcode == "constant" and inst.literal is not None:
        lit = inst.literal
        return lit.size == 1 and float(lit.reshape(())) == value
    if inst.opcode == "broadcast":
        return _is_const_scalar(inst.operands[0], value)
    return False


def _simplify_one(comp, inst):
    op = inst.opcode
    if op == "add":
        a, b = inst.operands
        if _is_const_scalar(b, 0.0) and a.shape.dims == inst.shape.dims:
            return a
        if _is_const_scalar(a, 0.0) and b.shape.dims == inst.shape.dims:
            return b
    elif op == "subtract":
        a, b = inst.operands
        if _is_const_scalar(b, 0.0) and a.shape.dims == inst.shape.dims:
            return a
    elif op == "multiply":
        a, b = inst.operands
        if _is_const_scalar(b, 1.0) and a.shape.dims == inst.shape.dims:
            return a
        if _is_const_scalar(a, 1.0) and b.shape.dims == inst.shape.dims:
            return b
    elif op == "divide":
        a, b = inst.operands
        if _is_const_scalar(b, 1.0) and a.shape.dims == inst.shape.dims:
            return a
    elif op == "negate":
        (a,) = inst.operands
        if a.opcode == "negate":
            return a.operands[0]
    elif op == "power":
        a, b = inst.operands
        if _is_const_scalar(b, 1.0):
            return a
    elif op == "reshape":
        (a,) = inst.operands
        if a.shape.dims == inst.shape.dims:
            return a
        if a.opcode == "reshape":
            merged = HloInstruction(
                "reshape", [a.operands[0]], inst.shape, attrs=dict(inst.attrs)
            )
            comp.add(merged)
            return merged
    elif op == "transpose":
        (a,) = inst.operands
        perm = inst.attrs["perm"]
        if tuple(perm) == tuple(range(len(perm))):
            return a
        if a.opcode == "transpose":
            inner = a.attrs["perm"]
            composed = tuple(inner[p] for p in perm)
            merged = HloInstruction(
                "transpose",
                [a.operands[0]],
                inst.shape,
                attrs={"perm": composed},
            )
            comp.add(merged)
            return merged
    elif op == "broadcast":
        (a,) = inst.operands
        if a.shape.dims == inst.shape.dims:
            return a
    return None


def constant_fold(module: HloModule) -> bool:
    """Evaluate instructions whose operands are all constants."""
    from repro.hlo.compiler import evaluate_instruction

    comp = module.entry
    changed = False
    values: dict[int, np.ndarray] = {}
    for inst in list(comp.post_order()):
        if inst.opcode == "constant":
            values[inst.id] = inst.literal
            continue
        if inst.opcode in ("parameter", "fusion"):
            continue
        if inst.operands and all(o.id in values for o in inst.operands):
            try:
                result = evaluate_instruction(
                    inst, [values[o.id] for o in inst.operands]
                )
            except Exception:
                continue
            # The folded constant must keep the instruction's recorded
            # element type: folding a bf16 multiply must not resurface
            # as an f32 literal (the values are already quantized).
            folded = HloInstruction(
                "constant",
                [],
                inst.shape,
                literal=cast_array(np.asarray(result), inst.shape.dtype),
            )
            comp.add(folded)
            values[folded.id] = folded.literal
            _replace_uses(comp, inst, folded)
            changed = True
    if changed:
        _prune(comp)
    return changed


def cse(module: HloModule) -> bool:
    comp = module.entry
    seen: dict[tuple, HloInstruction] = {}
    changed = False
    for inst in list(comp.post_order()):
        key = _cse_key(inst)
        if key is None:
            continue
        existing = seen.get(key)
        if existing is not None and existing is not inst:
            _replace_uses(comp, inst, existing)
            changed = True
        else:
            seen[key] = inst
    if changed:
        _prune(comp)
    return changed


def _cse_key(inst: HloInstruction):
    if inst.opcode == "parameter":
        return None
    if inst.opcode == "fusion":
        return None
    if inst.opcode == "constant":
        return (
            "constant",
            inst.shape.dtype,
            inst.literal.shape,
            inst.literal.tobytes(),
        )
    attrs = tuple(sorted((k, repr(v)) for k, v in inst.attrs.items()))
    return (inst.opcode, tuple(o.id for o in inst.operands), attrs)


# ---------------------------------------------------------------------------
# Fusion.
# ---------------------------------------------------------------------------

#: Opcodes allowed *inside* a fusion region in addition to elementwise ops.
_FUSABLE_LEAVES = {"constant", "broadcast"}


def fuse_elementwise(module: HloModule) -> bool:
    """Greedy producer-consumer fusion of elementwise regions.

    A fusion root is an elementwise instruction that is not itself consumed
    exclusively by another elementwise instruction.  The region grows
    towards operands: a producer joins if it is elementwise (or a
    constant/broadcast feeding only this region) and *all* of its users are
    already in the region — so fused work is never duplicated.
    """
    comp = module.entry
    users = comp.users()
    order = comp.post_order()
    in_region: set[int] = set()
    changed = False

    def is_root(inst: HloInstruction) -> bool:
        if not inst.is_elementwise or inst.id in in_region:
            return False
        inst_users = users.get(inst.id, [])
        if inst is comp.root and not inst_users:
            return True
        if not inst_users:
            return False
        return not (
            len(inst_users) >= 1
            and all(u.is_elementwise for u in inst_users)
            and inst is not comp.root
        )

    for inst in reversed(order):
        if not is_root(inst):
            continue
        region = _grow_region(inst, users, in_region)
        if len([i for i in region if i.is_elementwise]) < 2:
            continue
        fusion = _build_fusion(comp, inst, region)
        _replace_uses(comp, inst, fusion)
        in_region.update(i.id for i in region)
        changed = True

    if changed:
        _prune(comp)
    return changed


def _grow_region(root, users, claimed) -> list[HloInstruction]:
    region = {root.id: root}
    frontier = [root]
    while frontier:
        inst = frontier.pop()
        for op in inst.operands:
            if op.id in region or op.id in claimed:
                continue
            if not (op.is_elementwise or op.opcode in _FUSABLE_LEAVES):
                continue
            op_users = users.get(op.id, [])
            if not all(u.id in region for u in op_users):
                continue
            region[op.id] = op
            frontier.append(op)
    return list(region.values())


def _build_fusion(comp, root, region) -> HloInstruction:
    region_ids = {i.id for i in region}
    external: list[HloInstruction] = []
    seen_external: set[int] = set()
    for inst in region:
        for op in inst.operands:
            if op.id not in region_ids and op.id not in seen_external:
                seen_external.add(op.id)
                external.append(op)

    inner = HloComputation(f"fused.{root.id}")
    mapping: dict[int, HloInstruction] = {}
    for i, ext in enumerate(external):
        param = HloInstruction("parameter", [], ext.shape, parameter_number=i)
        inner.add(param)
        mapping[ext.id] = param

    def clone(inst: HloInstruction) -> HloInstruction:
        if inst.id in mapping:
            return mapping[inst.id]
        operands = [clone(op) for op in inst.operands]
        copy = HloInstruction(
            inst.opcode,
            operands,
            inst.shape,
            attrs=dict(inst.attrs),
            literal=inst.literal,
        )
        inner.add(copy)
        mapping[inst.id] = copy
        return copy

    inner.set_root(clone(root))
    fusion = HloInstruction(
        "fusion", external, root.shape, fused_computation=inner
    )
    comp.add(fusion)
    return fusion


def _checked(pass_name: str, module: HloModule, before: str) -> None:
    from repro.hlo.printer import print_module
    from repro.hlo.verify import verify_module

    try:
        verify_module(module)
    except HloError as exc:
        raise HloError(
            attribution.attribute_failure(
                pass_name, f"module {module.name!r}", exc, before, print_module(module)
            ),
            offending_pass=pass_name,
        ) from exc


def optimize(
    module: HloModule,
    fuse: bool = True,
    max_iters: int = 8,
    verify_each: Optional[bool] = None,
    on_pass: Optional[Callable[[str, HloModule, bool], None]] = None,
) -> HloModule:
    """The default pipeline: simplify/fold/CSE/DCE to fixpoint, then fuse.

    With ``verify_each`` (per call, or globally via
    :func:`repro.analysis.attribution.set_verify_each`), the module is
    re-verified after every pass iteration and a failure names the
    offending pass with before/after IR dumps.

    ``on_pass(name, module, changed)`` is invoked after every pass
    application — the hook the memory planner's pass-attribution uses to
    measure how each pass (DCE, fusion, ...) moves the peak-memory bound.
    """
    verify_each = attribution.verify_each_enabled(verify_each)
    if verify_each:
        from repro.hlo.verify import verify_module

        try:
            verify_module(module)
        except HloError as exc:
            raise HloError(
                f"module {module.name!r} was already malformed before "
                f"optimization (builder/lowering bug, not a pass bug): {exc}"
            ) from exc

    passes = (
        ("algebraic_simplify", algebraic_simplify),
        ("constant_fold", constant_fold),
        ("cse", cse),
        ("dce", dce),
    )

    def run(name, pass_fn):
        if not verify_each:
            changed = pass_fn(module)
        else:
            from repro.hlo.printer import print_module

            before = print_module(module)
            changed = pass_fn(module)
            _checked(name, module, before)
        if on_pass is not None:
            on_pass(name, module, changed)
        return changed

    for _ in range(max_iters):
        changed = False
        for name, pass_fn in passes:
            changed |= run(name, pass_fn)
        if not changed:
            break
    if fuse:
        run("fuse_elementwise", fuse_elementwise)
        run("dce", dce)
    return module
